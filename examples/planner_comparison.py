"""Compare path planners: one-shot geometry demo + an ablation-grid campaign.

Part 1 reproduces the planner failure modes of Fig. 5a / Fig. 6 on a single
map: a large building between the drone and its goal, planned with the MLS-V2
local planner (bounded A* over a sliding dense grid) and the MLS-V3 planner
(RRT* over a global octree), showing the local planner's straight-line
fallback and the RRT* detour.

Part 2 holds the detector fixed (OpenCV) and sweeps the planner axis of the
component grid with the fluent :class:`repro.Campaign` API — the composition
surface the paper's three generations are single points of.  The mapper is
chosen per planner via the registry's compatibility declarations.

Run with:  python examples/planner_comparison.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import REGISTRY, Campaign, LandingSystemConfig
from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.planning.ego_planner import EgoLocalPlanner, EgoPlannerConfig
from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner
from repro.planning.types import PlanningProblem
from repro.sensors.depth import PointCloud


def building_wall() -> list[Vec3]:
    """Observed surface points of a 20 m wide, 14 m tall building face."""
    return [
        Vec3(10, 0.5 * y, 0.5 * z)
        for y in range(-20, 21)
        for z in range(2, 28)
    ]


def geometry_demo() -> None:
    points = building_wall()
    problem = PlanningProblem(start=Vec3(0, 0, 6), goal=Vec3(20, 0, 6), time_budget=3.0, max_altitude=30)

    # MLS-V2: bounded local A* over the dense sliding window.
    grid = VoxelGrid(VoxelGridConfig(window_size=30.0, resolution=1.0))
    grid.integrate_cloud(PointCloud(points=points, sensor_position=Vec3.zero()))
    ego = EgoLocalPlanner(grid, EgoPlannerConfig(max_expansions=400))
    ego_result = ego.plan(problem)
    print("MLS-V2 local planner (EGO-style bounded A*):")
    print(f"  waypoints: {len(ego_result.waypoints)}, fallback used: {ego.last_fallback_used}")
    print(f"  path safe against its own map: {ego.path_is_safe(ego_result.waypoints)}")

    # MLS-V3: RRT* over the global octree.
    tree = OcTree()
    for point in points:
        tree.update_voxel(point, hit=True)
        tree.update_voxel(point, hit=True)
    inflated = InflatedMap(tree)
    rrt = RrtStarPlanner(inflated, RrtStarConfig(seed=2, max_iterations=900))
    rrt_result = rrt.plan(problem)
    print("\nMLS-V3 planner (RRT* over OctoMap):")
    print(f"  succeeded: {rrt_result.succeeded}, waypoints: {len(rrt_result.waypoints)}, "
          f"cost: {rrt_result.cost:.1f} m")
    print(f"  path safe: {not inflated.path_colliding(rrt_result.waypoints)}")
    if rrt_result.succeeded:
        print("  detour waypoints:")
        for waypoint in rrt_result.waypoints:
            print(f"    ({waypoint.x:6.1f}, {waypoint.y:6.1f}, {waypoint.z:5.1f})")


def planner_axis_campaign() -> None:
    """Sweep the planner axis of the ablation grid in end-to-end missions."""
    systems = []
    for planner in REGISTRY.keys("planner"):
        # Pick the cheapest registered mapper satisfying the planner's needs.
        mapper = next(
            m for m in ("none", "dense-grid", "octomap")
            if REGISTRY.is_valid_combination(m, planner)
        )
        systems.append(
            LandingSystemConfig.custom(
                detector="opencv", mapper=mapper, planner=planner,
                name=f"opencv+{mapper}+{planner}",
            )
        )

    print("\nPlanner-axis campaign (detector fixed to OpenCV):")
    results = (
        Campaign(*systems)
        .scenarios(2)
        .repetitions(1)
        .parallel()
        .progress(lambda line: print("  " + line))
        .run()
    )
    print(f"\n{'system':<38} {'success':>8} {'collisions':>11}")
    for name, campaign in results.items():
        print(f"{name:<38} {100 * campaign.success_rate:>7.0f}% "
              f"{100 * campaign.collision_failure_rate:>10.0f}%")


def main() -> None:
    geometry_demo()
    planner_axis_campaign()


if __name__ == "__main__":
    main()