"""Compare the three system generations on the same scenarios (mini Table I).

This is the paper's RQ1 experiment at example scale: a handful of scenarios,
each flown by MLS-V1 (OpenCV, no avoidance), MLS-V2 (TPH-YOLO + EGO-Planner)
and MLS-V3 (TPH-YOLO + OctoMap + RRT*), with the outcome table printed at the
end.  Increase SCENARIOS for a closer approximation of Table I.

Run with:  python examples/compare_generations.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.bench.campaign import CampaignConfig, run_campaign
from repro.bench.tables import render_detection_table, render_landing_table

SCENARIOS = int(os.environ.get("SCENARIOS", "4"))


def main() -> None:
    config = CampaignConfig(scenario_count=SCENARIOS, repetitions=1)
    print(f"Running {SCENARIOS} scenarios x 3 system generations (this takes a few minutes)...\n")
    results = run_campaign(campaign_config=config, progress=lambda line: print("  " + line))

    print()
    print(render_landing_table(results))
    print()
    print(render_detection_table(results))


if __name__ == "__main__":
    main()
