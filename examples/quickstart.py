"""Quickstart: run one autonomous-landing scenario with MLS-V3.

Builds a scenario from the evaluation suite, runs the full simulation loop
(takeoff, transit, spiral search, multi-frame validation, staged descent,
final descent) and prints the outcome, the landing error and the decision
state machine's transition log.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import MissionRunner, build_evaluation_suite, mls_v3


def main() -> None:
    suite = build_evaluation_suite()
    scenario = suite.scenarios[0]
    print(f"Scenario {scenario.scenario_id}: {scenario.map_style.value} map, "
          f"{scenario.weather.condition.value} weather")
    print(f"  briefed GPS target : ({scenario.gps_target.x:.1f}, {scenario.gps_target.y:.1f})")
    print(f"  true marker        : ({scenario.marker_position.x:.1f}, {scenario.marker_position.y:.1f})")

    runner = MissionRunner(scenario, mls_v3())
    record = runner.run()

    print(f"\nOutcome: {record.outcome.value}")
    if record.landed:
        print(f"Landed {record.landing_error:.2f} m from the marker after {record.mission_time:.0f} s")
    else:
        print(f"Did not land ({record.failure_reason})")
    print(f"Detection false-negative rate this run: {100 * record.detection.false_negative_rate:.1f}%")

    print("\nState machine transitions:")
    for transition in runner.system.transitions:
        print(f"  {transition}")


if __name__ == "__main__":
    main()
