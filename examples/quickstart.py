"""Quickstart: one MLS-V3 mission, then a small parallel campaign.

Part 1 builds a scenario from the evaluation suite and runs the full
simulation loop (takeoff, transit, spiral search, multi-frame validation,
staged descent, final descent), printing the outcome and the decision state
machine's transition log.

Part 2 uses the fluent :class:`repro.Campaign` API to evaluate MLS-V1 against
a custom registry composition (the grid mapper bolted onto the V1 detector
and planner) over a few scenarios, fanned out over all CPU cores.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Campaign, LandingSystemConfig, MissionRunner, build_evaluation_suite, mls_v1, mls_v3


def main() -> None:
    suite = build_evaluation_suite()
    scenario = suite.scenarios[0]
    print(f"Scenario {scenario.scenario_id}: {scenario.map_style.value} map, "
          f"{scenario.weather.condition.value} weather")
    print(f"  briefed GPS target : ({scenario.gps_target.x:.1f}, {scenario.gps_target.y:.1f})")
    print(f"  true marker        : ({scenario.marker_position.x:.1f}, {scenario.marker_position.y:.1f})")

    runner = MissionRunner(scenario, mls_v3())
    record = runner.run()

    print(f"\nOutcome: {record.outcome.value}")
    if record.landed:
        print(f"Landed {record.landing_error:.2f} m from the marker after {record.mission_time:.0f} s")
    else:
        print(f"Did not land ({record.failure_reason})")
    print(f"Detection false-negative rate this run: {100 * record.detection.false_negative_rate:.1f}%")

    print("\nState machine transitions:")
    for transition in runner.system.transitions:
        print(f"  {transition}")

    # ------------------------------------------------------------------ #
    # Part 2: a fluent parallel campaign over a custom composition.
    # ------------------------------------------------------------------ #
    hybrid = LandingSystemConfig.custom(
        detector="opencv", mapper="dense-grid", planner="straight-line",
        name="V1+grid",
    )
    print("\nCampaign: MLS-V1 vs the custom 'V1+grid' composition")
    results = (
        Campaign(mls_v1(), hybrid)
        .scenarios(3)
        .repetitions(1)
        .parallel()                       # one worker per CPU core
        .progress(lambda line: print("  " + line))
        .run()
    )
    for name, campaign in results.items():
        print(f"{name}: success rate {100 * campaign.success_rate:.0f}% "
              f"over {len(campaign.records)} runs")


if __name__ == "__main__":
    main()
