"""Real-world (RQ3) style field test: MLS-V3 with GPS drift, wind and camera I/O load.

Takes a scenario from the evaluation suite, simplifies it to fit a small
airspace, degrades the GNSS conditions, adds wind during the descent and runs
the mission on the real-world Jetson Nano profile (live camera streams).
Compares the Pixhawk 2.4.8 and Cuav X7+ flight-controller profiles, the
hardware upgrade discussed in §V.C.

Run with:  python examples/field_test.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.realworld.field_test import FieldTestConfig, run_field_scenario
from repro.realworld.gps_drift import characterise_gps_drift
from repro.realworld.hardware import CUAV_X7_PRO, PIXHAWK_2_4_8
from repro.world import build_evaluation_suite
from repro.world.weather import Weather, WeatherCondition


def main() -> None:
    suite = build_evaluation_suite()
    scenario = suite.scenarios[2]

    print("GPS characterisation in poor weather (the Fig. 5d effect):")
    report = characterise_gps_drift(Weather.preset(WeatherCondition.STORM, 0.9), duration=90.0)
    print(f"  {report}\n")

    for controller in (PIXHAWK_2_4_8, CUAV_X7_PRO):
        config = FieldTestConfig(flight_controller=controller)
        record = run_field_scenario(scenario, config=config)
        landed = f"{record.landing_error:.2f} m from the marker" if record.landed else "did not land"
        print(f"{controller.name:15s}: {record.outcome.value:13s} ({landed}), "
              f"mean CPU {100 * record.resources.mean_cpu:.0f}%, "
              f"mean RAM {record.resources.mean_memory_mb / 1000:.2f} GB")


if __name__ == "__main__":
    main()
