"""Unit and property tests for repro.geometry.aabb."""


import pytest
from hypothesis import given, strategies as st

from repro.geometry import AABB, Vec3

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def make_box(cx, cy, cz, s):
    return AABB.from_center(Vec3(cx, cy, cz), Vec3(s, s, s))


class TestConstruction:
    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            AABB(Vec3(1, 0, 0), Vec3(0, 1, 1))

    def test_from_center_extents(self):
        box = AABB.from_center(Vec3(0, 0, 5), Vec3(2, 4, 10))
        assert box.minimum == Vec3(-1, -2, 0)
        assert box.maximum == Vec3(1, 2, 10)

    def test_from_ground_footprint_sits_on_ground(self):
        box = AABB.from_ground_footprint(10, -5, 4, 6, 12)
        assert box.minimum.z == 0.0
        assert box.maximum.z == 12.0
        assert box.center.x == pytest.approx(10.0)

    def test_volume(self):
        assert AABB.from_center(Vec3.zero(), Vec3(2, 3, 4)).volume == pytest.approx(24.0)


class TestQueries:
    def test_contains_boundary_and_interior(self):
        box = make_box(0, 0, 0, 2)
        assert box.contains(Vec3(0, 0, 0))
        assert box.contains(Vec3(1, 1, 1))
        assert not box.contains(Vec3(1.01, 0, 0))
        assert box.contains(Vec3(1.01, 0, 0), tol=0.02)

    def test_intersects_overlapping_and_disjoint(self):
        a = make_box(0, 0, 0, 2)
        assert a.intersects(make_box(1, 0, 0, 2))
        assert not a.intersects(make_box(5, 0, 0, 2))

    def test_closest_point_inside_is_identity(self):
        box = make_box(0, 0, 0, 2)
        assert box.closest_point(Vec3(0.2, -0.3, 0.1)) == Vec3(0.2, -0.3, 0.1)

    def test_distance_to_point_outside(self):
        box = make_box(0, 0, 0, 2)
        assert box.distance_to_point(Vec3(4, 0, 0)) == pytest.approx(3.0)

    def test_inflated_grows_every_face(self):
        box = make_box(0, 0, 0, 2).inflated(0.5)
        assert box.minimum == Vec3(-1.5, -1.5, -1.5)
        assert box.maximum == Vec3(1.5, 1.5, 1.5)

    def test_union_covers_both(self):
        a, b = make_box(0, 0, 0, 2), make_box(5, 5, 5, 2)
        union = a.union(b)
        assert union.contains(Vec3(0, 0, 0)) and union.contains(Vec3(5, 5, 5))


class TestRayIntersection:
    def test_ray_hits_box_head_on(self):
        box = make_box(5, 0, 0, 2)
        hit = box.ray_intersection(Vec3(0, 0, 0), Vec3(1, 0, 0))
        assert hit == pytest.approx(4.0)

    def test_ray_misses_box(self):
        box = make_box(5, 10, 0, 2)
        assert box.ray_intersection(Vec3(0, 0, 0), Vec3(1, 0, 0)) is None

    def test_ray_starting_inside_reports_zero(self):
        box = make_box(0, 0, 0, 4)
        assert box.ray_intersection(Vec3(0, 0, 0), Vec3(1, 0, 0)) == pytest.approx(0.0)

    def test_ray_respects_max_range(self):
        box = make_box(50, 0, 0, 2)
        assert box.ray_intersection(Vec3(0, 0, 0), Vec3(1, 0, 0), max_range=10.0) is None

    def test_segment_intersects(self):
        box = make_box(5, 0, 0, 2)
        assert box.segment_intersects(Vec3(0, 0, 0), Vec3(10, 0, 0))
        assert not box.segment_intersects(Vec3(0, 0, 0), Vec3(3, 0, 0))
        assert not box.segment_intersects(Vec3(0, 5, 0), Vec3(10, 5, 0))

    def test_degenerate_segment_inside(self):
        box = make_box(0, 0, 0, 2)
        assert box.segment_intersects(Vec3(0, 0, 0), Vec3(0, 0, 0))


class TestProperties:
    @given(coord, coord, coord, st.floats(min_value=0.1, max_value=50))
    def test_center_inside_box(self, x, y, z, s):
        box = make_box(x, y, z, s)
        assert box.contains(box.center, tol=1e-9)

    @given(coord, coord, coord, st.floats(min_value=0.1, max_value=50), st.floats(min_value=0, max_value=10))
    def test_inflation_preserves_containment(self, x, y, z, s, margin):
        box = make_box(x, y, z, s)
        bigger = box.inflated(margin)
        assert bigger.contains(box.minimum) and bigger.contains(box.maximum)

    @given(coord, coord, coord)
    def test_closest_point_is_inside(self, x, y, z):
        box = make_box(0, 0, 0, 4)
        assert box.contains(box.closest_point(Vec3(x, y, z)), tol=1e-9)
