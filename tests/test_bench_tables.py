"""Tests for the bench table rendering and campaign plumbing."""

import pytest

from repro.bench import paper_values
from repro.bench.campaign import CampaignConfig, bench_repetitions, bench_scenario_count
from repro.bench.tables import (
    format_markdown_table,
    format_table,
    render_detection_table,
    render_landing_accuracy,
    render_landing_table,
    render_resource_summary,
)
from repro.core.metrics import CampaignResult, DetectionStats, ResourceStats, RunOutcome, RunRecord


def make_campaign(name="MLS-V3", outcomes=(RunOutcome.SUCCESS, RunOutcome.COLLISION)):
    campaign = CampaignResult(system_name=name)
    for index, outcome in enumerate(outcomes):
        detection = DetectionStats(frames_with_visible_marker=10, frames_detected=9)
        resources = ResourceStats(
            cpu_utilisation_samples=[0.8], memory_mb_samples=[2200.0], gpu_utilisation_samples=[0.3]
        )
        campaign.add(
            RunRecord(
                scenario_id=f"s{index}",
                system_name=name,
                outcome=outcome,
                landing_error=0.3,
                landed=outcome is RunOutcome.SUCCESS,
                detection=detection,
                resources=resources,
            )
        )
    return campaign


class TestPaperValues:
    def test_table1_rates_sum_to_100(self):
        for row in paper_values.TABLE_1_SIL.values():
            assert row["success"] + row["collision"] + row["poor_landing"] == pytest.approx(100.0, abs=0.1)

    def test_shape_claims_present(self):
        assert len(paper_values.SHAPE_CLAIMS) >= 5


class TestTableRendering:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_landing_table_contains_rates_and_paper_reference(self):
        text = render_landing_table({"MLS-V3": make_campaign()})
        assert "MLS-V3" in text
        assert "50.00%" in text
        assert "84.00%" in text  # paper reference value

    def test_render_detection_table(self):
        text = render_detection_table({"MLS-V1": make_campaign("MLS-V1"), "MLS-V3": make_campaign()})
        assert "OpenCV" in text and "TPH-YOLO" in text
        assert "10.00" in text  # 1/10 missed

    def test_render_resource_summary(self):
        text = render_resource_summary(make_campaign())
        assert "2.20 GB" in text
        assert "Mean CPU utilisation" in text

    def test_render_landing_accuracy(self):
        text = render_landing_accuracy(make_campaign(), make_campaign())
        assert "SIL / HIL" in text and "Real world" in text


class TestTableEdgeCases:
    def test_empty_campaign_renders_zero_rates(self):
        empty = CampaignResult(system_name="MLS-V3")
        text = render_landing_table({"MLS-V3": empty})
        assert "0.00%" in text
        assert " 0" in text  # zero runs column

    def test_empty_campaign_detection_and_resources(self):
        empty = CampaignResult(system_name="MLS-V3")
        detection = render_detection_table({"MLS-V3": empty})
        assert "0.00" in detection  # FN rate over zero frames is 0
        resources = render_resource_summary(empty)
        assert "0.00 GB" in resources

    def test_system_missing_from_paper_tables(self):
        hybrid = make_campaign(name="V1.5-hybrid")
        text = render_landing_table({"V1.5-hybrid": hybrid})
        assert "V1.5-hybrid" in text
        # No paper row for a custom composition: the reference column is "-".
        row = next(line for line in text.splitlines() if "V1.5-hybrid" in line)
        assert "| - " in row or row.rstrip().endswith("| 2")
        detection = render_detection_table({"V1.5-hybrid": hybrid})
        assert "nan" in detection  # paper FN reference is NaN

    def test_nan_landing_error_renders(self):
        campaign = CampaignResult(system_name="MLS-V3")
        campaign.add(
            RunRecord(
                scenario_id="s0",
                system_name="MLS-V3",
                outcome=RunOutcome.COLLISION,
                landing_error=float("nan"),
            )
        )
        text = render_landing_accuracy(campaign, None)
        assert "nan m" in text  # no crash, NaN shown explicitly

    def test_markdown_table_shape_and_escaping(self):
        text = format_markdown_table(["a", "b"], [["1", "x|y"], ["22", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("| a")
        assert set(lines[1]) <= {"|", "-", " "}  # the separator row
        assert "x\\|y" in text
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_markdown_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [["only-one"]])

    def test_markdown_table_empty_rows(self):
        text = format_markdown_table(["a", "b"], [])
        assert text.splitlines()[0] == "| a | b |"


class TestCampaignConfig:
    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCENARIOS", "42")
        monkeypatch.setenv("REPRO_BENCH_REPETITIONS", "2")
        assert bench_scenario_count() == 42
        assert bench_repetitions() == 2

    def test_defaults_are_reasonable(self):
        config = CampaignConfig()
        assert config.scenario_count >= 4
        assert config.repetitions >= 1
