"""Direct unit tests for the shared JSONL framing layer (repro/jsonl.py).

The torn-tail reader and header helpers were previously exercised only
indirectly through the persistence and dispatch suites; these tests pin the
framing contract itself.
"""

from __future__ import annotations

import json

import pytest

from repro.jsonl import (
    iter_frame_records,
    read_frame_page,
    read_frame_header,
    read_jsonl_frame,
    validate_frame_header,
)

KIND = "campaign-result"


def write_lines(path, *lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return path


def header_line(kind=KIND, schema=1, **extra):
    return json.dumps({"kind": kind, "schema": schema, **extra})


def parse_payload(line: str) -> dict:
    data = json.loads(line)
    if "value" not in data:
        raise KeyError("value")
    return data


class TestReadFrameHeader:
    def test_reads_first_non_blank_line_only(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", "", "  ", header_line(system="X"), '{"value": 1}'
        )
        header = read_frame_header(path)
        assert header["system"] == "X"

    def test_empty_file_raises(self, tmp_path):
        path = write_lines(tmp_path / "empty.jsonl")
        with pytest.raises(ValueError, match="is empty"):
            read_frame_header(path)

    def test_whitespace_only_file_raises(self, tmp_path):
        path = write_lines(tmp_path / "blank.jsonl", "   ", "\t")
        with pytest.raises(ValueError, match="is empty"):
            read_frame_header(path)

    def test_does_not_read_past_the_header(self, tmp_path):
        # The second line is malformed JSON; the header read must not care.
        path = write_lines(tmp_path / "f.jsonl", header_line(), "{not json")
        assert read_frame_header(path)["kind"] == KIND


class TestValidateFrameHeader:
    def test_wrong_kind(self, tmp_path):
        with pytest.raises(ValueError, match="not a campaign-result"):
            validate_frame_header("p", {"kind": "scenario-suite"}, KIND, 2)

    def test_newer_schema_refused(self):
        with pytest.raises(ValueError, match="at most schema 2"):
            validate_frame_header("p", {"kind": KIND, "schema": 3}, KIND, 2)

    def test_older_schema_accepted(self):
        validate_frame_header("p", {"kind": KIND, "schema": 1}, KIND, 2)

    def test_missing_schema_defaults_to_1(self):
        validate_frame_header("p", {"kind": KIND}, KIND, 1)


class TestIterFrameRecords:
    def test_yields_parsed_payload_lines(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), '{"value": 1}', '{"value": 2}'
        )
        values = [r["value"] for r in iter_frame_records(path, KIND, 1, parse_payload)]
        assert values == [1, 2]

    def test_blank_lines_are_skipped(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), "", '{"value": 1}', "   ", '{"value": 2}'
        )
        values = [r["value"] for r in iter_frame_records(path, KIND, 1, parse_payload)]
        assert values == [1, 2]

    def test_torn_tail_dropped_with_warning_and_callback(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), '{"value": 1}', '{"value": 2, "trunca'
        )
        torn: list[Exception] = []
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            values = [
                r["value"]
                for r in iter_frame_records(
                    path, KIND, 1, parse_payload, on_torn_tail=torn.append
                )
            ]
        assert values == [1]
        assert len(torn) == 1

    def test_torn_tail_with_valid_json_but_bad_payload(self, tmp_path):
        # A mid-append kill can also leave a syntactically valid but
        # incomplete object; parse raising KeyError counts as torn too.
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), '{"value": 1}', '{"other": 2}'
        )
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            values = [r["value"] for r in iter_frame_records(path, KIND, 1, parse_payload)]
        assert values == [1]

    def test_malformed_middle_line_raises_with_location(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), "{broken", '{"value": 2}'
        )
        with pytest.raises(ValueError, match=r"f\.jsonl:2: malformed run record"):
            list(iter_frame_records(path, KIND, 1, parse_payload, description="run record"))

    def test_header_only_file_yields_nothing(self, tmp_path):
        path = write_lines(tmp_path / "f.jsonl", header_line())
        assert list(iter_frame_records(path, KIND, 1, parse_payload)) == []

    def test_empty_file_raises(self, tmp_path):
        path = write_lines(tmp_path / "f.jsonl")
        with pytest.raises(ValueError, match="is empty"):
            list(iter_frame_records(path, KIND, 1, parse_payload))

    def test_header_validation_gate(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(kind="scenario-suite"), '{"value": 1}'
        )
        with pytest.raises(ValueError, match="not a campaign-result"):
            list(iter_frame_records(path, KIND, 1, parse_payload))

    def test_skip_header_validation_still_consumes_header(self, tmp_path):
        # Callers that already read the header get payload lines only, even
        # when the header would fail validation.
        path = write_lines(
            tmp_path / "f.jsonl", header_line(kind="scenario-suite"), '{"value": 9}'
        )
        values = [
            r["value"]
            for r in iter_frame_records(
                path, KIND, 1, parse_payload, skip_header_validation=True
            )
        ]
        assert values == [9]

    def test_streaming_is_lazy(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(), '{"value": 1}', "{broken", '{"value": 2}'
        )
        iterator = iter_frame_records(path, KIND, 1, parse_payload)
        assert next(iterator)["value"] == 1  # the bad line is not reached yet
        with pytest.raises(ValueError, match="malformed"):
            list(iterator)


class TestReadJsonlFrame:
    def test_returns_header_and_raw_payload_lines(self, tmp_path):
        path = write_lines(
            tmp_path / "f.jsonl", header_line(count=2), '{"value": 1}', '{"value": 2}'
        )
        header, lines = read_jsonl_frame(path, KIND, 1)
        assert header["count"] == 2
        assert [json.loads(line)["value"] for line in lines] == [1, 2]


class TestReadFramePage:
    def file(self, tmp_path, count=5):
        lines = [header_line()] + [json.dumps({"value": i}) for i in range(count)]
        return write_lines(tmp_path / "page.jsonl", *lines)

    def test_window_and_total(self, tmp_path):
        path = self.file(tmp_path)
        header, page, total = read_frame_page(
            path, KIND, 1, parse_payload, offset=1, limit=2
        )
        assert header["kind"] == KIND
        assert [r["value"] for r in page] == [1, 2]
        assert total == 5

    def test_no_limit_reads_to_end(self, tmp_path):
        _, page, total = read_frame_page(
            self.file(tmp_path), KIND, 1, parse_payload, offset=3
        )
        assert [r["value"] for r in page] == [3, 4]
        assert total == 5

    def test_offset_past_end_is_empty_with_true_total(self, tmp_path):
        _, page, total = read_frame_page(
            self.file(tmp_path), KIND, 1, parse_payload, offset=99, limit=10
        )
        assert page == []
        assert total == 5

    def test_limit_zero_counts_without_materialising(self, tmp_path):
        _, page, total = read_frame_page(
            self.file(tmp_path), KIND, 1, parse_payload, limit=0
        )
        assert page == []
        assert total == 5

    def test_torn_tail_dropped_and_not_counted(self, tmp_path):
        path = self.file(tmp_path, count=3)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn": ')
        with pytest.warns(RuntimeWarning, match="torn"):
            _, page, total = read_frame_page(path, KIND, 1, parse_payload, limit=10)
        assert [r["value"] for r in page] == [0, 1, 2]
        assert total == 3

    def test_malformed_middle_line_still_raises(self, tmp_path):
        path = write_lines(
            tmp_path / "bad.jsonl", header_line(),
            '{"value": 0}', "not json", '{"value": 2}',
        )
        with pytest.raises(ValueError, match="malformed"):
            read_frame_page(path, KIND, 1, parse_payload)

    def test_negative_offset_or_limit_rejected(self, tmp_path):
        path = self.file(tmp_path)
        with pytest.raises(ValueError, match="offset"):
            read_frame_page(path, KIND, 1, parse_payload, offset=-1)
        with pytest.raises(ValueError, match="limit"):
            read_frame_page(path, KIND, 1, parse_payload, limit=-2)

    def test_wrong_kind_refused(self, tmp_path):
        path = self.file(tmp_path)
        with pytest.raises(ValueError, match="not a scenario-suite"):
            read_frame_page(path, "scenario-suite", 1, parse_payload)
