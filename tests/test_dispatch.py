"""Tests for the distributed dispatch subsystem (repro.dispatch).

Mission execution is stubbed (same pattern as test_campaign_persistence) so
the queue/lease/merge machinery is exercised quickly and deterministically;
the CI ``dispatch-smoke`` job covers the real multi-process path.
"""

import json
import time

import pytest

import repro.bench.campaign as campaign_module
from repro.analysis.engine import CampaignAnalysis
from repro.bench.campaign import Campaign
from repro.core.config import mls_v1, mls_v2
from repro.core.metrics import CampaignResult, DetectionStats, RunOutcome, RunRecord
from repro.dispatch.cli import main as dispatch_main
from repro.dispatch.merge import (
    ShardResultError,
    load_merged,
    merge_dispatch,
    verify_merge,
)
from repro.dispatch.planner import (
    load_plan,
    load_suite,
    plan_dispatch,
    shard_results_dir,
    suite_fingerprint,
)
from repro.dispatch.queue import LeaseLostError, ShardQueue, ShardState
from repro.dispatch.worker import _Heartbeat, _shard_campaign, run_worker
from repro.world.scenario_gen import generate_suite


def make_record(scenario_id, repetition, system="MLS-V1", outcome=RunOutcome.SUCCESS):
    """A deterministic fake mission result for (scenario, repetition, system)."""
    return RunRecord(
        scenario_id=scenario_id,
        system_name=system,
        outcome=outcome,
        landing_error=0.4,
        landed=True,
        mission_time=42.0,
        detection=DetectionStats(frames_with_visible_marker=10, frames_detected=9),
        repetition=repetition,
    )


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace mission execution with a deterministic record factory."""
    calls = []

    def fake_execute(job):
        calls.append((job.system.name, job.scenario.scenario_id, job.repetition))
        return make_record(job.scenario.scenario_id, job.repetition, job.system.name)

    monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
    monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
    return calls


@pytest.fixture
def suite():
    return generate_suite("smoke", count=4, seed=3)


def plan_smoke(tmp_path, suite, shards=2, systems=None, repetitions=1):
    return plan_dispatch(
        tmp_path / "dispatch",
        suite,
        systems or [mls_v1()],
        shards=shards,
        repetitions=repetitions,
    )


class TestPlanner:
    def test_balanced_contiguous_partition(self, tmp_path, suite):
        plan = plan_smoke(tmp_path, suite, shards=3)
        assert [(s.start, s.stop) for s in plan.shards] == [(0, 2), (2, 3), (3, 4)]
        assert [s.index for s in plan.shards] == [0, 1, 2]
        ids = [sid for shard in plan.shards for sid in shard.scenario_ids]
        assert ids == [s.scenario_id for s in suite]

    def test_shard_count_clamped_to_suite(self, tmp_path, suite):
        plan = plan_smoke(tmp_path, suite, shards=99)
        assert len(plan.shards) == 4

    def test_replan_is_idempotent(self, tmp_path, suite):
        first = plan_smoke(tmp_path, suite)
        again = plan_smoke(tmp_path, suite)
        assert again.fingerprint == first.fingerprint
        assert [s.fingerprint for s in again.shards] == [
            s.fingerprint for s in first.shards
        ]

    def test_different_plan_refused(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=2)
        with pytest.raises(ValueError, match="different dispatch plan"):
            plan_smoke(tmp_path, suite, shards=3)
        with pytest.raises(ValueError, match="different dispatch plan"):
            plan_smoke(tmp_path, suite, shards=2, systems=[mls_v2()])

    def test_plan_round_trips_through_disk(self, tmp_path, suite):
        plan = plan_smoke(tmp_path, suite, shards=2, systems=[mls_v1(), mls_v2()])
        loaded = load_plan(tmp_path / "dispatch")
        assert loaded.fingerprint == plan.fingerprint
        assert [s.name for s in loaded.systems] == ["MLS-V1", "MLS-V2"]
        assert loaded.mission == plan.mission
        assert loaded.context == plan.context
        reloaded_suite = load_suite(tmp_path / "dispatch", loaded)
        assert [s.scenario_id for s in reloaded_suite] == [
            s.scenario_id for s in suite
        ]

    def test_edited_plan_refused_on_load(self, tmp_path, suite):
        # Editing plan.json without updating its stored fingerprint must be
        # refused — workers must never silently fly an altered campaign.
        plan_smoke(tmp_path, suite)
        path = tmp_path / "dispatch" / "plan.json"
        data = json.loads(path.read_text())
        data["repetitions"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="edited or corrupted"):
            load_plan(tmp_path / "dispatch")

    def test_tampered_suite_refused(self, tmp_path, suite):
        plan_smoke(tmp_path, suite)
        other = generate_suite("smoke", count=4, seed=99)
        other.to_jsonl(tmp_path / "dispatch" / "suite.jsonl")
        with pytest.raises(ValueError, match="does not match the plan"):
            load_suite(tmp_path / "dispatch")

    def test_validation_errors(self, tmp_path, suite):
        with pytest.raises(ValueError, match="shards must be positive"):
            plan_dispatch(tmp_path, suite, [mls_v1()], shards=0)
        with pytest.raises(ValueError, match="without systems"):
            plan_dispatch(tmp_path, suite, [], shards=1)
        with pytest.raises(ValueError, match="duplicate system names"):
            plan_dispatch(tmp_path, suite, [mls_v1(), mls_v1()], shards=1)
        with pytest.raises(ValueError, match="unknown platform"):
            plan_dispatch(tmp_path, suite, [mls_v1()], shards=1, platform="cray")

    def test_unplanned_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a dispatch directory"):
            load_plan(tmp_path)


class TestShardQueue:
    def test_claims_are_exclusive_and_ordered(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=2)
        queue = ShardQueue(tmp_path / "dispatch")
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first.shard.index == 0
        assert second.shard.index == 1
        assert queue.claim("w3") is None  # both held, none stale
        states = [s.state for s in queue.status()]
        assert states == [ShardState.RUNNING, ShardState.RUNNING]

    def test_release_makes_shard_claimable_again(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=2)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("w1")
        lease.release()
        again = queue.claim("w2")
        assert again.shard.index == 0

    def test_done_shards_are_never_reclaimed(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=2)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("w1")
        lease.mark_done({"MLS-V1": 2})
        nxt = queue.claim("w1")
        assert nxt.shard.index == 1
        nxt.mark_done({"MLS-V1": 2})
        assert queue.claim("w1") is None
        assert queue.all_done()
        assert [s.state for s in queue.status()] == [ShardState.DONE, ShardState.DONE]
        assert [s.records for s in queue.status()] == [2, 2]

    def test_stale_lease_is_evicted_exactly_like_a_crash(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        dead = queue.claim("dead-worker", lease_seconds=0.1)
        time.sleep(0.15)
        assert queue.status()[0].state == ShardState.STALE
        stolen = queue.claim("rescuer", lease_seconds=30.0)
        assert stolen is not None
        assert stolen.worker_id == "rescuer"
        # The dead worker's lease object is now invalid.
        with pytest.raises(LeaseLostError):
            dead.heartbeat()

    def test_heartbeat_keeps_a_slow_shard_alive(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("slow", lease_seconds=0.3)
        with _Heartbeat(lease, interval=0.05):
            time.sleep(0.45)  # well past the lease without heartbeats
            assert queue.claim("thief", lease_seconds=0.3) is None
            assert queue.status()[0].state == ShardState.RUNNING

    def test_torn_lease_file_expires_via_mtime(self, tmp_path, suite):
        import os

        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        path = queue.lease_path(queue.plan.shards[0])
        path.write_text('{"worker": "torn')  # writer died mid-write
        old = time.time() - 3600.0
        os.utime(path, (old, old))
        lease = queue.claim("rescuer", lease_seconds=30.0)
        assert lease is not None

    def test_release_after_eviction_leaves_new_owner_lease(self, tmp_path, suite):
        # A worker that stalls past its lease and then errors out must not
        # unlink the lease the rescuing worker now holds.
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        stalled = queue.claim("stalled", lease_seconds=0.1)
        time.sleep(0.15)
        rescuer = queue.claim("rescuer", lease_seconds=30.0)
        assert rescuer is not None
        stalled.release()  # token-guarded: must be a no-op
        status = queue.status()[0]
        assert status.state == ShardState.RUNNING
        assert status.worker == "rescuer"
        assert queue.claim("thief", lease_seconds=30.0) is None
        rescuer.heartbeat()  # still the owner

    def test_eviction_verifies_lease_identity(self, tmp_path, suite, monkeypatch):
        # A contender acting on an outdated staleness observation (the lease
        # it saw stale has since been replaced by a fresh one) must restore
        # the fresh lease instead of stealing it.
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        owner = queue.claim("owner", lease_seconds=30.0)
        assert owner is not None
        outdated = (
            {"token": "long-gone", "heartbeat_at": time.time() - 3600, "lease_seconds": 0.1},
            time.time() - 3600,
        )
        monkeypatch.setattr(ShardQueue, "_lease_heartbeat", lambda self, shard: outdated)
        assert queue.claim("thief", lease_seconds=30.0) is None
        monkeypatch.undo()
        owner.heartbeat()  # the fresh lease survived the attempted eviction
        assert queue.status()[0].worker == "owner"

    def test_done_written_but_lease_leaked(self, tmp_path, suite):
        # A worker can die after publishing done.json but before releasing
        # its lease: the shard must read as done, not claimable.
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("w1", lease_seconds=0.1)
        queue_done = queue.done_path(lease.shard)
        import os

        tmp = queue_done.with_name("tmp")
        tmp.write_text(
            json.dumps(
                {
                    "kind": "shard-done",
                    "shard": 0,
                    "plan": queue.plan.fingerprint,
                    "worker": "w1",
                    "records": {"MLS-V1": 4},
                }
            )
        )
        os.replace(tmp, queue_done)  # died right here, lease never released
        time.sleep(0.15)
        assert queue.claim("w2") is None
        assert queue.status()[0].state == ShardState.DONE


class TestWorkerAndMerge:
    def _serial_reference(self, tmp_path, suite, systems=None):
        out = tmp_path / "serial"
        (
            Campaign(*(systems or [mls_v1()]))
            .suite(suite)
            .repetitions(1)
            .out(out)
            .run()
        )
        return out

    def test_merged_output_is_byte_identical_to_serial(
        self, tmp_path, suite, stub_execute
    ):
        # The acceptance criterion: fixed seed, sharded multi-worker run,
        # merged bytes == single-process Campaign.run() persistence bytes.
        serial = self._serial_reference(tmp_path, suite, [mls_v1(), mls_v2()])
        plan_smoke(tmp_path, suite, shards=3, systems=[mls_v1(), mls_v2()])
        directory = tmp_path / "dispatch"
        first = run_worker(directory, worker_id="w1", max_shards=1)
        second = run_worker(directory, worker_id="w2", poll_seconds=0.01)
        assert first.shards_completed == [0]
        assert sorted(second.shards_completed) == [1, 2]
        merged = merge_dispatch(directory)
        for name, path in merged.items():
            assert path.read_bytes() == (serial / path.name).read_bytes(), name

    def test_load_merged_matches_run_results(self, tmp_path, suite, stub_execute):
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        merge_dispatch(directory)
        results = load_merged(directory)
        assert set(results) == {"MLS-V1"}
        assert len(results["MLS-V1"]) == 4
        assert isinstance(results["MLS-V1"], CampaignResult)

    def test_crashed_worker_resumes_via_lease_expiry(
        self, tmp_path, suite, stub_execute, monkeypatch
    ):
        # Worker w1 dies mid-shard (after persisting one record, lease never
        # released).  Once the lease expires, w2 re-claims, resumes from the
        # persisted record, and the merged result equals an uninterrupted run.
        serial = self._serial_reference(tmp_path, suite)
        plan = plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w1", lease_seconds=0.2)
        assert lease.shard.index == 0

        class WorkerDied(RuntimeError):
            pass

        real_execute = campaign_module._execute_job
        crash_after = {"remaining": 1}

        def dying_execute(job):
            if crash_after["remaining"] <= 0:
                raise WorkerDied("SIGKILL")
            crash_after["remaining"] -= 1
            return real_execute(job)

        monkeypatch.setattr(campaign_module, "_execute_job", dying_execute)
        campaign = _shard_campaign(
            plan, suite, lease.shard, lease.results_dir, None
        )
        with pytest.raises(WorkerDied):
            campaign.run()
        # Crash: no release, no done marker; exactly one record persisted.
        monkeypatch.setattr(campaign_module, "_execute_job", real_execute)
        persisted = CampaignResult.from_jsonl(
            shard_results_dir(directory, lease.shard) / "MLS-V1.jsonl"
        )
        assert len(persisted) == 1
        assert not queue.all_done()

        stub_execute.clear()
        time.sleep(0.25)  # let the dead worker's lease expire
        report = run_worker(directory, worker_id="w2", poll_seconds=0.01)
        assert sorted(report.shards_completed) == [0, 1]
        # The persisted record was restored, not re-flown: 4 cells total,
        # 1 survived the crash, so w2 executed exactly 3.
        assert len(stub_execute) == 3

        merged = merge_dispatch(directory)
        assert merged["MLS-V1"].read_bytes() == (serial / "MLS-V1.jsonl").read_bytes()

    def test_worker_abandons_shard_when_lease_is_lost(
        self, tmp_path, suite, stub_execute, monkeypatch
    ):
        # If another worker legitimately takes the shard over mid-flight
        # (this worker stalled past its lease), this worker must neither
        # publish done.json nor count the shard as completed.
        import threading

        import repro.dispatch.worker as worker_module

        plan_smoke(tmp_path, suite, shards=1)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)

        class FakeHeartbeat:
            """No heartbeats while flying; discovers eviction at shard end."""

            def __init__(self, lease, interval):
                self._lease = lease
                self.error = None

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                try:
                    self._lease.heartbeat()
                except LeaseLostError as error:
                    self.error = error

        monkeypatch.setattr(worker_module, "_Heartbeat", FakeHeartbeat)
        real_execute = campaign_module._execute_job
        slow_execute = lambda job: (time.sleep(0.3), real_execute(job))[1]
        monkeypatch.setattr(campaign_module, "_execute_job", slow_execute)

        thief_lease = []
        thief = threading.Timer(
            0.15, lambda: thief_lease.append(queue.claim("thief", lease_seconds=30.0))
        )
        thief.start()
        report = run_worker(
            directory, worker_id="stalled", lease_seconds=0.1, wait=False
        )
        thief.join()
        assert thief_lease and thief_lease[0] is not None  # takeover happened
        assert report.shards_completed == []  # the shard was abandoned
        assert queue.read_done(queue.plan.shards[0]) is None  # no done.json
        status = queue.status()[0]
        assert status.state == ShardState.RUNNING
        assert status.worker == "thief"

    def test_merge_refuses_unfinished_plan(self, tmp_path, suite, stub_execute):
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1", max_shards=1)
        with pytest.raises(ShardResultError, match="not done yet"):
            merge_dispatch(directory)

    def test_merge_refuses_tampered_record(self, tmp_path, suite, stub_execute):
        plan = plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        path = shard_results_dir(directory, plan.shards[0]) / "MLS-V1.jsonl"
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["scenario_fingerprint"] = "0" * 16
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ShardResultError, match="different scenario contents"):
            merge_dispatch(directory)

    def test_merge_refuses_missing_record(self, tmp_path, suite, stub_execute):
        plan = plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        path = shard_results_dir(directory, plan.shards[1]) / "MLS-V1.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last record
        with pytest.raises(ShardResultError, match="holds no record"):
            merge_dispatch(directory)

    def test_verify_merge_counts_without_writing(self, tmp_path, suite, stub_execute):
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        assert verify_merge(directory) == {"MLS-V1": 4}
        assert not (directory / "merged").exists()

    def test_duplicate_identical_records_collapse(self, tmp_path, suite, stub_execute):
        # A shard flown twice across a lease eviction appends every record
        # twice; identical duplicates merge cleanly.
        plan = plan_smoke(tmp_path, suite, shards=1)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        path = shard_results_dir(directory, plan.shards[0]) / "MLS-V1.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines + lines[1:]) + "\n")
        merged = merge_dispatch(directory)
        assert len(CampaignResult.from_jsonl(merged["MLS-V1"])) == 4

    def test_diverging_duplicate_records_refused(self, tmp_path, suite, stub_execute):
        plan = plan_smoke(tmp_path, suite, shards=1)
        directory = tmp_path / "dispatch"
        run_worker(directory, worker_id="w1")
        path = shard_results_dir(directory, plan.shards[0]) / "MLS-V1.jsonl"
        lines = path.read_text().splitlines()
        clone = json.loads(lines[1])
        clone["mission_time"] = 999.0
        path.write_text("\n".join(lines + [json.dumps(clone, sort_keys=True)]) + "\n")
        with pytest.raises(ShardResultError, match="two \\*different\\* records"):
            merge_dispatch(directory)


class TestCampaignDispatchTerminal:
    def test_dispatch_equals_out_run(self, tmp_path, suite, stub_execute):
        serial = (
            Campaign(mls_v1()).suite(suite).repetitions(1).out(tmp_path / "serial").run()
        )
        results = (
            Campaign(mls_v1())
            .suite(suite)
            .repetitions(1)
            .dispatch(tmp_path / "dispatch", shards=2, workers=1)
        )
        as_dicts = lambda result: [r.to_dict() for r in result.records]
        assert as_dicts(results["MLS-V1"]) == as_dicts(serial["MLS-V1"])
        assert (tmp_path / "dispatch" / "merged" / "MLS-V1.jsonl").read_bytes() == (
            tmp_path / "serial" / "MLS-V1.jsonl"
        ).read_bytes()

    def test_dispatch_refuses_callable_platform(self, tmp_path, suite, stub_execute):
        from repro.core.platform import DesktopPlatform

        campaign = Campaign(mls_v1()).suite(suite).platform(DesktopPlatform)
        with pytest.raises(ValueError, match="string platform key"):
            campaign.dispatch(tmp_path / "dispatch", shards=2)

    def test_redispatch_resumes_from_done_shards(self, tmp_path, suite, stub_execute):
        campaign = lambda: Campaign(mls_v1()).suite(suite).repetitions(1)
        campaign().dispatch(tmp_path / "d", shards=2, workers=1)
        executed_first = len(stub_execute)
        stub_execute.clear()
        again = campaign().dispatch(tmp_path / "d", shards=2, workers=1)
        assert executed_first == 4
        assert stub_execute == []  # every shard already done: nothing re-flown
        assert len(again["MLS-V1"]) == 4


class TestAnalysisDiscovery:
    def test_summarize_finds_merged_results_in_dispatch_dir(
        self, tmp_path, suite, stub_execute
    ):
        Campaign(mls_v1()).suite(suite).repetitions(1).dispatch(
            tmp_path / "dispatch", shards=2, workers=1
        )
        analysis = CampaignAnalysis(str(tmp_path / "dispatch"))
        summaries = analysis.summaries()
        assert set(summaries) == {"MLS-V1"}
        assert summaries["MLS-V1"].runs == 4
        # The suite JSONL at the dispatch root joins automatically, so
        # scenario-factor slicing works on a dispatch directory too.
        assert analysis.slice("stress-axis")


class TestDispatchCli:
    def _plan_args(self, directory):
        return [
            "plan", str(directory),
            "--preset", "smoke", "--count", "4", "--seed", "3",
            "--shards", "3", "--systems", "mls-v1",
        ]

    def test_plan_work_status_merge_round_trip(
        self, tmp_path, suite, stub_execute, capsys
    ):
        directory = tmp_path / "dispatch"
        assert dispatch_main(self._plan_args(directory)) == 0
        assert "3 shard(s)" in capsys.readouterr().out
        assert dispatch_main(["work", str(directory), "--worker-id", "cli-w1"]) == 0
        assert "completed 3 shard(s)" in capsys.readouterr().out
        assert dispatch_main(["status", str(directory)]) == 0
        assert capsys.readouterr().out.count("done") >= 3
        assert dispatch_main(["merge", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "merged MLS-V1" in out
        assert (directory / "merged" / "MLS-V1.jsonl").exists()

    def test_conflicting_replan_exits_2(self, tmp_path, suite, stub_execute, capsys):
        directory = tmp_path / "dispatch"
        assert dispatch_main(self._plan_args(directory)) == 0
        args = self._plan_args(directory)
        args[args.index("--shards") + 1] = "2"
        assert dispatch_main(args) == 2
        assert "different dispatch plan" in capsys.readouterr().err

    def test_merge_before_done_exits_2(self, tmp_path, suite, stub_execute, capsys):
        directory = tmp_path / "dispatch"
        assert dispatch_main(self._plan_args(directory)) == 0
        assert dispatch_main(["merge", str(directory)]) == 2
        assert "not done yet" in capsys.readouterr().err

    def test_status_on_unplanned_directory_exits_2(self, tmp_path, capsys):
        assert dispatch_main(["status", str(tmp_path)]) == 2
        assert "not a dispatch directory" in capsys.readouterr().err

    def test_plan_from_spec_file(self, tmp_path, capsys):
        from repro.world.scenario_gen import SUITE_PRESETS

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(SUITE_PRESETS["smoke"].to_dict()))
        assert (
            dispatch_main(
                [
                    "plan", str(tmp_path / "dispatch"),
                    "--spec", str(spec_file), "--count", "4", "--seed", "3",
                    "--shards", "2", "--systems", "mls-v1",
                ]
            )
            == 0
        )
        plan = load_plan(tmp_path / "dispatch")
        # Identical to planning over the equivalent generated suite.
        expected = generate_suite("smoke", count=4, seed=3)
        assert plan.suite_count == 4
        assert plan.suite_fingerprint == suite_fingerprint(expected)

    def test_status_json_payload(self, tmp_path, suite, stub_execute, capsys):
        directory = tmp_path / "dispatch"
        plan = plan_smoke(tmp_path, suite, shards=2)
        run_worker(directory, worker_id="w0", max_shards=1, wait=False)
        assert dispatch_main(["status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fingerprint"] == plan.fingerprint
        assert payload["context"] == plan.context
        assert payload["total_runs"] == 4
        assert payload["all_done"] is False
        assert payload["shard_states"]["done"] == 1
        assert payload["shard_states"]["pending"] == 1
        states = {shard["shard"]: shard["state"] for shard in payload["shards"]}
        assert sorted(states) == ["shard-0000", "shard-0001"]
        assert sorted(states.values()) == ["done", "pending"]
        done = next(s for s in payload["shards"] if s["state"] == "done")
        assert done["records"] == 2
        assert done["worker"] == "w0"

    def test_status_json_all_done(self, tmp_path, suite, stub_execute, capsys):
        directory = tmp_path / "dispatch"
        plan_smoke(tmp_path, suite, shards=2)
        run_worker(directory, worker_id="w0")
        assert dispatch_main(["status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["all_done"] is True
        assert payload["runs_done"] == payload["total_runs"] == 4
        assert payload["records"] == 4

    def test_plan_from_invalid_spec_lists_every_issue(self, tmp_path, capsys):
        spec_file = tmp_path / "bad-spec.json"
        spec_file.write_text(json.dumps({"count": 0, "bogus": 1, "seed": "x"}))
        assert (
            dispatch_main(
                [
                    "plan", str(tmp_path / "dispatch"),
                    "--spec", str(spec_file), "--shards", "2",
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "invalid suite spec" in err
        for field in ("count", "bogus", "seed"):
            assert field in err


class TestLeaseObservability:
    def test_status_surfaces_lease_age_and_limit(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=2)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("w0", lease_seconds=30.0)
        assert lease is not None
        claimed = queue.status()[lease.shard.index]
        assert claimed.state is ShardState.RUNNING
        assert claimed.stale is False
        assert claimed.lease_seconds == 30.0
        assert 0.0 <= claimed.heartbeat_age < 30.0
        other = next(s for s in queue.status() if s.shard.index != lease.shard.index)
        assert other.lease_seconds is None  # pending: nothing claimed it
        payload = claimed.to_dict()
        assert payload["lease_seconds"] == 30.0
        assert payload["stale"] is False
        lease.release()

    def test_status_marks_expired_heartbeat_stale(self, tmp_path, suite):
        plan_smoke(tmp_path, suite, shards=1)
        queue = ShardQueue(tmp_path / "dispatch")
        lease = queue.claim("w0", lease_seconds=0.05)
        time.sleep(0.1)
        status = queue.status()[0]
        assert status.state is ShardState.STALE
        assert status.stale is True
        assert status.to_dict()["stale"] is True
        assert status.heartbeat_age > status.lease_seconds == 0.05
        lease.release()

    def test_cli_status_shows_age_against_limit(
        self, tmp_path, suite, stub_execute, capsys
    ):
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w0", lease_seconds=60.0)
        assert dispatch_main(["status", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "/60s" in out           # age rendered against its lease limit
        assert "(stale!)" not in out
        lease.release()

    def test_cli_status_flags_stale_lease(self, tmp_path, suite, stub_execute, capsys):
        plan_smoke(tmp_path, suite, shards=1)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w0", lease_seconds=0.05)
        time.sleep(0.1)
        assert dispatch_main(["status", str(directory)]) == 0
        assert "(stale!)" in capsys.readouterr().out
        lease.release()

    def test_status_json_includes_lease_fields(self, tmp_path, suite, capsys):
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w0", lease_seconds=45.0)
        assert dispatch_main(["status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_state = {s["state"]: s for s in payload["shards"]}
        assert by_state["running"]["lease_seconds"] == 45.0
        assert by_state["running"]["stale"] is False
        assert by_state["pending"]["lease_seconds"] is None
        lease.release()

    def test_claim_and_steal_metrics(self, tmp_path, suite):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        try:
            plan_smoke(tmp_path, suite, shards=1)
            queue = ShardQueue(tmp_path / "dispatch")
            lease = queue.claim("w0", lease_seconds=0.05)
            assert lease is not None
            time.sleep(0.1)  # let the heartbeat expire
            stolen = queue.claim("thief", lease_seconds=30.0)
            assert stolen is not None
            claims = METRICS.counter("repro_dispatch_claims_total")
            assert claims.value(result="fresh") == 1
            assert claims.value(result="stolen") == 1
            stolen.release()
        finally:
            METRICS.reset()


class TestStatusJsonLeaseParity:
    def test_json_payload_carries_lease_fields(
        self, tmp_path, suite, stub_execute, capsys
    ):
        # The machine-readable listing must expose exactly what the human
        # table renders: lease limit, heartbeat age and staleness.
        plan_smoke(tmp_path, suite, shards=2)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w0", lease_seconds=60.0)
        assert dispatch_main(["status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        claimed = next(s for s in payload["shards"] if s["state"] == "running")
        assert claimed["lease_seconds"] == 60.0
        assert 0.0 <= claimed["heartbeat_age"] < 60.0
        assert claimed["stale"] is False
        pending = next(s for s in payload["shards"] if s["state"] == "pending")
        assert pending["lease_seconds"] is None
        assert pending["heartbeat_age"] is None
        assert pending["stale"] is False
        lease.release()

    def test_json_payload_flags_stale_lease(
        self, tmp_path, suite, stub_execute, capsys
    ):
        plan_smoke(tmp_path, suite, shards=1)
        directory = tmp_path / "dispatch"
        queue = ShardQueue(directory)
        lease = queue.claim("w0", lease_seconds=0.05)
        time.sleep(0.1)
        assert dispatch_main(["status", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (shard,) = payload["shards"]
        assert shard["stale"] is True
        assert shard["heartbeat_age"] > shard["lease_seconds"] == 0.05
        lease.release()
