"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

from __future__ import annotations

import json
from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.bench.campaign import Campaign, campaign_context_fingerprint
from repro.core.commands import Command, CommandKind
from repro.core.metrics import (
    RECORD_FACTORS,
    RESULT_SCHEMA_VERSION,
    RunOutcome,
    RunRecord,
    append_record_jsonl,
    read_campaign_jsonl,
)
from repro.core.config import mls_v1
from repro.core.mission import MissionConfig, MissionRunner
from repro.core.registry import MappingStack
from repro.faults.classifier import FailureMode, classify_record, failure_mode_label
from repro.faults.coverage import accumulate_coverage, render_coverage_report
from repro.faults.harness import FaultHarness, FaultyDetector, FaultyPlanner, _ActiveFault
from repro.faults.spec import (
    FAULT_MODES,
    FAULT_PRESETS,
    FaultSpec,
    dump_fault_plan,
    fault_run_seed,
    load_fault_plan,
    resolve_faults,
)
from repro.geometry import Pose, Vec3
from repro.mapping.voxel_grid import VoxelGrid
from repro.perception.detection import Detection, DetectionFrame
from repro.planning.types import PlannerStatus, PlanningResult
from repro.sensors.camera import CameraFrame, CameraIntrinsics
from repro.sensors.depth import PointCloud
from repro.vehicle.state import EstimatedState
from repro.world.scenario_gen import SuiteSpec, generate_suite

FP = "0123456789abcdef"  # stand-in scenario fingerprint


def make_frame(timestamp: float = 0.0, altitude: float = 10.0) -> CameraFrame:
    intr = CameraIntrinsics(width=8, height=8)
    return CameraFrame(
        image=np.full((8, 8), 0.5),
        camera_pose=Pose.at(Vec3(0.0, 0.0, altitude)),
        intrinsics=intr,
        timestamp=timestamp,
    )


def make_estimate(altitude: float = 10.0) -> EstimatedState:
    return EstimatedState(position=Vec3(1.0, 2.0, altitude))


def harness_for(*specs: FaultSpec, repetition: int = 0) -> FaultHarness:
    harness = FaultHarness(specs, scenario_fingerprint=FP, repetition=repetition)
    # Establish a finite estimated altitude so altitude gating is defined.
    harness.filter_estimate(make_estimate(), 0.0)
    return harness


# --------------------------------------------------------------------- #
# specs
# --------------------------------------------------------------------- #
class TestFaultSpec:
    def test_defaults_and_derived_name(self):
        spec = FaultSpec(target="camera", mode="freeze")
        assert spec.name == "camera-freeze"
        assert 0.0 <= spec.severity <= 1.0

    def test_every_registered_mode_is_constructible(self):
        for target, modes in FAULT_MODES.items():
            for mode in modes:
                assert FaultSpec(target=target, mode=mode).spec_hash()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target": "nope", "mode": "freeze"},
            {"target": "camera", "mode": "nope"},
            {"target": "camera", "mode": "freeze", "severity": 1.5},
            {"target": "camera", "mode": "freeze", "probability": -0.1},
            {"target": "camera", "mode": "freeze", "start": -1.0},
            {"target": "camera", "mode": "freeze", "duration": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_round_trip(self):
        spec = FaultSpec(
            target="planning", mode="timeout", severity=0.3,
            start=None, duration=None, below_altitude=6.0, probability=0.5,
            name="flaky-planner",
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown FaultSpec keys"):
            FaultSpec.from_dict({"target": "camera", "mode": "freeze", "oops": 1})

    def test_spec_hash_is_content_sensitive(self):
        a = FaultSpec(target="camera", mode="freeze")
        b = FaultSpec(target="camera", mode="freeze", severity=0.9)
        assert a.spec_hash() != b.spec_hash()
        assert a.spec_hash() == FaultSpec(target="camera", mode="freeze").spec_hash()

    def test_fault_plan_file_round_trip(self, tmp_path):
        specs = FAULT_PRESETS["sensor"]
        path = dump_fault_plan(specs, tmp_path / "plan.json")
        assert load_fault_plan(path) == specs

    def test_duplicate_fault_names_rejected(self):
        mild = FaultSpec(target="camera", mode="dropout", severity=0.3)
        harsh = FaultSpec(target="camera", mode="dropout", severity=0.9)
        # Both auto-named "camera-dropout": coverage rows would conflate.
        with pytest.raises(ValueError, match="duplicate fault names"):
            Campaign("mls-v1").faults(mild, harsh)
        with pytest.raises(ValueError, match="duplicate fault names"):
            FaultHarness([mild, harsh], scenario_fingerprint=FP)
        # Explicit names make the sweep legal.
        Campaign("mls-v1").faults(
            replace(mild, name="dropout-mild"), replace(harsh, name="dropout-harsh")
        )

    def test_resolve_faults(self, tmp_path):
        spec = FaultSpec(target="camera", mode="dropout")
        assert resolve_faults(spec) == (spec,)
        assert resolve_faults("smoke") == FAULT_PRESETS["smoke"]
        assert resolve_faults([spec, "vehicle"]) == (spec,) + FAULT_PRESETS["vehicle"]
        path = dump_fault_plan((spec,), tmp_path / "f.json")
        assert resolve_faults(str(path)) == (spec,)
        with pytest.raises(ValueError, match="unknown fault preset"):
            resolve_faults("not-a-preset")


# --------------------------------------------------------------------- #
# scheduling determinism
# --------------------------------------------------------------------- #
class TestScheduling:
    def test_seed_depends_on_scenario_repetition_and_spec(self):
        spec = FaultSpec(target="camera", mode="dropout")
        base = fault_run_seed(spec, FP, 0)
        assert fault_run_seed(spec, FP, 0) == base
        assert fault_run_seed(spec, FP, 1) != base
        assert fault_run_seed(spec, "feedbeef" * 2, 0) != base
        assert fault_run_seed(replace(spec, severity=0.9), FP, 0) != base

    def test_arming_is_deterministic(self):
        spec = FaultSpec(target="camera", mode="dropout", probability=0.5)
        armings = [_ActiveFault(spec, FP, rep).armed for rep in range(32)]
        assert armings == [_ActiveFault(spec, FP, rep).armed for rep in range(32)]
        assert any(armings) and not all(armings)  # p=0.5 over 32 reps

    def test_probability_zero_never_arms(self):
        fault = _ActiveFault(
            FaultSpec(target="camera", mode="dropout", probability=0.0), FP, 0
        )
        assert not fault.armed
        assert not fault.active(30.0, 10.0)
        assert fault.metadata()["armed"] is False

    def test_window_gating(self):
        fault = _ActiveFault(
            FaultSpec(target="camera", mode="dropout", start=10.0, duration=5.0), FP, 0
        )
        assert not fault.active(9.9, 10.0)
        assert fault.active(10.0, 10.0)
        assert fault.active(14.9, 10.0)
        assert not fault.active(15.0, 10.0)
        meta = fault.metadata()
        assert meta["activated"] and meta["first_active"] == 10.0

    def test_open_ended_duration(self):
        fault = _ActiveFault(
            FaultSpec(target="camera", mode="dropout", start=1.0, duration=None), FP, 0
        )
        assert fault.active(1e6, 10.0)

    def test_drawn_start_is_deterministic(self):
        spec = FaultSpec(target="camera", mode="dropout", start=None)
        a = _ActiveFault(spec, FP, 0)
        assert 10.0 <= a.start <= 120.0
        assert a.start == _ActiveFault(spec, FP, 0).start
        assert a.start != _ActiveFault(spec, FP, 1).start

    def test_altitude_trigger(self):
        spec = FaultSpec(
            target="camera", mode="dropout", start=0.0, duration=None,
            below_altitude=5.0, severity=1.0,
        )
        harness = FaultHarness([spec], scenario_fingerprint=FP)
        # No estimate seen yet: altitude unknown (treated as high), no fault.
        assert harness.filter_frame(make_frame(1.0), 1.0) is not None
        harness.filter_estimate(make_estimate(altitude=3.0), 2.0)
        assert harness.filter_frame(make_frame(2.2), 2.2) is None


# --------------------------------------------------------------------- #
# injectors
# --------------------------------------------------------------------- #
class TestCameraInjectors:
    def test_dropout_full_severity_drops_every_frame(self):
        harness = harness_for(
            FaultSpec(target="camera", mode="dropout", severity=1.0, start=5.0, duration=10.0)
        )
        assert harness.filter_frame(make_frame(1.0), 1.0) is not None
        assert harness.filter_frame(make_frame(6.0), 6.0) is None
        assert harness.filter_frame(make_frame(20.0), 20.0) is not None

    def test_freeze_redelivers_the_pre_fault_frame(self):
        harness = harness_for(
            FaultSpec(target="camera", mode="freeze", start=5.0, duration=10.0)
        )
        before = make_frame(1.0)
        assert harness.filter_frame(before, 1.0) is before
        frozen = harness.filter_frame(make_frame(6.0), 6.0)
        assert frozen is before  # stale frame, stale timestamp
        after = make_frame(20.0)
        assert harness.filter_frame(after, 20.0) is after

    def test_bias_offsets_the_back_projection_pose(self):
        harness = harness_for(
            FaultSpec(target="camera", mode="bias", severity=1.0, start=0.0, duration=None)
        )
        frame = make_frame(1.0)
        biased = harness.filter_frame(frame, 1.0)
        shift = biased.camera_pose.position - frame.camera_pose.position
        assert shift.norm() > 1.0
        assert np.array_equal(biased.image, frame.image)

    def test_noise_burst_perturbs_and_clips_the_image(self):
        harness = harness_for(
            FaultSpec(target="camera", mode="noise-burst", severity=1.0, start=0.0, duration=None)
        )
        frame = make_frame(1.0)
        noisy = harness.filter_frame(frame, 1.0)
        assert not np.array_equal(noisy.image, frame.image)
        assert float(noisy.image.min()) >= 0.0 and float(noisy.image.max()) <= 1.0


class TestDepthInjectors:
    def make_cloud(self, t=1.0):
        return PointCloud(points=[Vec3(1.0, 2.0, 3.0), Vec3(4.0, 5.0, 6.0)], timestamp=t)

    def test_dropout(self):
        harness = harness_for(
            FaultSpec(target="depth", mode="dropout", severity=1.0, start=0.0, duration=None)
        )
        assert harness.filter_cloud(self.make_cloud(), 1.0) is None

    def test_freeze(self):
        harness = harness_for(
            FaultSpec(target="depth", mode="freeze", start=5.0, duration=None)
        )
        before = self.make_cloud(1.0)
        harness.filter_cloud(before, 1.0)
        assert harness.filter_cloud(self.make_cloud(6.0), 6.0) is before

    def test_bias_shifts_every_point_identically(self):
        harness = harness_for(
            FaultSpec(target="depth", mode="bias", severity=1.0, start=0.0, duration=None)
        )
        cloud = self.make_cloud()
        shifted = harness.filter_cloud(cloud, 1.0)
        deltas = [s - p for s, p in zip(shifted.points, cloud.points)]
        assert deltas[0].norm() > 0.5
        assert (deltas[0] - deltas[1]).norm() < 1e-12

    def test_noise_burst_jitters_points(self):
        harness = harness_for(
            FaultSpec(target="depth", mode="noise-burst", severity=1.0, start=0.0, duration=None)
        )
        cloud = self.make_cloud()
        jittered = harness.filter_cloud(cloud, 1.0)
        assert len(jittered.points) == len(cloud.points)
        assert any((s - p).norm() > 1e-6 for s, p in zip(jittered.points, cloud.points))


class _FixedDetector:
    marker_word = "inner-attr"

    def __init__(self, detections):
        self.detections = detections

    def detect(self, frame):
        return DetectionFrame(timestamp=frame.timestamp, detections=list(self.detections))


class TestFrozenClockInterplay:
    def test_perception_windows_use_mission_time_not_frame_timestamp(self):
        # A frozen camera frame carries a stale timestamp; perception fault
        # windows must still be evaluated on mission time.
        harness = harness_for(
            FaultSpec(target="camera", mode="freeze", start=5.0, duration=None),
            FaultSpec(target="perception", mode="phantom-detection", severity=1.0,
                      start=50.0, duration=None),
        )
        detector = FaultyDetector(_FixedDetector([]), harness)
        harness.filter_frame(make_frame(1.0), 1.0)  # stored as the frozen frame
        phantoms = []
        for tick in range(30):
            now = 60.0 + tick
            harness.filter_estimate(make_estimate(), now)
            delivered = harness.filter_frame(make_frame(now), now)
            assert delivered.timestamp == 1.0  # frozen
            phantoms.extend(detector.detect(delivered).detections)
        assert phantoms  # the phantom window [50, inf) is active at t=60+


class TestPerceptionInjectors:
    def detection(self):
        return Detection(
            marker_id=7, pixel_center=(4.0, 4.0), pixel_size=6.0,
            world_position=Vec3(1.0, 1.0, 0.0),
        )

    def test_missed_detection_drops_everything_at_full_severity(self):
        harness = harness_for(
            FaultSpec(target="perception", mode="missed-detection", severity=1.0,
                      start=0.0, duration=None)
        )
        detector = FaultyDetector(_FixedDetector([self.detection()]), harness)
        assert detector.detect(make_frame(1.0)).detections == []

    def test_phantom_detection_adds_plausible_detections(self):
        harness = harness_for(
            FaultSpec(target="perception", mode="phantom-detection", severity=1.0,
                      start=0.0, duration=None)
        )
        detector = FaultyDetector(_FixedDetector([]), harness)
        frames = [detector.detect(make_frame(float(t))) for t in range(1, 30)]
        phantoms = [d for frame in frames for d in frame.detections]
        assert phantoms  # severity 1.0 -> ~65% of frames get one
        for phantom in phantoms:
            assert 0.6 <= phantom.confidence <= 0.95
            assert phantom.world_position.z == 0.0

    def test_wrapper_forwards_unknown_attributes(self):
        harness = harness_for(
            FaultSpec(target="perception", mode="missed-detection")
        )
        detector = FaultyDetector(_FixedDetector([]), harness)
        assert detector.marker_word == "inner-attr"

    def test_latency_spike_adjusts_timings_only(self):
        harness = harness_for(
            FaultSpec(target="perception", mode="latency-spike", severity=1.0,
                      start=0.0, duration=None)
        )
        timings = SimpleNamespace(detection=0.01, mapping=0.0, planning=0.0)
        harness.adjust_timings(timings, 1.0)
        assert timings.detection == pytest.approx(0.51)


class _FixedPlanner:
    def __init__(self):
        self.calls = 0

    def plan(self, problem):
        self.calls += 1
        return PlanningResult(
            status=PlannerStatus.SUCCESS, waypoints=[Vec3.zero(), Vec3(1, 0, 0)]
        )


class TestPlanningInjectors:
    def test_timeout_forces_failure_inside_window(self):
        harness = harness_for(
            FaultSpec(target="planning", mode="timeout", severity=1.0, start=0.0, duration=None)
        )
        inner = _FixedPlanner()
        planner = FaultyPlanner(inner, harness)
        result = planner.plan(SimpleNamespace(time_budget=0.25))
        assert result.status is PlannerStatus.TIMEOUT
        assert not result.succeeded
        assert inner.calls == 0  # the real planner never ran

    def test_infeasible_reports_no_path(self):
        harness = harness_for(
            FaultSpec(target="planning", mode="infeasible", severity=1.0, start=0.0, duration=None)
        )
        result = FaultyPlanner(_FixedPlanner(), harness).plan(SimpleNamespace(time_budget=0.1))
        assert result.status is PlannerStatus.NO_PATH_FOUND

    def test_pass_through_outside_window(self):
        harness = harness_for(
            FaultSpec(target="planning", mode="timeout", severity=1.0, start=100.0, duration=5.0)
        )
        inner = _FixedPlanner()
        result = FaultyPlanner(inner, harness).plan(SimpleNamespace(time_budget=0.1))
        assert result.succeeded and inner.calls == 1


class TestVehicleInjectors:
    def test_ekf_reset_offsets_then_reconverges(self):
        harness = FaultHarness(
            [FaultSpec(target="vehicle", mode="ekf-reset", severity=1.0,
                       start=10.0, duration=None)],
            scenario_fingerprint=FP,
        )
        clean = make_estimate()
        assert harness.filter_estimate(clean, 1.0).position == clean.position
        jump = harness.filter_estimate(clean, 10.0).position - clean.position
        later = harness.filter_estimate(clean, 60.0).position - clean.position
        assert jump.norm() > 1.0
        assert later.norm() < jump.norm()  # EKF re-convergence decay

    def test_command_delay_queues_commands(self):
        harness = harness_for(
            FaultSpec(target="vehicle", mode="command-delay", severity=0.5,
                      start=0.0, duration=None)
        )
        sent = [Command.setpoint_at(Vec3(float(i), 0.0, 5.0)) for i in range(5)]
        received = [harness.filter_command(cmd, float(i)) for i, cmd in enumerate(sent)]
        assert all(cmd.kind is CommandKind.NONE for cmd in received[:3])
        assert received[3] is sent[0]
        assert received[4] is sent[1]

    def test_disjoint_command_delay_windows_do_not_clobber_each_other(self):
        # Queues are per fault: an inactive delay spec must not destroy an
        # active one's pending commands (which turned a delay into a full
        # command blackout).
        harness = harness_for(
            FaultSpec(target="vehicle", mode="command-delay", severity=0.5,
                      start=0.0, duration=50.0, name="d1"),
            FaultSpec(target="vehicle", mode="command-delay", severity=0.5,
                      start=100.0, duration=50.0, name="d2"),
        )
        sent = [Command.setpoint_at(Vec3(float(i), 0.0, 5.0)) for i in range(6)]
        received = [harness.filter_command(cmd, float(i)) for i, cmd in enumerate(sent)]
        # Identical to the single-spec behavior: delayed by depth 3.
        assert all(cmd.kind is CommandKind.NONE for cmd in received[:3])
        assert received[3] is sent[0]
        assert received[4] is sent[1]
        assert received[5] is sent[2]


class TestMappingInjector:
    def test_cell_corruption_marks_phantom_cells(self):
        harness = harness_for(
            FaultSpec(target="mapping", mode="cell-corruption", severity=1.0,
                      start=0.0, duration=None)
        )
        grid = VoxelGrid()
        system = SimpleNamespace(mapping=MappingStack(local_grid=grid, primary=grid))
        estimate = make_estimate(altitude=8.0)
        before = grid.occupied_voxel_count()
        for tick in range(5):
            harness.corrupt_mapping(system, estimate, float(tick))
        assert grid.occupied_voxel_count() > before


# --------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------- #
def record_with(**kwargs) -> RunRecord:
    defaults = dict(
        scenario_id="s", system_name="MLS-V3", outcome=RunOutcome.SUCCESS
    )
    defaults.update(kwargs)
    return RunRecord(**defaults)


class TestClassifier:
    def test_crash(self):
        record = record_with(outcome=RunOutcome.COLLISION, collided=True)
        assert classify_record(record) is FailureMode.CRASH

    def test_unsafe_landing(self):
        record = record_with(outcome=RunOutcome.POOR_LANDING, landed=True)
        assert classify_record(record) is FailureMode.UNSAFE_LANDING

    def test_safe_failsafe(self):
        record = record_with(
            outcome=RunOutcome.POOR_LANDING, landed=False,
            failsafe_action="return_home", failure_reason="failsafe abort",
        )
        assert classify_record(record) is FailureMode.SAFE_FAILSAFE

    def test_nominal_success(self):
        assert classify_record(record_with()) is FailureMode.NOMINAL

    def test_degraded_success_with_activated_fault(self):
        record = record_with(
            injected_faults=[{"name": "camera-freeze", "activated": True}]
        )
        assert classify_record(record) is FailureMode.DEGRADED_SUCCESS

    def test_unactivated_fault_stays_nominal(self):
        record = record_with(
            injected_faults=[{"name": "camera-freeze", "activated": False}]
        )
        assert classify_record(record) is FailureMode.NOMINAL

    def test_degraded_success_from_aborts(self):
        assert classify_record(record_with(aborts=1)) is FailureMode.DEGRADED_SUCCESS

    def test_label_prefers_persisted_mode(self):
        record = record_with(failure_mode="crash")
        assert failure_mode_label(record) == "crash"
        record = record_with()  # legacy/no stamp: classified on the fly
        assert failure_mode_label(record) == "nominal"

    def test_failure_cause_factor(self):
        record = record_with(failsafe_reason="search timeout")
        assert RECORD_FACTORS["failure-cause"](record) == ("search timeout",)
        assert RECORD_FACTORS["failure-cause"](record_with()) == ("(none)",)


# --------------------------------------------------------------------- #
# coverage
# --------------------------------------------------------------------- #
class TestCoverage:
    def fault_meta(self, activated=True, name="camera-freeze", target="camera"):
        return {
            "name": name, "target": target, "mode": "freeze", "severity": 0.8,
            "armed": True, "activated": activated,
            "first_active": 25.0 if activated else None,
            "last_active": 30.0 if activated else None,
            "events": 3 if activated else 0,
        }

    def test_partition_and_coverage_math(self):
        records = [
            record_with(  # absorbed (degraded success)
                injected_faults=[self.fault_meta()], failure_mode="degraded-success"
            ),
            record_with(  # detected
                outcome=RunOutcome.POOR_LANDING, failsafe_action="return_home",
                injected_faults=[self.fault_meta()], failure_mode="safe-failsafe",
            ),
            record_with(  # escaped
                outcome=RunOutcome.COLLISION, collided=True,
                injected_faults=[self.fault_meta()], failure_mode="crash",
            ),
            record_with(  # armed but never activated: not in the denominator
                injected_faults=[self.fault_meta(activated=False)],
                failure_mode="nominal",
            ),
        ]
        report = accumulate_coverage(records)
        coverage = report.faults["camera-freeze"]
        assert coverage.runs == 4 and coverage.armed == 4 and coverage.activated == 3
        assert coverage.detected == 1 and coverage.absorbed == 1 and coverage.escaped == 1
        assert coverage.coverage == pytest.approx(2 / 3)
        assert report.overall_coverage == pytest.approx(2 / 3)
        assert report.fault_runs == 4 and report.total_runs == 4

    def test_rendered_report_is_deterministic(self):
        records = [
            record_with(
                injected_faults=[self.fault_meta()], failure_mode="degraded-success"
            )
        ]
        a = render_coverage_report(accumulate_coverage(records))
        b = render_coverage_report(accumulate_coverage(records))
        assert a == b
        assert "Coverage by fault" in a and "camera-freeze" in a

    def test_no_fault_records(self):
        report = accumulate_coverage([record_with()])
        assert report.fault_runs == 0
        assert report.overall_coverage != report.overall_coverage  # NaN


# --------------------------------------------------------------------- #
# persistence
# --------------------------------------------------------------------- #
class TestPersistence:
    def test_schema_version_bumped(self):
        assert RESULT_SCHEMA_VERSION == 2

    def test_round_trip_with_fault_fields(self, tmp_path):
        record = record_with(
            outcome=RunOutcome.POOR_LANDING,
            failsafe_action="return_home",
            failsafe_reason="marker lost during descent",
            failure_mode="safe-failsafe",
            injected_faults=[
                {"name": "camera-freeze", "target": "camera", "mode": "freeze",
                 "severity": 0.8, "armed": True, "activated": True,
                 "first_active": 25.0, "last_active": 30.0, "events": 12}
            ],
        )
        path = tmp_path / "r.jsonl"
        append_record_jsonl(path, "MLS-V3", record)
        header, records, torn = read_campaign_jsonl(path)
        assert header["schema"] == RESULT_SCHEMA_VERSION
        assert not torn and len(records) == 1
        assert records[0].to_dict() == record.to_dict()

    def test_schema1_files_read_with_defaults(self, tmp_path):
        legacy = record_with().to_dict()
        for key in ("failsafe_action", "failsafe_reason", "failure_mode", "injected_faults"):
            legacy.pop(key)
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            json.dumps({"kind": "campaign-result", "schema": 1, "system": "MLS-V3"}) + "\n"
            + json.dumps(legacy) + "\n",
            encoding="utf-8",
        )
        _, records, _ = read_campaign_jsonl(path)
        assert records[0].failsafe_action == ""
        assert records[0].injected_faults == []
        assert failure_mode_label(records[0]) == "nominal"


# --------------------------------------------------------------------- #
# campaign integration
# --------------------------------------------------------------------- #
class TestCampaignIntegration:
    def test_jobs_carry_faults(self):
        campaign = Campaign("mls-v1").suite("smoke").faults("smoke")
        jobs = campaign.jobs()
        assert all(job.faults == FAULT_PRESETS["smoke"] for job in jobs)

    def test_suite_spec_fault_axis_is_inherited_and_overridable(self):
        spec = SuiteSpec(name="faulty", count=2, faults=FAULT_PRESETS["vehicle"])
        campaign = Campaign("mls-v1").suite(spec)
        assert campaign._resolved_faults() == FAULT_PRESETS["vehicle"]
        campaign.faults("sensor")
        assert campaign._resolved_faults() == FAULT_PRESETS["sensor"]
        campaign.faults()  # explicit clear beats the suite axis
        assert campaign._resolved_faults() == ()

    def test_suite_spec_faults_round_trip_and_do_not_change_scenarios(self):
        plain = SuiteSpec(name="x", count=3, seed=5)
        faulty = SuiteSpec(name="x", count=3, seed=5, faults=FAULT_PRESETS["smoke"])
        assert SuiteSpec.from_dict(faulty.to_dict()) == faulty
        assert "faults" not in plain.to_dict()
        a = [s.fingerprint() for s in generate_suite(plain)]
        b = [s.fingerprint() for s in generate_suite(faulty)]
        assert a == b

    def test_context_fingerprint_guards_fault_axis(self):
        mission = MissionConfig()
        base = campaign_context_fingerprint(mission, "desktop")
        with_faults = campaign_context_fingerprint(
            mission, "desktop", FAULT_PRESETS["smoke"]
        )
        assert base != with_faults
        # Fault-free fingerprints are unchanged from the pre-fault layout.
        assert base == campaign_context_fingerprint(mission, "desktop", ())

    def test_analyze_keeps_suite_spec_faults(self, monkeypatch):
        # analyze() swaps the SuiteSpec for its generated suite around run();
        # the spec's fault axis must survive the swap.
        import repro.bench.campaign as campaign_module

        captured: list[tuple] = []

        def fake_execute(job):
            captured.append(job.faults)
            return RunRecord(
                scenario_id=job.scenario.scenario_id,
                system_name=job.system.name,
                outcome=RunOutcome.SUCCESS,
                repetition=job.repetition,
            )

        monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
        spec = SuiteSpec(name="faulty", count=2, faults=FAULT_PRESETS["vehicle"])
        campaign = Campaign("mls-v1").suite(spec)
        campaign.analyze()
        assert captured and all(f == FAULT_PRESETS["vehicle"] for f in captured)
        # The original spec setting (and its fault axis) is restored.
        assert campaign._resolved_faults() == FAULT_PRESETS["vehicle"]

    def test_jobs_remain_picklable_with_faults(self):
        import pickle

        jobs = Campaign("mls-v1").suite("smoke").faults("full").jobs()
        assert pickle.loads(pickle.dumps(jobs[0])).faults == jobs[0].faults


class TestDispatchPlanFaults:
    def test_plan_round_trips_faults(self, tmp_path):
        from repro.dispatch.planner import load_plan, plan_dispatch

        suite = generate_suite("smoke", seed=3)
        plan = plan_dispatch(
            tmp_path, suite, [mls_v1()], shards=2, faults=FAULT_PRESETS["smoke"]
        )
        loaded = load_plan(tmp_path)
        assert loaded.faults == list(FAULT_PRESETS["smoke"])
        assert loaded.fingerprint == plan.fingerprint
        assert loaded.context == plan.context
        payload = json.loads((tmp_path / "plan.json").read_text())
        assert payload["schema"] == 2

    def test_fault_free_plan_keeps_schema_1(self, tmp_path):
        from repro.dispatch.planner import plan_dispatch

        suite = generate_suite("smoke", seed=3)
        plan_dispatch(tmp_path, suite, [mls_v1()], shards=2)
        payload = json.loads((tmp_path / "plan.json").read_text())
        assert payload["schema"] == 1
        assert "faults" not in payload

    def test_different_fault_axis_refuses_replan(self, tmp_path):
        from repro.dispatch.planner import plan_dispatch

        suite = generate_suite("smoke", seed=3)
        plan_dispatch(tmp_path, suite, [mls_v1()], shards=2, faults=FAULT_PRESETS["smoke"])
        with pytest.raises(ValueError, match="different dispatch plan"):
            plan_dispatch(tmp_path, suite, [mls_v1()], shards=2)


# --------------------------------------------------------------------- #
# end-to-end missions (short, real)
# --------------------------------------------------------------------- #
def smoke_scenario():
    return generate_suite("smoke", seed=7).scenarios[0]


class TestMissionIntegration:
    def test_harness_metadata_and_classification_stamped(self):
        scenario = smoke_scenario()
        harness = FaultHarness(
            [FaultSpec(target="camera", mode="dropout", severity=1.0,
                       start=0.0, duration=None)],
            scenario_fingerprint=scenario.fingerprint(),
        )
        record = MissionRunner(
            scenario, mls_v1(),
            mission_config=MissionConfig(max_mission_time=20.0),
            fault_harness=harness,
        ).run()
        assert len(record.injected_faults) == 1
        meta = record.injected_faults[0]
        assert meta["activated"] and meta["events"] > 0
        # Total blackout: the system never saw a frame, so no detections were
        # scored and the record classifies into the taxonomy.
        assert record.detection.frames_with_visible_marker == 0
        assert record.failure_mode in {mode.value for mode in FailureMode}

    def test_failsafe_fields_persist_without_harness(self):
        scenario = smoke_scenario()
        record = MissionRunner(
            scenario, mls_v1(),
            # Too short to finish: forces a non-success ending with the
            # failure-mode stamp present even without a harness.
            mission_config=MissionConfig(max_mission_time=15.0),
        ).run()
        assert record.failure_mode != ""
        data = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert data.failure_mode == record.failure_mode

    def test_dropped_frames_do_not_compound_latency_spikes(self):
        # With every frame dropped, process_frame never refreshes the tick
        # timings; the latency-spike adjustment must not accumulate on the
        # stale value and run the modeled CPU load off to infinity.
        scenario = smoke_scenario()
        harness = FaultHarness(
            [
                FaultSpec(target="camera", mode="dropout", severity=1.0,
                          start=0.0, duration=None),
                FaultSpec(target="perception", mode="latency-spike", severity=1.0,
                          start=0.0, duration=None),
            ],
            scenario_fingerprint=scenario.fingerprint(),
        )
        record = MissionRunner(
            scenario, mls_v1(),
            mission_config=MissionConfig(max_mission_time=25.0),
            fault_harness=harness,
        ).run()
        samples = record.resources.cpu_utilisation_samples
        assert samples and max(samples) < 10.0

    def test_resume_upgrades_schema1_result_files(self, tmp_path, monkeypatch):
        import repro.bench.campaign as campaign_module

        def fake_execute(job):
            return RunRecord(
                scenario_id=job.scenario.scenario_id,
                system_name=job.system.name,
                outcome=RunOutcome.SUCCESS,
                repetition=job.repetition,
            )

        monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)

        def campaign():
            return Campaign("mls-v1").suite("smoke").seed(7).out(tmp_path)

        campaign().run()
        path = tmp_path / "MLS-V1.jsonl"
        # Downgrade the file to the schema-1 layout a v1.4 campaign wrote.
        header, *payload = path.read_text(encoding="utf-8").splitlines()
        header_obj = json.loads(header)
        header_obj["schema"] = 1
        records = []
        for line in payload:
            data = json.loads(line)
            for key in ("failsafe_action", "failsafe_reason", "failure_mode", "injected_faults"):
                data.pop(key, None)
            records.append(json.dumps(data, sort_keys=True))
        path.write_text(
            "\n".join([json.dumps(header_obj, sort_keys=True)] + records) + "\n",
            encoding="utf-8",
        )
        # Resuming (here: growing repetitions) must upgrade the header before
        # appending schema-2 records under it.
        campaign().repetitions(2).run()
        header, _, torn = read_campaign_jsonl(path)
        assert header["schema"] == RESULT_SCHEMA_VERSION
        assert not torn

    def test_faulted_mission_is_deterministic(self):
        scenario = smoke_scenario()

        def fly():
            harness = FaultHarness(
                FAULT_PRESETS["smoke"], scenario_fingerprint=scenario.fingerprint()
            )
            return MissionRunner(
                scenario, mls_v1(),
                mission_config=MissionConfig(max_mission_time=40.0),
                fault_harness=harness,
            ).run()

        assert fly().to_dict() == fly().to_dict()
