"""Tests for campaign result persistence (JSONL) and resumable campaigns."""

import json
import math

import pytest

import repro.bench.campaign as campaign_module
from repro.bench.campaign import Campaign
from repro.core.config import mls_v1
from repro.core.metrics import (
    CampaignResult,
    DetectionStats,
    ResourceStats,
    RunOutcome,
    RunRecord,
    append_record_jsonl,
)
from repro.core.mission import MissionConfig
from repro.world.scenario_gen import generate_suite


def make_record(scenario_id="s-0", repetition=0, outcome=RunOutcome.SUCCESS, system="MLS-V1"):
    return RunRecord(
        scenario_id=scenario_id,
        system_name=system,
        outcome=outcome,
        landing_error=0.4 if outcome is RunOutcome.SUCCESS else float("nan"),
        landed=outcome is RunOutcome.SUCCESS,
        mission_time=42.0,
        detection=DetectionStats(
            frames_with_visible_marker=10, frames_detected=9, deviation_samples=[0.2, 0.3]
        ),
        resources=ResourceStats(cpu_utilisation_samples=[0.5], memory_mb_samples=[512.0]),
        adverse_weather=True,
        failure_reason="" if outcome is RunOutcome.SUCCESS else "timeout",
        repetition=repetition,
    )


class TestRunRecordSerialization:
    def test_round_trip(self):
        record = make_record()
        restored = RunRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert restored == record

    def test_nan_landing_error_encodes_as_null(self):
        record = make_record(outcome=RunOutcome.POOR_LANDING)
        data = record.to_dict()
        assert data["landing_error"] is None
        assert json.dumps(data)  # strictly JSON-serializable
        restored = RunRecord.from_dict(data)
        assert math.isnan(restored.landing_error)

    def test_stats_round_trip(self):
        record = make_record()
        restored = RunRecord.from_dict(record.to_dict())
        assert restored.detection.false_negative_rate == record.detection.false_negative_rate
        assert restored.resources.mean_cpu == record.resources.mean_cpu


class TestCampaignResultJsonl:
    def test_round_trip(self, tmp_path):
        result = CampaignResult(system_name="MLS-V1")
        result.add(make_record("s-0", 0))
        result.add(make_record("s-0", 1, outcome=RunOutcome.COLLISION))
        result.add(make_record("s-1", 0, outcome=RunOutcome.POOR_LANDING))
        path = result.to_jsonl(tmp_path / "out" / "result.jsonl")
        restored = CampaignResult.from_jsonl(path)
        assert len(restored) == 3
        assert restored.system_name == "MLS-V1"
        assert restored.success_rate == result.success_rate
        # NaN-aware equality: to_dict maps NaN landing errors to None.
        assert [r.to_dict() for r in restored.records] == [r.to_dict() for r in result.records]

    def test_append_grows_file_with_single_header(self, tmp_path):
        path = tmp_path / "result.jsonl"
        append_record_jsonl(path, "MLS-V1", make_record("s-0", 0))
        append_record_jsonl(path, "MLS-V1", make_record("s-1", 0))
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["kind"] == "campaign-result"
        restored = CampaignResult.from_jsonl(path)
        assert len(restored) == 2

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "scenario-suite", "name": "x"}\n')
        with pytest.raises(ValueError):
            CampaignResult.from_jsonl(path)

    def test_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "campaign-result", "schema": 99, "system": "X"}\n')
        with pytest.raises(ValueError, match="schema 99"):
            CampaignResult.from_jsonl(path)

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            CampaignResult.from_jsonl(path)

    def test_torn_trailing_line_is_dropped_with_warning(self, tmp_path):
        # A campaign killed mid-append leaves a half-written final line; the
        # loader must still recover every complete record.
        path = tmp_path / "result.jsonl"
        append_record_jsonl(path, "MLS-V1", make_record("s-0", 0))
        append_record_jsonl(path, "MLS-V1", make_record("s-1", 0))
        with path.open("a") as handle:
            handle.write('{"scenario_id": "s-2", "outco')
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            restored = CampaignResult.from_jsonl(path)
        assert [r.scenario_id for r in restored.records] == ["s-0", "s-1"]

    def test_malformed_middle_line_still_raises(self, tmp_path):
        path = tmp_path / "result.jsonl"
        append_record_jsonl(path, "MLS-V1", make_record("s-0", 0))
        with path.open("a") as handle:
            handle.write("not json\n")
        append_record_jsonl(path, "MLS-V1", make_record("s-1", 0))
        with pytest.raises(ValueError, match="malformed run record"):
            CampaignResult.from_jsonl(path)


class TestCampaignResume:
    """Resume semantics via a stubbed executor (no real missions)."""

    @pytest.fixture
    def stub_execute(self, monkeypatch):
        calls = []

        def fake_execute(job):
            calls.append((job.scenario.scenario_id, job.repetition))
            record = make_record(
                job.scenario.scenario_id, job.repetition, system=job.system.name
            )
            return record

        monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
        return calls

    def _campaign(self, out_dir):
        return (
            Campaign(mls_v1())
            .suite(generate_suite("smoke", count=3, seed=1))
            .repetitions(2)
            .out(out_dir)
        )

    def test_results_persisted_per_run(self, tmp_path, stub_execute):
        results = self._campaign(tmp_path).run()
        assert len(results["MLS-V1"]) == 6
        assert len(stub_execute) == 6
        restored = CampaignResult.from_jsonl(tmp_path / "MLS-V1.jsonl")
        assert len(restored) == 6

    def test_rerun_restores_instead_of_executing(self, tmp_path, stub_execute):
        first = self._campaign(tmp_path).run()
        stub_execute.clear()
        second = self._campaign(tmp_path).run()
        assert stub_execute == []  # nothing re-executed
        assert second["MLS-V1"].records == first["MLS-V1"].records

    def test_partial_resume_runs_only_missing(self, tmp_path, stub_execute):
        # Persist results for a 2-scenario subset, then run the 3-scenario
        # campaign: only the missing scenario's runs execute.
        (
            Campaign(mls_v1())
            .suite(generate_suite("smoke", count=2, seed=1))
            .repetitions(2)
            .out(tmp_path)
            .run()
        )
        stub_execute.clear()
        results = self._campaign(tmp_path).run()
        assert len(results["MLS-V1"]) == 6
        assert len(stub_execute) == 2  # one new scenario x two repetitions
        restored = CampaignResult.from_jsonl(tmp_path / "MLS-V1.jsonl")
        assert len(restored) == 6

    def test_refuses_foreign_result_file(self, tmp_path, stub_execute):
        foreign = CampaignResult(system_name="OTHER")
        foreign.add(make_record("x", 0, system="OTHER"))
        foreign.to_jsonl(tmp_path / "MLS-V1.jsonl")
        with pytest.raises(ValueError, match="refusing to resume"):
            self._campaign(tmp_path).run()

    def test_refuses_colliding_ids_with_different_contents(self, tmp_path, stub_execute):
        # The paper suite's scenario ids ("map00-s00") do not encode the base
        # seed, so two different seeds collide on id with different contents:
        # resuming across them must be refused, not silently served.
        from repro.world.scenario_suite import build_evaluation_suite

        def paper_campaign(base_seed):
            return (
                Campaign(mls_v1())
                .suite(build_evaluation_suite(base_seed=base_seed).subset(2))
                .repetitions(1)
                .out(tmp_path)
            )

        paper_campaign(7).run()
        with pytest.raises(ValueError, match="different scenario contents"):
            paper_campaign(999).run()

    def test_mission_config_change_invalidates_resume(self, tmp_path, stub_execute):
        self._campaign(tmp_path).run()
        changed = self._campaign(tmp_path).mission(MissionConfig(max_mission_time=1.0))
        with pytest.raises(ValueError, match="different campaign configuration"):
            changed.run()

    def test_growing_repetitions_resumes(self, tmp_path, stub_execute):
        # Repetitions are excluded from the fingerprint: raising the count
        # must execute only the new repetitions.
        self._campaign(tmp_path).run()
        stub_execute.clear()
        more = (
            Campaign(mls_v1())
            .suite(generate_suite("smoke", count=3, seed=1))
            .repetitions(3)
            .out(tmp_path)
        )
        results = more.run()
        assert len(results["MLS-V1"]) == 9
        assert len(stub_execute) == 3  # only the third repetition ran

    def test_torn_file_heals_on_resume(self, tmp_path, stub_execute):
        self._campaign(tmp_path).run()
        path = tmp_path / "MLS-V1.jsonl"
        with path.open("a") as handle:
            handle.write('{"half": "written')
        stub_execute.clear()
        with pytest.warns(RuntimeWarning, match="torn trailing record"):
            self._campaign(tmp_path).run()
        assert stub_execute == []  # all six complete records restored
        # The torn line is gone: loading again is clean.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            restored = CampaignResult.from_jsonl(path)
        assert len(restored) == 6

    def test_no_out_means_no_files(self, tmp_path, stub_execute):
        campaign = (
            Campaign(mls_v1()).suite(generate_suite("smoke", count=2, seed=1)).repetitions(1)
        )
        campaign.run()
        assert list(tmp_path.iterdir()) == []


class TestCampaignSuiteSpecs:
    def test_suite_accepts_preset_name(self):
        campaign = Campaign(mls_v1()).suite("smoke")
        jobs = campaign.jobs()
        assert len(jobs) == 2  # 2 scenarios x 1 repetition

    def test_unknown_preset_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown suite preset"):
            Campaign(mls_v1()).suite("no-such-preset")

    def test_seed_applies_to_preset_suites(self):
        # .seed() must re-seed a preset/spec suite regardless of call order.
        default = Campaign(mls_v1()).suite("smoke").jobs()
        seeded = Campaign(mls_v1()).suite("smoke").seed(7).jobs()
        seeded_first = Campaign(mls_v1()).seed(7).suite("smoke").jobs()
        assert [j.scenario.to_dict() for j in seeded] != [
            j.scenario.to_dict() for j in default
        ]
        assert [j.scenario.to_dict() for j in seeded] == [
            j.scenario.to_dict() for j in seeded_first
        ]

    def test_suite_accepts_spec(self):
        from repro.world.scenario_gen import SUITE_PRESETS

        spec = SUITE_PRESETS["smoke"].with_overrides(count=3, repetitions=2)
        jobs = Campaign(mls_v1()).suite(spec).jobs()
        assert len(jobs) == 6

    def test_suite_rejects_other_types(self):
        with pytest.raises(TypeError):
            Campaign(mls_v1()).suite(123)


@pytest.mark.slow
class TestEndToEndPersistence:
    def test_real_campaign_round_trips_through_jsonl(self, tmp_path):
        suite = generate_suite("smoke", count=2, seed=5)
        results = (
            Campaign(mls_v1())
            .suite(suite)
            .repetitions(1)
            .mission(MissionConfig(max_mission_time=30.0))
            .out(tmp_path)
            .run()
        )
        restored = CampaignResult.from_jsonl(tmp_path / "MLS-V1.jsonl")
        as_dicts = lambda result: [r.to_dict() for r in result.records]
        assert as_dicts(restored) == as_dicts(results["MLS-V1"])
        # A second run restores everything without re-flying missions.
        again = (
            Campaign(mls_v1())
            .suite(suite)
            .repetitions(1)
            .mission(MissionConfig(max_mission_time=30.0))
            .out(tmp_path)
            .run()
        )
        assert as_dicts(again["MLS-V1"]) == as_dicts(results["MLS-V1"])
