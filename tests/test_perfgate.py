"""Tests for the perf-smoke regression gate (``repro.bench.perfgate``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench.perfgate import (
    check_meters,
    load_baseline,
    load_results_meters,
    main,
    render_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_results(path: Path, runs_per_s: float = 1.0) -> None:
    payload = {
        "schema": 2,
        "suites": {
            "campaign_throughput": [
                {
                    "name": "campaign_serial",
                    "runs": 2.0,
                    "seconds": 2.0 / runs_per_s,
                    "runs_per_s": runs_per_s,
                }
            ]
        },
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


def write_baseline(path: Path, floor: float = 0.5, tolerance: float = 0.2) -> None:
    payload = {
        "schema": 1,
        "tolerance": tolerance,
        "meters": {"campaign_throughput/campaign_serial/runs_per_s": floor},
    }
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestLoaders:
    def test_results_flatten_to_slash_keys(self, tmp_path):
        write_results(tmp_path / "r.json", runs_per_s=0.8)
        meters = load_results_meters(tmp_path / "r.json")
        assert meters["campaign_throughput/campaign_serial/runs_per_s"] == 0.8
        assert meters["campaign_throughput/campaign_serial/runs"] == 2.0

    def test_baseline_rejects_unknown_schema(self, tmp_path):
        (tmp_path / "b.json").write_text('{"schema": 99, "meters": {"a": 1}}')
        with pytest.raises(ValueError, match="schema"):
            load_baseline(tmp_path / "b.json")

    def test_baseline_rejects_empty_meters(self, tmp_path):
        (tmp_path / "b.json").write_text('{"schema": 1, "meters": {}}')
        with pytest.raises(ValueError, match="no meters"):
            load_baseline(tmp_path / "b.json")


class TestCheck:
    def test_within_tolerance_passes(self):
        checks = check_meters({"m/a/x": 0.45}, {"m/a/x": 0.5}, tolerance=0.2)
        assert all(check.passed for check in checks)

    def test_regression_beyond_tolerance_fails(self):
        checks = check_meters({"m/a/x": 0.39}, {"m/a/x": 0.5}, tolerance=0.2)
        assert not checks[0].passed

    def test_missing_meter_fails(self):
        checks = check_meters({}, {"m/a/x": 0.5}, tolerance=0.2)
        assert not checks[0].passed
        assert "missing" in checks[0].describe()

    def test_report_mentions_failures(self):
        checks = check_meters({"m/a/x": 0.1}, {"m/a/x": 0.5}, tolerance=0.2)
        report = render_report(checks, 0.2)
        assert "regressed beyond tolerance" in report


class TestCli:
    def test_check_exit_codes_and_report(self, tmp_path):
        write_results(tmp_path / "r.json", runs_per_s=0.6)
        write_baseline(tmp_path / "b.json", floor=0.5)
        args = [
            "check",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
            "--report", str(tmp_path / "report.md"),
        ]
        assert main(args) == 0
        assert "All meters within tolerance" in (tmp_path / "report.md").read_text()

        write_results(tmp_path / "r.json", runs_per_s=0.1)
        assert main(args) == 1

    def test_baseline_refreshes_floors_with_headroom(self, tmp_path):
        write_results(tmp_path / "r.json", runs_per_s=1.0)
        write_baseline(tmp_path / "b.json", floor=0.123)
        assert main([
            "baseline",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
            "--headroom", "0.5",
        ]) == 0
        floors, tolerance = load_baseline(tmp_path / "b.json")
        assert floors == {"campaign_throughput/campaign_serial/runs_per_s": 0.5}
        assert tolerance == 0.2

    def test_baseline_refuses_missing_meter(self, tmp_path, capsys):
        (tmp_path / "r.json").write_text('{"schema": 2, "suites": {}}')
        write_baseline(tmp_path / "b.json")
        assert main([
            "baseline",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
        ]) == 1
        assert "missing" in capsys.readouterr().err


class TestCommittedBaseline:
    def test_committed_perf_smoke_baseline_is_loadable(self):
        path = REPO_ROOT / "baselines" / "perf-smoke" / "throughput.json"
        floors, tolerance = load_baseline(path)
        assert "campaign_throughput/campaign_serial/runs_per_s" in floors
        assert 0.0 <= tolerance < 1.0


# --------------------------------------------------------------------- #
# benchmarks/conftest.py merge-on-write pruning
# --------------------------------------------------------------------- #
def _load_bench_conftest():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestStaleSuitePruning:
    def test_deleted_module_suite_is_dropped(self):
        conftest = _load_bench_conftest()
        suites = {
            "campaign_throughput": {"campaign_serial": {"runs_per_s": 1.0}},
            "no_such_module": {"test_gone": {"mean_s": 1.0}},
        }
        pruned = conftest._prune_stale_suites(suites)
        assert "campaign_throughput" in pruned
        assert "no_such_module" not in pruned

    def test_renamed_bench_function_is_dropped(self):
        conftest = _load_bench_conftest()
        suites = {
            "campaign_throughput": {
                "test_campaign_throughput_serial_parallel_dispatched": {"m": 1.0},
                "test_this_function_was_renamed": {"mean_s": 1.0},
                "campaign_serial": {"runs_per_s": 1.0},
            }
        }
        pruned = conftest._prune_stale_suites(suites)
        kept = set(pruned["campaign_throughput"])
        assert "test_campaign_throughput_serial_parallel_dispatched" in kept
        assert "test_this_function_was_renamed" not in kept
        # Custom-named meters live and die with their module, not a function.
        assert "campaign_serial" in kept

    def test_parametrized_node_names_match_their_function(self):
        conftest = _load_bench_conftest()
        suites = {
            "campaign_throughput": {
                "test_batched_projection_rate[smoke]": {"mean_s": 1.0}
            }
        }
        pruned = conftest._prune_stale_suites(suites)
        assert pruned == suites


class TestTraceAttribution:
    def _trace(self, directory, detect_seconds, runs=5):
        from repro.obs.trace import FlightRecorder, append_trace_summary

        for repetition in range(runs):
            recorder = FlightRecorder()
            recorder.span_counts["detect"] = 1
            recorder.span_seconds["detect"] = detect_seconds + 0.0004 * repetition
            recorder.charge_nominal(0.01, 0.0, 0.0)
            append_trace_summary(
                directory, recorder, system="MLS-V1", scenario_id="sc",
                repetition=repetition,
            )

    def test_failed_gate_appends_phase_attribution(self, tmp_path, capsys):
        write_results(tmp_path / "r.json", runs_per_s=0.1)  # tripped floor
        write_baseline(tmp_path / "b.json", floor=0.5)
        self._trace(tmp_path / "trace-base", 0.010)
        self._trace(tmp_path / "trace-curr", 0.100)
        assert main([
            "check",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
            "--report", str(tmp_path / "report.md"),
            "--trace-baseline", str(tmp_path / "trace-base"),
            "--trace-current", str(tmp_path / "trace-curr"),
        ]) == 1
        report = (tmp_path / "report.md").read_text()
        assert "Phase attribution" in report
        assert "MLS-V1/detect" in report
        assert "REGRESSED" in report

    def test_passing_gate_skips_attribution(self, tmp_path, capsys):
        write_results(tmp_path / "r.json", runs_per_s=0.6)
        write_baseline(tmp_path / "b.json", floor=0.5)
        self._trace(tmp_path / "trace-base", 0.010)
        self._trace(tmp_path / "trace-curr", 0.100)
        assert main([
            "check",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
            "--trace-baseline", str(tmp_path / "trace-base"),
            "--trace-current", str(tmp_path / "trace-curr"),
        ]) == 0
        assert "Phase attribution" not in capsys.readouterr().out

    def test_unusable_trace_dirs_degrade_to_a_note(self, tmp_path, capsys):
        write_results(tmp_path / "r.json", runs_per_s=0.1)
        write_baseline(tmp_path / "b.json", floor=0.5)
        assert main([
            "check",
            "--results", str(tmp_path / "r.json"),
            "--baseline", str(tmp_path / "b.json"),
            "--trace-baseline", str(tmp_path / "nope"),
            "--trace-current", str(tmp_path / "nope"),
        ]) == 1
        assert "phase attribution unavailable" in capsys.readouterr().out
