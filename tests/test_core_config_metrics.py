"""Tests for system configuration presets, commands and metrics aggregation."""

import pytest

from repro.core.commands import Command, CommandKind
from repro.core.config import (
    DetectorKind,
    MapperKind,
    PlannerKind,
    SystemGeneration,
    config_for,
    mls_v1,
    mls_v2,
    mls_v3,
)
from repro.core.metrics import CampaignResult, DetectionStats, ResourceStats, RunOutcome, RunRecord
from repro.geometry import Vec3


class TestConfigPresets:
    def test_v1_composition(self):
        config = mls_v1()
        assert config.detector is DetectorKind.CLASSICAL
        assert config.mapper is MapperKind.NONE
        assert config.planner is PlannerKind.STRAIGHT_LINE
        assert not config.has_avoidance
        assert config.name == "MLS-V1"

    def test_v2_composition(self):
        config = mls_v2()
        assert config.detector is DetectorKind.LEARNED
        assert config.mapper is MapperKind.DENSE_GRID
        assert config.planner is PlannerKind.EGO_LOCAL_ASTAR
        assert config.has_avoidance

    def test_v3_composition(self):
        config = mls_v3()
        assert config.detector is DetectorKind.LEARNED
        assert config.mapper is MapperKind.OCTOMAP
        assert config.planner is PlannerKind.RRT_STAR

    def test_config_for_maps_generations(self):
        assert config_for(SystemGeneration.MLS_V1).name == "MLS-V1"
        assert config_for(SystemGeneration.MLS_V2).name == "MLS-V2"
        assert config_for(SystemGeneration.MLS_V3).name == "MLS-V3"

    def test_with_validation_override(self):
        config = mls_v3().with_validation(required_hits=10)
        assert config.validation.required_hits == 10
        assert mls_v3().validation.required_hits != 10 or True  # original untouched

    def test_with_safety_override(self):
        config = mls_v3().with_safety(obstacle_clearance=1.5)
        assert config.safety.obstacle_clearance == 1.5


class TestCommands:
    def test_factories(self):
        assert Command.none().kind is CommandKind.NONE
        assert Command.land().kind is CommandKind.LAND
        assert Command.return_home().kind is CommandKind.RETURN
        setpoint = Command.setpoint_at(Vec3(1, 2, 3), yaw=0.5, speed_limit=2.0)
        assert setpoint.kind is CommandKind.SETPOINT
        assert setpoint.setpoint == Vec3(1, 2, 3)
        assert setpoint.speed_limit == 2.0


def record(outcome, system="MLS-V3", adverse=False, landed=None, error=float("nan")):
    return RunRecord(
        scenario_id="s",
        system_name=system,
        outcome=outcome,
        landing_error=error,
        landed=landed if landed is not None else outcome is RunOutcome.SUCCESS,
        adverse_weather=adverse,
    )


class TestMetrics:
    def test_detection_stats_false_negative_rate(self):
        stats = DetectionStats(frames_with_visible_marker=10, frames_detected=8)
        assert stats.false_negative_rate == pytest.approx(0.2)
        empty = DetectionStats()
        assert empty.false_negative_rate == 0.0

    def test_detection_stats_merge(self):
        a = DetectionStats(frames_with_visible_marker=5, frames_detected=4, deviation_samples=[0.2])
        b = DetectionStats(frames_with_visible_marker=5, frames_detected=5, deviation_samples=[0.4])
        a.merge(b)
        assert a.frames_with_visible_marker == 10
        assert a.mean_detection_deviation == pytest.approx(0.3)

    def test_resource_stats_summary(self):
        stats = ResourceStats(cpu_utilisation_samples=[0.5, 0.7], memory_mb_samples=[1000, 2000])
        assert stats.mean_cpu == pytest.approx(0.6)
        assert stats.peak_memory_mb == 2000

    def test_campaign_rates_sum_to_one(self):
        campaign = CampaignResult(system_name="MLS-V3")
        campaign.add(record(RunOutcome.SUCCESS))
        campaign.add(record(RunOutcome.COLLISION))
        campaign.add(record(RunOutcome.POOR_LANDING))
        campaign.add(record(RunOutcome.SUCCESS))
        total = (
            campaign.success_rate
            + campaign.collision_failure_rate
            + campaign.poor_landing_failure_rate
        )
        assert total == pytest.approx(1.0)
        assert campaign.success_rate == pytest.approx(0.5)

    def test_campaign_rejects_foreign_records(self):
        campaign = CampaignResult(system_name="MLS-V3")
        with pytest.raises(ValueError):
            campaign.add(record(RunOutcome.SUCCESS, system="MLS-V1"))

    def test_campaign_landing_error_ignores_unlanded(self):
        campaign = CampaignResult(system_name="MLS-V3")
        campaign.add(record(RunOutcome.SUCCESS, error=0.2))
        campaign.add(record(RunOutcome.POOR_LANDING, landed=False))
        assert campaign.mean_landing_error == pytest.approx(0.2)

    def test_campaign_adverse_subset(self):
        campaign = CampaignResult(system_name="MLS-V3")
        campaign.add(record(RunOutcome.SUCCESS, adverse=False))
        campaign.add(record(RunOutcome.COLLISION, adverse=True))
        adverse = campaign.subset(adverse=True)
        assert len(adverse) == 1
        assert adverse.collision_failure_rate == pytest.approx(1.0)

    def test_summary_row_format(self):
        campaign = CampaignResult(system_name="MLS-V3")
        campaign.add(record(RunOutcome.SUCCESS))
        row = campaign.summary_row()
        assert row["Landing System"] == "MLS-V3"
        assert row["Successful Landing Rate"] == 100.0
