"""Tests for map generation, scenarios and the evaluation suite."""

import pytest

from repro.geometry import Vec3
from repro.world.map_generator import MapSpec, MapStyle, generate_map, prune_obstacles_near
from repro.world.scenario import DECOY_MARKER_IDS, TARGET_MARKER_ID, Scenario
from repro.world.scenario_suite import build_evaluation_suite


class TestMapGenerator:
    def test_deterministic_given_seed(self):
        a = generate_map(MapStyle.URBAN, seed=3)
        b = generate_map(MapStyle.URBAN, seed=3)
        assert len(a.obstacles) == len(b.obstacles)
        assert all(
            x.bounds.minimum == y.bounds.minimum for x, y in zip(a.obstacles, b.obstacles)
        )

    def test_different_seeds_differ(self):
        a = generate_map(MapStyle.URBAN, seed=3)
        b = generate_map(MapStyle.URBAN, seed=4)
        assert any(
            x.bounds.minimum != y.bounds.minimum for x, y in zip(a.obstacles, b.obstacles)
        )

    def test_urban_has_more_buildings_than_rural(self):
        from repro.world.obstacles import ObstacleKind

        urban = generate_map(MapStyle.URBAN, seed=1)
        rural = generate_map(MapStyle.RURAL, seed=1)
        count = lambda world: sum(1 for o in world.obstacles if o.kind is ObstacleKind.BUILDING)
        assert count(urban) > count(rural)

    def test_spawn_area_kept_clear(self):
        world = generate_map(MapStyle.URBAN, seed=5)
        assert not world.point_in_collision(Vec3(0, 0, 5))

    def test_keep_clear_respected(self):
        target = Vec3(30, 30, 0)
        world = generate_map(MapStyle.URBAN, seed=5, keep_clear=[target])
        assert world.clearance(target.with_z(2.0)) > 1.0

    def test_prune_obstacles_near(self):
        world = generate_map(MapStyle.URBAN, seed=7)
        point = world.obstacles[0].bounds.center.with_z(0.0)
        prune_obstacles_near(world, point, radius=5.0)
        for obstacle in world.obstacles:
            closest = obstacle.bounds.closest_point(point.with_z(0.5))
            assert closest.horizontal_distance_to(point) >= 5.0

    def test_style_spec_defaults(self):
        assert MapSpec.for_style(MapStyle.URBAN).building_count > MapSpec.for_style(MapStyle.SUBURBAN).building_count


class TestScenario:
    def test_generate_is_deterministic(self):
        a = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=9)
        b = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=9)
        assert a.marker_position == b.marker_position
        assert a.gps_target == b.gps_target

    def test_gps_target_is_offset_from_marker(self):
        scenario = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=3)
        offset = scenario.gps_target.horizontal_distance_to(scenario.marker_position)
        assert 0.5 <= offset <= 6.0

    def test_adverse_flag_controls_weather(self):
        adverse = Scenario.generate("a", MapStyle.RURAL, 1, adverse_weather=True, seed=3)
        normal = Scenario.generate("n", MapStyle.RURAL, 1, adverse_weather=False, seed=3)
        assert adverse.is_adverse_weather
        assert not normal.is_adverse_weather

    def test_build_world_places_target_and_decoys(self):
        scenario = Scenario.generate("s", MapStyle.SUBURBAN, 2, adverse_weather=False, seed=11)
        world = scenario.build_world()
        target = world.target_marker
        assert target is not None
        assert target.marker_id == TARGET_MARKER_ID
        assert target.position == scenario.marker_position
        decoys = [m for m in world.markers if not m.is_target]
        assert all(m.marker_id in DECOY_MARKER_IDS for m in decoys)

    def test_marker_area_is_clear_and_landable(self):
        scenario = Scenario.generate("s", MapStyle.URBAN, 3, adverse_weather=False, seed=13)
        world = scenario.build_world()
        assert world.is_valid_landing_point(scenario.marker_position)


class TestScenarioSuite:
    def test_paper_scale_suite_shape(self):
        suite = build_evaluation_suite()
        assert len(suite) == 100
        assert suite.repetitions == 3
        assert suite.total_runs == 300
        assert suite.adverse_count == 50

    def test_scenario_ids_unique(self):
        suite = build_evaluation_suite()
        ids = [s.scenario_id for s in suite]
        assert len(set(ids)) == len(ids)

    def test_subset_preserves_mix(self):
        suite = build_evaluation_suite()
        subset = suite.subset(20)
        assert len(subset) == 20
        assert 0 < subset.adverse_count < 20

    def test_subset_rejects_zero(self):
        with pytest.raises(ValueError):
            build_evaluation_suite().subset(0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            build_evaluation_suite(map_count=0)
