"""Tests for the tick-skip fast path (``MissionConfig.fast_path``).

The fast path elides camera renders, detector calls and depth ray casts on
ticks that provably cannot change the plan.  Its whole contract is *byte
identity*: a mission run with the fast path on must produce a RunRecord
indistinguishable from the slow path, RNG streams included, and it must
disable itself entirely under fault injection.
"""

from __future__ import annotations

import json

from repro.core.config import mls_v1
from repro.core.mission import MissionConfig, MissionRunner
from repro.faults.harness import FaultHarness
from repro.faults.spec import FaultSpec
from repro.geometry import AABB, Pose, Vec3
from repro.sensors.camera import DownwardCamera
from repro.sensors.depth import DepthCamera
from repro.world.markers import Marker
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World
from repro.world.scenario_gen import generate_suite


def _record_json(record):
    return json.dumps(record.to_dict(), sort_keys=True)


def _run(scenario, **config_kwargs):
    return MissionRunner(
        scenario, mls_v1(), mission_config=MissionConfig(**config_kwargs)
    ).run()


def _blank_world() -> World:
    """A world whose camera frames are provably pure ground texture."""
    return World(
        name="blank",
        bounds=AABB(Vec3(-600.0, -600.0, 0.0), Vec3(600.0, 600.0, 120.0)),
        markers=[Marker(marker_id=3, position=Vec3(500.0, 500.0, 0.0))],
        weather=Weather(condition=WeatherCondition.CLEAR, image_noise=0.0),
    )


# --------------------------------------------------------------------- #
# end-to-end byte identity
# --------------------------------------------------------------------- #
class TestRunRecordByteIdentity:
    def test_fast_path_records_match_slow_path(self):
        # The whole smoke preset: one clear and one adverse scenario, so both
        # the skip-heavy cruise segments and the never-skip weather are hit.
        suite = generate_suite("smoke", count=2, seed=7)
        for scenario in suite.scenarios:
            fast = _run(scenario, fast_path=True)
            slow = _run(scenario, fast_path=False)
            assert _record_json(fast) == _record_json(slow), (
                f"fast path diverged on {scenario.scenario_id}"
            )

    def test_fast_path_disabled_under_fault_harness(self):
        # A dropped-frame fault must behave identically whether or not the
        # config asks for the fast path — the harness always forces it off.
        scenario = generate_suite("smoke", seed=7).scenarios[0]
        records = {}
        for fast_path in (True, False):
            harness = FaultHarness(
                [
                    FaultSpec(
                        target="camera", mode="dropout", severity=1.0,
                        start=0.0, duration=None,
                    )
                ],
                scenario_fingerprint=scenario.fingerprint(),
            )
            runner = MissionRunner(
                scenario, mls_v1(),
                mission_config=MissionConfig(
                    max_mission_time=20.0, fast_path=fast_path
                ),
                fault_harness=harness,
            )
            records[fast_path] = runner.run()
            # Every frame was dropped, so the final decision tick must have
            # charged zero detection cost — the fast path never substituted
            # its nominal-latency skip for the dropped frame.
            assert runner.system.last_timings.detection == 0.0
        assert _record_json(records[True]) == _record_json(records[False])


# --------------------------------------------------------------------- #
# skip-predicate guards
# --------------------------------------------------------------------- #
class TestFrameBlankPredicate:
    def _runner(self, scenario=None):
        scenario = scenario or generate_suite("smoke", seed=7).scenarios[0]
        return MissionRunner(scenario, mls_v1())

    def test_low_altitude_never_skips(self):
        runner = self._runner()
        runner.world = _blank_world()
        pose = Pose.at(Vec3(0.0, 0.0, 0.4))
        assert not runner._frame_provably_blank(
            pose, runner.camera.max_view_angle()
        )

    def test_image_structure_never_skips(self):
        runner = self._runner()
        runner.world = World(
            name="noisy",
            bounds=AABB(Vec3(-100.0, -100.0, 0.0), Vec3(100.0, 100.0, 120.0)),
            weather=Weather(condition=WeatherCondition.CLEAR),
        )
        # Default clear weather carries image_noise=0.01: RNG is consumed per
        # pixel, so the frame is never provably blank.
        pose = Pose.at(Vec3(0.0, 0.0, 20.0))
        assert not runner._frame_provably_blank(
            pose, runner.camera.max_view_angle()
        )

    def test_marker_in_reach_never_skips(self):
        runner = self._runner()
        world = _blank_world()
        runner.world = world
        above = Pose.at(Vec3(500.0, 500.0, 20.0))
        far = Pose.at(Vec3(0.0, 0.0, 20.0))
        angle = runner.camera.max_view_angle()
        assert not runner._frame_provably_blank(above, angle)
        assert runner._frame_provably_blank(far, angle)


# --------------------------------------------------------------------- #
# RNG-stream equivalence of the skip primitives
# --------------------------------------------------------------------- #
class TestSkipPrimitives:
    def test_consume_skipped_frame_rng_matches_blank_capture(self):
        world = _blank_world()
        pose = Pose.at(Vec3(0.0, 0.0, 20.0))
        rendered = DownwardCamera(seed=5)
        skipped = DownwardCamera(seed=5)

        frame = rendered.capture(world, pose, timestamp=1.0)
        skipped.consume_skipped_frame_rng(world)

        assert rendered._frame_count == skipped._frame_count
        assert (
            rendered._rng.bit_generator.state == skipped._rng.bit_generator.state
        )

    def test_capture_provably_empty_implies_empty_capture(self):
        world = _blank_world()
        pose = Pose.at(Vec3(0.0, 0.0, 40.0))
        camera = DepthCamera(facing="forward", seed=9)
        assert camera.capture_provably_empty(world, pose)

        state_before = camera._rng.bit_generator.state
        cloud = camera.capture(world, pose, timestamp=1.0)
        assert cloud.points == []
        assert camera._rng.bit_generator.state == state_before

    def test_capture_not_provably_empty_when_ground_in_range(self):
        world = _blank_world()
        # 5 m up: the downward grid reaches the ground well within range.
        pose = Pose.at(Vec3(0.0, 0.0, 5.0))
        camera = DepthCamera(facing="down", seed=9)
        assert not camera.capture_provably_empty(world, pose)
        assert camera.capture(world, pose, timestamp=1.0).points
