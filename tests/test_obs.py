"""Tests for the observability subsystem (repro.obs).

The load-bearing contract — campaign records are byte-identical with
tracing on or off — is asserted here over a real (short) campaign; the CI
``obs-smoke`` job re-checks it with ``cmp`` over the standard smoke suite.
"""

import json
import threading

import pytest

from repro.bench.campaign import Campaign
from repro.obs.metrics import (
    METRICS,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_value,
)
from repro.obs.report import (
    collect_summaries,
    main as obs_main,
    render_phase_report,
)
from repro.obs.trace import (
    PHASES,
    FlightRecorder,
    append_trace_summary,
    iter_trace_summaries,
    trace_filename,
)


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Completed runs.")
        runs.inc(system="MLS-V1", outcome="success")
        runs.inc(2, system="MLS-V1", outcome="success")
        runs.inc(system="MLS-V2", outcome="crash")
        assert runs.value(system="MLS-V1", outcome="success") == 3
        assert runs.value(system="MLS-V2", outcome="crash") == 1
        assert runs.value(system="MLS-V3", outcome="success") == 0.0

    def test_counter_refuses_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c", "").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth", "")
        depth.set(5)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 4

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "", buckets=(0.1, 1.0))
        latency.observe(0.05, route="/jobs")
        latency.observe(0.5, route="/jobs")
        latency.observe(30.0, route="/jobs")
        assert latency.count(route="/jobs") == 3
        assert latency.sum(route="/jobs") == pytest.approx(30.55)
        text = "\n".join(latency.render())
        assert 'latency_seconds_bucket{route="/jobs",le="0.1"} 1' in text
        assert 'latency_seconds_bucket{route="/jobs",le="1"} 2' in text
        assert 'latency_seconds_bucket{route="/jobs",le="+Inf"} 3' in text
        assert 'latency_seconds_count{route="/jobs"} 3' in text

    def test_reregistration_returns_existing_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "Cache hits.")
        second = registry.counter("hits", "different help, same metric")
        assert first is second

    def test_reregistration_under_other_type_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing", "")

    def test_prometheus_rendering_is_order_independent(self):
        def build(order):
            registry = MetricsRegistry()
            for system in order:
                registry.counter("runs_total", "Runs.").inc(system=system)
            registry.gauge("alive", "Liveness.").set(1)
            return registry.render_prometheus()

        assert build(["b", "a", "c"]) == build(["c", "a", "b"])

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Completed runs.").inc(system='we"ird\n')
        text = registry.render_prometheus()
        assert "# HELP runs_total Completed runs." in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{system="we\\"ird\\n"} 1' in text
        assert text.endswith("\n")

    def test_snapshot_reports_histograms_as_counts(self):
        registry = MetricsRegistry()
        registry.histogram("h", "").observe(0.2, k="v")
        registry.counter("c", "").inc()
        assert registry.snapshot() == {"c": {"{}": 1.0}, "h": {'{k="v"}': 1.0}}

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_concurrent_writers_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("n", "")

        def spin():
            for _ in range(1000):
                counter.inc(worker="w")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == 4000


# ---------------------------------------------------------------------- #
# flight recorder + trace files
# ---------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_spans_counters_and_nominal_roll_up(self):
        recorder = FlightRecorder()
        start = recorder.start()
        recorder.add("detect", start)
        recorder.add("detect", recorder.start())
        recorder.count("frames-skipped")
        recorder.count("frames-rendered", 3)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        summary = recorder.summary(system="S", scenario_id="sc-1", repetition=2)
        assert summary["system"] == "S"
        assert summary["scenario_id"] == "sc-1"
        assert summary["repetition"] == 2
        assert summary["spans"]["detect"]["count"] == 2
        assert summary["spans"]["detect"]["wall_s"] > 0.0
        assert summary["counters"] == {"frames-rendered": 3, "frames-skipped": 1}
        assert summary["nominal_s"]["detect"] == pytest.approx(0.024)
        assert summary["nominal_s"]["map"] == pytest.approx(0.056)
        assert summary["nominal_s"]["plan"] == pytest.approx(0.002)

    def test_trace_filename_slugs_like_result_files(self):
        assert trace_filename("MLS-V1") == "MLS-V1.trace.jsonl"
        assert trace_filename("weird name/v2") == "weird_name_v2.trace.jsonl"

    def test_append_and_iter_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.add("plan", recorder.start())
        path = append_trace_summary(
            tmp_path, recorder, system="MLS-V1", scenario_id="a", repetition=0
        )
        append_trace_summary(
            tmp_path, recorder, system="MLS-V1", scenario_id="b", repetition=1
        )
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "flight-trace"
        assert header["phases"] == list(PHASES)
        assert len(lines) == 3  # header + two summaries
        summaries = list(iter_trace_summaries(path))
        assert [s["scenario_id"] for s in summaries] == ["a", "b"]

    def test_concurrent_appends_keep_one_header(self, tmp_path):
        def append(index):
            recorder = FlightRecorder()
            append_trace_summary(
                tmp_path, recorder,
                system="MLS-V1", scenario_id=f"s{index}", repetition=0,
            )

        threads = [threading.Thread(target=append, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        path = tmp_path / trace_filename("MLS-V1")
        lines = path.read_text().splitlines()
        headers = [l for l in lines if json.loads(l).get("kind") == "flight-trace"]
        assert len(headers) == 1
        assert len(list(iter_trace_summaries(path))) == 8
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp files


# ---------------------------------------------------------------------- #
# the side-channel contract
# ---------------------------------------------------------------------- #
def short_campaign():
    from repro.world.scenario_gen import generate_suite

    return (
        Campaign("mls-v1")
        .suite(generate_suite("smoke", count=1, seed=3))
        .mission(max_mission_time=8.0)
    )


class TestTracingSideChannel:
    def test_traced_records_byte_identical_to_untraced(self, tmp_path):
        short_campaign().out(tmp_path / "plain").run()
        short_campaign().out(tmp_path / "traced").trace(tmp_path / "trace").run()
        assert (tmp_path / "plain" / "MLS-V1.jsonl").read_bytes() == (
            tmp_path / "traced" / "MLS-V1.jsonl"
        ).read_bytes()
        summaries = list(
            iter_trace_summaries(tmp_path / "trace" / "MLS-V1.trace.jsonl")
        )
        assert len(summaries) == 1
        spans = summaries[0]["spans"]
        for phase in ("physics", "sense", "detect", "plan", "control"):
            assert spans[phase]["count"] > 0, phase

    def test_trace_dir_env_var_reaches_execution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "envtrace"))
        short_campaign().run()
        assert (tmp_path / "envtrace" / "MLS-V1.trace.jsonl").exists()

    def test_run_metrics_exported(self, tmp_path):
        METRICS.reset()
        try:
            short_campaign().run()
            snapshot = METRICS.snapshot()
            runs = snapshot["repro_runs_total"]
            assert sum(runs.values()) == 1
            assert all('system="MLS-V1"' in key for key in runs)
            assert sum(snapshot["repro_frames_total"].values()) > 0
            assert sum(snapshot["repro_mission_seconds"].values()) == 1
        finally:
            METRICS.reset()


# ---------------------------------------------------------------------- #
# the report
# ---------------------------------------------------------------------- #
def synthetic_trace(directory, order):
    for scenario_id, repetition in order:
        recorder = FlightRecorder()
        recorder.add("detect", recorder.start())
        recorder.count("frames-skipped", 2)
        recorder.count("frames-rendered", 6)
        recorder.count("depth-captures", 4)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        append_trace_summary(
            directory, recorder,
            system="MLS-V3", scenario_id=scenario_id, repetition=repetition,
        )


class TestPhaseReport:
    def test_report_independent_of_append_order(self, tmp_path):
        runs = [("sc-a", 0), ("sc-a", 1), ("sc-b", 0)]
        synthetic_trace(tmp_path / "fwd", runs)
        synthetic_trace(tmp_path / "rev", list(reversed(runs)))
        forward = render_phase_report(collect_summaries(tmp_path / "fwd"))
        backward = render_phase_report(collect_summaries(tmp_path / "rev"))
        assert forward == backward

    def test_default_report_has_no_wall_columns(self, tmp_path):
        synthetic_trace(tmp_path, [("sc", 0)])
        summaries = collect_summaries(tmp_path)
        plain = render_phase_report(summaries)
        assert "Wall s" not in plain
        assert "Nominal s" in plain
        assert "frame-skip-rate" in plain
        assert "25.0%" in plain  # 2 skipped / (2 + 6)
        walled = render_phase_report(summaries, wall=True)
        assert "Wall s" in walled

    def test_skip_rate_without_opportunities_is_na(self, tmp_path):
        recorder = FlightRecorder()
        recorder.charge_nominal(0.01, 0.0, 0.0)
        append_trace_summary(
            tmp_path, recorder, system="S", scenario_id="sc", repetition=0
        )
        report = render_phase_report(collect_summaries(tmp_path))
        assert "n/a" in report

    def test_cli_writes_report(self, tmp_path, capsys):
        synthetic_trace(tmp_path / "trace", [("sc", 0)])
        out = tmp_path / "report.md"
        assert obs_main(["report", str(tmp_path / "trace"), "--out", str(out)]) == 0
        assert out.read_text().startswith("# Flight-trace phase report")
        assert str(out) in capsys.readouterr().out

    def test_cli_errors_exit_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "missing")]) == 2
        assert "no such trace directory" in capsys.readouterr().err
        empty = tmp_path / "empty"
        empty.mkdir()
        assert obs_main(["report", str(empty)]) == 2
        assert "no *.trace.jsonl files" in capsys.readouterr().err
