"""Tests for the observability subsystem (repro.obs).

The load-bearing contract — campaign records are byte-identical with
tracing on or off — is asserted here over a real (short) campaign; the CI
``obs-smoke`` job re-checks it with ``cmp`` over the standard smoke suite.
"""

import json
import threading

import pytest

from repro.bench.campaign import Campaign
from repro.obs.metrics import (
    METRICS,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    format_value,
)
from repro.obs.report import (
    collect_summaries,
    main as obs_main,
    render_phase_report,
)
from repro.obs.trace import (
    PHASES,
    FlightRecorder,
    append_trace_summary,
    iter_trace_summaries,
    trace_filename,
)


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        runs = registry.counter("runs_total", "Completed runs.")
        runs.inc(system="MLS-V1", outcome="success")
        runs.inc(2, system="MLS-V1", outcome="success")
        runs.inc(system="MLS-V2", outcome="crash")
        assert runs.value(system="MLS-V1", outcome="success") == 3
        assert runs.value(system="MLS-V2", outcome="crash") == 1
        assert runs.value(system="MLS-V3", outcome="success") == 0.0

    def test_counter_refuses_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("c", "").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("queue_depth", "")
        depth.set(5)
        depth.inc()
        depth.dec(2)
        assert depth.value() == 4

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        latency = registry.histogram("latency_seconds", "", buckets=(0.1, 1.0))
        latency.observe(0.05, route="/jobs")
        latency.observe(0.5, route="/jobs")
        latency.observe(30.0, route="/jobs")
        assert latency.count(route="/jobs") == 3
        assert latency.sum(route="/jobs") == pytest.approx(30.55)
        text = "\n".join(latency.render())
        assert 'latency_seconds_bucket{route="/jobs",le="0.1"} 1' in text
        assert 'latency_seconds_bucket{route="/jobs",le="1"} 2' in text
        assert 'latency_seconds_bucket{route="/jobs",le="+Inf"} 3' in text
        assert 'latency_seconds_count{route="/jobs"} 3' in text

    def test_reregistration_returns_existing_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "Cache hits.")
        second = registry.counter("hits", "different help, same metric")
        assert first is second

    def test_reregistration_under_other_type_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing", "")

    def test_prometheus_rendering_is_order_independent(self):
        def build(order):
            registry = MetricsRegistry()
            for system in order:
                registry.counter("runs_total", "Runs.").inc(system=system)
            registry.gauge("alive", "Liveness.").set(1)
            return registry.render_prometheus()

        assert build(["b", "a", "c"]) == build(["c", "a", "b"])

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("runs_total", "Completed runs.").inc(system='we"ird\n')
        text = registry.render_prometheus()
        assert "# HELP runs_total Completed runs." in text
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{system="we\\"ird\\n"} 1' in text
        assert text.endswith("\n")

    def test_snapshot_reports_histograms_as_counts(self):
        registry = MetricsRegistry()
        registry.histogram("h", "").observe(0.2, k="v")
        registry.counter("c", "").inc()
        assert registry.snapshot() == {"c": {"{}": 1.0}, "h": {'{k="v"}': 1.0}}

    def test_format_value(self):
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_concurrent_writers_lose_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("n", "")

        def spin():
            for _ in range(1000):
                counter.inc(worker="w")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(worker="w") == 4000


# ---------------------------------------------------------------------- #
# flight recorder + trace files
# ---------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_spans_counters_and_nominal_roll_up(self):
        recorder = FlightRecorder()
        start = recorder.start()
        recorder.add("detect", start)
        recorder.add("detect", recorder.start())
        recorder.count("frames-skipped")
        recorder.count("frames-rendered", 3)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        summary = recorder.summary(system="S", scenario_id="sc-1", repetition=2)
        assert summary["system"] == "S"
        assert summary["scenario_id"] == "sc-1"
        assert summary["repetition"] == 2
        assert summary["spans"]["detect"]["count"] == 2
        assert summary["spans"]["detect"]["wall_s"] > 0.0
        assert summary["counters"] == {"frames-rendered": 3, "frames-skipped": 1}
        assert summary["nominal_s"]["detect"] == pytest.approx(0.024)
        assert summary["nominal_s"]["map"] == pytest.approx(0.056)
        assert summary["nominal_s"]["plan"] == pytest.approx(0.002)

    def test_trace_filename_slugs_like_result_files(self):
        assert trace_filename("MLS-V1") == "MLS-V1.trace.jsonl"
        assert trace_filename("weird name/v2") == "weird_name_v2.trace.jsonl"

    def test_append_and_iter_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.add("plan", recorder.start())
        path = append_trace_summary(
            tmp_path, recorder, system="MLS-V1", scenario_id="a", repetition=0
        )
        append_trace_summary(
            tmp_path, recorder, system="MLS-V1", scenario_id="b", repetition=1
        )
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "flight-trace"
        assert header["phases"] == list(PHASES)
        assert len(lines) == 3  # header + two summaries
        summaries = list(iter_trace_summaries(path))
        assert [s["scenario_id"] for s in summaries] == ["a", "b"]

    def test_concurrent_appends_keep_one_header(self, tmp_path):
        def append(index):
            recorder = FlightRecorder()
            append_trace_summary(
                tmp_path, recorder,
                system="MLS-V1", scenario_id=f"s{index}", repetition=0,
            )

        threads = [threading.Thread(target=append, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        path = tmp_path / trace_filename("MLS-V1")
        lines = path.read_text().splitlines()
        headers = [l for l in lines if json.loads(l).get("kind") == "flight-trace"]
        assert len(headers) == 1
        assert len(list(iter_trace_summaries(path))) == 8
        assert list(tmp_path.iterdir()) == [path]  # no leftover temp files


# ---------------------------------------------------------------------- #
# the side-channel contract
# ---------------------------------------------------------------------- #
def short_campaign():
    from repro.world.scenario_gen import generate_suite

    return (
        Campaign("mls-v1")
        .suite(generate_suite("smoke", count=1, seed=3))
        .mission(max_mission_time=8.0)
    )


class TestTracingSideChannel:
    def test_traced_records_byte_identical_to_untraced(self, tmp_path):
        short_campaign().out(tmp_path / "plain").run()
        short_campaign().out(tmp_path / "traced").trace(tmp_path / "trace").run()
        assert (tmp_path / "plain" / "MLS-V1.jsonl").read_bytes() == (
            tmp_path / "traced" / "MLS-V1.jsonl"
        ).read_bytes()
        summaries = list(
            iter_trace_summaries(tmp_path / "trace" / "MLS-V1.trace.jsonl")
        )
        assert len(summaries) == 1
        spans = summaries[0]["spans"]
        for phase in ("physics", "sense", "detect", "plan", "control"):
            assert spans[phase]["count"] > 0, phase

    def test_trace_dir_env_var_reaches_execution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "envtrace"))
        short_campaign().run()
        assert (tmp_path / "envtrace" / "MLS-V1.trace.jsonl").exists()

    def test_run_metrics_exported(self, tmp_path):
        METRICS.reset()
        try:
            short_campaign().run()
            snapshot = METRICS.snapshot()
            runs = snapshot["repro_runs_total"]
            assert sum(runs.values()) == 1
            assert all('system="MLS-V1"' in key for key in runs)
            assert sum(snapshot["repro_frames_total"].values()) > 0
            assert sum(snapshot["repro_mission_seconds"].values()) == 1
        finally:
            METRICS.reset()


# ---------------------------------------------------------------------- #
# the report
# ---------------------------------------------------------------------- #
def synthetic_trace(directory, order):
    for scenario_id, repetition in order:
        recorder = FlightRecorder()
        recorder.add("detect", recorder.start())
        recorder.count("frames-skipped", 2)
        recorder.count("frames-rendered", 6)
        recorder.count("depth-captures", 4)
        recorder.charge_nominal(0.012, 0.028, 0.001)
        append_trace_summary(
            directory, recorder,
            system="MLS-V3", scenario_id=scenario_id, repetition=repetition,
        )


class TestPhaseReport:
    def test_report_independent_of_append_order(self, tmp_path):
        runs = [("sc-a", 0), ("sc-a", 1), ("sc-b", 0)]
        synthetic_trace(tmp_path / "fwd", runs)
        synthetic_trace(tmp_path / "rev", list(reversed(runs)))
        forward = render_phase_report(collect_summaries(tmp_path / "fwd"))
        backward = render_phase_report(collect_summaries(tmp_path / "rev"))
        assert forward == backward

    def test_default_report_has_no_wall_columns(self, tmp_path):
        synthetic_trace(tmp_path, [("sc", 0)])
        summaries = collect_summaries(tmp_path)
        plain = render_phase_report(summaries)
        assert "Wall s" not in plain
        assert "Nominal s" in plain
        assert "frame-skip-rate" in plain
        assert "25.0%" in plain  # 2 skipped / (2 + 6)
        walled = render_phase_report(summaries, wall=True)
        assert "Wall s" in walled

    def test_skip_rate_without_opportunities_is_na(self, tmp_path):
        recorder = FlightRecorder()
        recorder.charge_nominal(0.01, 0.0, 0.0)
        append_trace_summary(
            tmp_path, recorder, system="S", scenario_id="sc", repetition=0
        )
        report = render_phase_report(collect_summaries(tmp_path))
        assert "n/a" in report

    def test_cli_writes_report(self, tmp_path, capsys):
        synthetic_trace(tmp_path / "trace", [("sc", 0)])
        out = tmp_path / "report.md"
        assert obs_main(["report", str(tmp_path / "trace"), "--out", str(out)]) == 0
        assert out.read_text().startswith("# Flight-trace phase report")
        assert str(out) in capsys.readouterr().out

    def test_cli_errors_exit_2(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "missing")]) == 2
        assert "no such trace directory" in capsys.readouterr().err
        empty = tmp_path / "empty"
        empty.mkdir()
        assert obs_main(["report", str(empty)]) == 2
        assert "no *.trace.jsonl files" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# snapshot export + fleet aggregation
# ---------------------------------------------------------------------- #
def fleet_registry(runs, depth, mission_seconds=()):
    registry = MetricsRegistry()
    counter = registry.counter("repro_runs_total", "Completed runs.")
    counter.inc(runs, system="MLS-V1", outcome="success")
    registry.gauge("repro_queue_depth", "Shards queued.").set(depth)
    histogram = registry.histogram(
        "repro_mission_seconds", "Mission wall seconds.", buckets=(0.1, 1.0)
    )
    for seconds in mission_seconds:
        histogram.observe(seconds)
    return registry


class TestMetricsExport:
    def test_flush_writes_one_atomic_snapshot(self, tmp_path):
        from repro.obs.export import MetricsExporter

        registry = fleet_registry(3, 7, (0.5,))
        exporter = MetricsExporter(process="hostA-1-aa", nonce="aa")
        path = exporter.flush(tmp_path, registry=registry)
        assert path is not None
        assert path.parent == tmp_path / "obs" / "metrics"
        data = json.loads(path.read_text())
        assert data["kind"] == "metrics-snapshot"
        assert data["schema"] == 1
        assert data["process"] == "hostA-1-aa"
        assert data["seq"] == 1
        assert "repro_runs_total" in data["metrics"]
        # Re-flush overwrites the same file with a bumped sequence; no
        # temp files survive either flush.
        again = exporter.flush(tmp_path, registry=registry)
        assert again == path
        assert json.loads(path.read_text())["seq"] == 2
        assert sorted(path.parent.iterdir()) == [path]

    def test_flush_is_best_effort(self, tmp_path):
        from repro.obs.export import MetricsExporter

        blocker = tmp_path / "obs"
        blocker.write_text("not a directory")
        exporter = MetricsExporter()
        assert exporter.flush(tmp_path, registry=MetricsRegistry()) is None

    def test_concurrent_flushers_leave_no_torn_temp_files(self, tmp_path):
        from repro.obs.export import MetricsExporter
        from repro.obs.aggregate import snapshot_paths

        registry = fleet_registry(1, 1)
        exporter = MetricsExporter(process="p", nonce="cc")
        threads = [
            threading.Thread(
                target=lambda: [exporter.flush(tmp_path, registry=registry)
                                for _ in range(20)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        paths = snapshot_paths([tmp_path])
        assert len(paths) == 1
        # Only the snapshot remains: every unique temp file was replaced
        # over it, none linger and none match the aggregator's glob.
        assert sorted(p.name for p in (tmp_path / "obs" / "metrics").iterdir()) == [
            paths[0].name
        ]
        assert json.loads(paths[0].read_text())["seq"] == 80

    def test_merge_is_byte_stable_over_arrival_order(self, tmp_path):
        import itertools

        from repro.obs.export import MetricsExporter
        from repro.obs.aggregate import (
            dedupe_snapshots,
            load_snapshots,
            merge_snapshots,
            render_merged,
        )

        registries = [
            fleet_registry(3, 7, (0.5, 2.0)),
            fleet_registry(2, 9, (0.05,)),
            fleet_registry(5, 1, ()),
        ]
        for index, registry in enumerate(registries):
            MetricsExporter(process=f"host-{index}", nonce=f"n{index}").flush(
                tmp_path, registry=registry
            )
        snapshots = load_snapshots([tmp_path])
        assert len(snapshots) == 3
        rendered = {
            render_merged(merge_snapshots(dedupe_snapshots(list(order))))
            for order in itertools.permutations(snapshots)
        }
        assert len(rendered) == 1
        text = rendered.pop()
        assert 'repro_runs_total{outcome="success",system="MLS-V1"} 10' in text
        assert 'repro_mission_seconds_count 3' in text  # element-wise histogram

    def test_single_process_merge_matches_render_prometheus(self, tmp_path):
        from repro.obs.export import MetricsExporter
        from repro.obs.aggregate import (
            dedupe_snapshots,
            load_snapshots,
            merge_snapshots,
            render_merged,
        )

        registry = fleet_registry(4, 2, (0.3, 0.9, 5.0))
        MetricsExporter(process="solo", nonce="dd").flush(tmp_path, registry=registry)
        merged = render_merged(
            merge_snapshots(dedupe_snapshots(load_snapshots([tmp_path])))
        )
        assert merged == registry.render_prometheus()

    def test_torn_and_foreign_snapshots_are_skipped(self, tmp_path):
        from repro.obs.export import MetricsExporter
        from repro.obs.aggregate import load_snapshots, snapshot_paths

        MetricsExporter(process="ok", nonce="ee").flush(
            tmp_path, registry=fleet_registry(1, 1)
        )
        metrics_dir = tmp_path / "obs" / "metrics"
        (metrics_dir / "999-torn.json").write_text('{"kind": "metrics-sna')
        (metrics_dir / "998-alien.json").write_text('{"kind": "other", "schema": 1}')
        (metrics_dir / ".77-ff-aaaaaa.tmp").write_text("{}")  # mid-flush leftover
        assert len(snapshot_paths([tmp_path])) == 3  # temp file invisible
        snapshots = load_snapshots([tmp_path])
        assert [snapshot.process for snapshot in snapshots] == ["ok"]

    def test_dedupe_keeps_highest_seq_per_process(self, tmp_path):
        from repro.obs.aggregate import Snapshot, dedupe_snapshots

        old = Snapshot(process="w", seq=1, metrics={})
        new = Snapshot(process="w", seq=5, metrics={})
        other = Snapshot(process="x", seq=2, metrics={})
        kept = dedupe_snapshots([new, old, other])
        assert [(snapshot.process, snapshot.seq) for snapshot in kept] == [
            ("w", 5), ("x", 2),
        ]
        assert [snapshot.process for snapshot in
                dedupe_snapshots([new, other], live_process="w")] == ["x"]

    def test_gauge_is_last_writer_wins_counters_sum(self):
        from repro.obs.aggregate import Snapshot, merge_snapshots, render_merged

        def snap(process, seq, depth, runs):
            return Snapshot(process=process, seq=seq, metrics={
                "repro_queue_depth": {
                    "type": "gauge", "help": "d", "series": [[[], depth]],
                },
                "repro_runs_total": {
                    "type": "counter", "help": "r",
                    "series": [[[["system", "S"]], runs]],
                },
            })

        merged = merge_snapshots([snap("a", 3, 11.0, 2.0), snap("b", 2, 44.0, 3.0)])
        text = render_merged(merged)
        assert "repro_queue_depth 11" in text  # seq 3 wrote last
        assert 'repro_runs_total{system="S"} 5' in text

    def test_fleet_render_live_registry_supersedes_own_snapshots(self, tmp_path):
        from repro.obs.export import process_exporter
        from repro.obs.aggregate import fleet_render

        registry = fleet_registry(2, 7)
        exporter = process_exporter()
        exporter.flush(tmp_path, registry=registry)
        # The live registry moves on; a scrape must reflect it, not the
        # stale disk copy this same process flushed earlier.
        registry.counter("repro_runs_total", "Completed runs.").inc(
            1, system="MLS-V1", outcome="success"
        )
        text = fleet_render([tmp_path], registry=registry)
        assert 'repro_runs_total{outcome="success",system="MLS-V1"} 3' in text
        # A genuinely foreign snapshot still joins the merge.
        from repro.obs.export import MetricsExporter

        MetricsExporter(process="foreign", nonce="gg").flush(
            tmp_path, registry=fleet_registry(10, 1)
        )
        text = fleet_render([tmp_path], registry=registry)
        assert 'repro_runs_total{outcome="success",system="MLS-V1"} 13' in text


# ---------------------------------------------------------------------- #
# correlation IDs
# ---------------------------------------------------------------------- #
class TestCorrelation:
    def test_campaign_correlate_threads_ids_to_jobs(self):
        campaign = short_campaign().correlate(job="abc123", shard="shard-00")
        job = campaign.jobs()[0]
        assert job.correlation == (("job", "abc123"), ("shard", "shard-00"))
        assert campaign.correlate().jobs()[0].correlation == ()

    def test_job_correlation_includes_probe_env(self, monkeypatch):
        from repro.bench.campaign import _job_correlation

        campaign = short_campaign().correlate(job="abc123")
        job = campaign.jobs()[0]
        monkeypatch.delenv("REPRO_CORR_PROBE", raising=False)
        assert _job_correlation(job) == {"job": "abc123"}
        monkeypatch.setenv("REPRO_CORR_PROBE", "deadbeef00")
        assert _job_correlation(job) == {"job": "abc123", "probe": "deadbeef00"}

    def test_trace_summary_carries_corr_only_when_given(self, tmp_path):
        recorder = FlightRecorder()
        recorder.charge_nominal(0.01, 0.0, 0.0)
        append_trace_summary(
            tmp_path / "plain", recorder, system="S", scenario_id="sc",
            repetition=0,
        )
        append_trace_summary(
            tmp_path / "tagged", recorder, system="S", scenario_id="sc",
            repetition=0, correlation={"job": "abc", "shard": "shard-01"},
        )
        plain = next(iter_trace_summaries(tmp_path / "plain" / "S.trace.jsonl"))
        tagged = next(iter_trace_summaries(tmp_path / "tagged" / "S.trace.jsonl"))
        assert "corr" not in plain
        assert tagged["corr"] == {"job": "abc", "shard": "shard-01"}

    def test_correlated_run_labels_metrics(self, tmp_path):
        METRICS.reset()
        try:
            short_campaign().correlate(job="abc123", shard="shard-00").out(
                tmp_path / "out"
            ).run()
            runs = METRICS.snapshot()["repro_runs_total"]
            assert sum(runs.values()) == 1
            (key,) = runs
            assert 'job="abc123"' in key and 'shard="shard-00"' in key
        finally:
            METRICS.reset()

    def test_dispatched_traces_carry_job_and_shard_ids(self, tmp_path, monkeypatch):
        from repro.core.config import mls_v1
        from repro.core.mission import MissionConfig
        from repro.dispatch.planner import plan_dispatch
        from repro.dispatch.worker import run_worker
        from repro.world.scenario_gen import generate_suite

        directory = tmp_path / "dispatch"
        plan_dispatch(
            directory, generate_suite("smoke", count=1, seed=3), [mls_v1()],
            shards=1, mission=MissionConfig(max_mission_time=8.0),
        )
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path / "trace"))
        run_worker(directory, worker_id="w0", wait=False)
        summaries = collect_summaries(tmp_path / "trace")
        assert summaries, "dispatched runs should be traced"
        for summary in summaries:
            assert set(summary["corr"]) == {"job", "shard"}
            assert summary["corr"]["shard"] == "shard-0000"
            assert len(summary["corr"]["job"]) == 10
        # ... and the worker flushed its metric snapshot under the
        # dispatch dir for fleet aggregation.
        from repro.obs.aggregate import load_snapshots

        snapshots = load_snapshots([directory])
        assert snapshots, "worker run loop should flush metric snapshots"


# ---------------------------------------------------------------------- #
# phase comparison (obs compare)
# ---------------------------------------------------------------------- #
def timed_trace(directory, walls, system="MLS-V3", nominal=0.01):
    """Trace dir with one summary per entry of ``walls``: {phase: seconds}."""
    for repetition, spans in enumerate(walls):
        recorder = FlightRecorder()
        for phase, seconds in spans.items():
            recorder.span_counts[phase] = 1
            recorder.span_seconds[phase] = seconds
        recorder.charge_nominal(nominal, 0.0, 0.0)
        append_trace_summary(
            directory, recorder, system=system, scenario_id="sc",
            repetition=repetition,
        )


class TestCompare:
    def test_self_compare_flags_nothing(self, tmp_path, capsys):
        walls = [{"detect": 0.010 + 0.001 * i, "plan": 0.02} for i in range(5)]
        timed_trace(tmp_path / "a", walls)
        assert obs_main(["compare", str(tmp_path / "a"), str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" not in out
        assert "No significant phase-level shift" in out

    def test_regression_flags_the_slow_phase_and_exits_1(self, tmp_path, capsys):
        base = [{"detect": 0.010 + 0.0005 * i, "plan": 0.020} for i in range(6)]
        slow = [{"detect": 0.100 + 0.0005 * i, "plan": 0.020} for i in range(6)]
        timed_trace(tmp_path / "a", base)
        timed_trace(tmp_path / "b", slow)
        assert obs_main(["compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "MLS-V3/detect" in out
        assert "1 phase(s) significantly slower" in out

    def test_improvement_is_reported_not_fatal(self, tmp_path, capsys):
        slow = [{"detect": 0.100 + 0.0005 * i} for i in range(6)]
        fast = [{"detect": 0.010 + 0.0005 * i} for i in range(6)]
        timed_trace(tmp_path / "a", slow)
        timed_trace(tmp_path / "b", fast)
        assert obs_main(["compare", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "significantly faster" in capsys.readouterr().out

    def test_phase_missing_on_one_side_is_na(self, tmp_path):
        from repro.obs.compare import compare_phases

        timed_trace(tmp_path / "a", [{"detect": 0.01}])
        timed_trace(tmp_path / "b", [{"detect": 0.01, "harness": 0.5}])
        comparisons = compare_phases(
            collect_summaries(tmp_path / "a"), collect_summaries(tmp_path / "b")
        )
        by_phase = {c.phase: c for c in comparisons}
        assert by_phase["harness"].verdict == "n/a"
        assert not by_phase["harness"].regressed

    def test_nominal_metric_is_deterministic(self, tmp_path):
        from repro.obs.compare import compare_phases

        timed_trace(tmp_path / "a", [{"detect": 0.5}] * 4, nominal=0.010)
        timed_trace(tmp_path / "b", [{"detect": 0.001}] * 4, nominal=0.030)
        comparisons = compare_phases(
            collect_summaries(tmp_path / "a"), collect_summaries(tmp_path / "b"),
            metric="nominal",
        )
        detect = next(c for c in comparisons if c.phase == "detect")
        # Identical samples per side: the CI collapses to the exact diff.
        assert detect.regressed
        assert detect.ci_low == pytest.approx(0.02)
        assert detect.ci_high == pytest.approx(0.02)

    def test_compare_cli_errors_exit_2(self, tmp_path, capsys):
        timed_trace(tmp_path / "a", [{"detect": 0.01}])
        assert obs_main(
            ["compare", str(tmp_path / "a"), str(tmp_path / "missing")]
        ) == 2
        assert "no such trace directory" in capsys.readouterr().err

    def test_compare_writes_out_file(self, tmp_path, capsys):
        timed_trace(tmp_path / "a", [{"detect": 0.01}] * 3)
        out = tmp_path / "cmp.md"
        assert obs_main(
            ["compare", str(tmp_path / "a"), str(tmp_path / "a"),
             "--out", str(out)]
        ) == 0
        assert out.read_text().startswith("# Flight-trace phase comparison")


class TestReportCLI:
    def test_header_only_traces_exit_1(self, tmp_path, capsys):
        from repro.obs.trace import _ensure_header

        _ensure_header(tmp_path / "MLS-V1.trace.jsonl", "MLS-V1")
        assert obs_main(["report", str(tmp_path)]) == 1
        assert "no trace summaries" in capsys.readouterr().err

    def test_by_shard_groups_on_correlation(self, tmp_path, capsys):
        recorder = FlightRecorder()
        recorder.charge_nominal(0.01, 0.02, 0.0)
        for shard, repetition in (("shard-00", 0), ("shard-00", 1), ("shard-01", 0)):
            append_trace_summary(
                tmp_path, recorder, system="S", scenario_id=f"sc-{repetition}",
                repetition=repetition,
                correlation={"job": "abcdef1234", "shard": shard},
            )
        append_trace_summary(  # uncorrelated runs group under "-"
            tmp_path, recorder, system="S", scenario_id="sc-x", repetition=0
        )
        assert obs_main(["report", str(tmp_path), "--by-shard"]) == 0
        out = capsys.readouterr().out
        assert "# Flight-trace shard report" in out
        assert "shard-00" in out and "shard-01" in out
        assert "abcdef1234" in out
        lines = [line for line in out.splitlines() if "| shard-00 " in line]
        assert len(lines) == 1  # two runs rolled into one group row
