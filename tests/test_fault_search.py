"""Tests for the fault-space search engine (repro.faults.search).

Mission execution is stubbed with a severity-aware record factory: each
scenario has a planted critical severity, and the fake classification flips
from success to collision exactly at that threshold.  That makes bisection
correctness checkable against ground truth and keeps the determinism tests
(re-run, kill-and-resume, worker interleaving, probe-order invariance) fast.
The CI ``sweep-smoke`` job covers the real-mission path end to end against
committed baselines.
"""

import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

import repro.bench.campaign as campaign_module
from repro.core.config import mls_v1, mls_v2
from repro.core.metrics import DetectionStats, RunOutcome, RunRecord
from repro.dispatch.worker import run_worker
from repro.faults.cli import main as faults_main
from repro.faults.search import (
    DispatchProbeBackend,
    Probe,
    ServiceProbeBackend,
    bisect_severity,
    read_bisection,
    read_curve,
    render_bisection_report,
    run_sweep,
    severity_ladder,
    sweep_probes,
    write_bisection,
)
from repro.faults.search.curves import parse_severities, validate_severities
from repro.faults.spec import FaultSpec
from repro.world.scenario_gen import generate_suite

#: Planted critical severity per scenario index (scenario ids end ``-000N``).
THRESHOLDS = {0: 0.35, 1: 0.65, 2: 0.15, 3: 0.85}

SPECS = (
    FaultSpec(target="camera", mode="freeze", severity=0.8, start=25.0, duration=20.0),
    FaultSpec(target="planning", mode="timeout", severity=0.7, start=40.0, duration=30.0),
)


def planted_threshold(scenario_id):
    return THRESHOLDS[int(scenario_id.rsplit("-", 1)[1])]


def make_record(job):
    """Deterministic severity-dependent fake mission result."""
    spec = job.faults[0]
    crashes = spec.severity >= planted_threshold(job.scenario.scenario_id)
    return RunRecord(
        scenario_id=job.scenario.scenario_id,
        system_name=job.system.name,
        outcome=RunOutcome.COLLISION if crashes else RunOutcome.SUCCESS,
        landing_error=float("nan") if crashes else 0.4,
        collided=crashes,
        landed=not crashes,
        mission_time=42.0,
        detection=DetectionStats(frames_with_visible_marker=10, frames_detected=9),
        repetition=job.repetition,
        injected_faults=[
            {
                "name": spec.name,
                "target": spec.target,
                "mode": spec.mode,
                "severity": spec.severity,
                "armed": True,
                "activated": True,
                "events": 3,
            }
        ],
    )


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace mission execution with the severity-aware record factory."""
    calls = []

    def fake_execute(job):
        calls.append((job.system.name, job.scenario.scenario_id,
                      job.repetition, job.faults[0].severity))
        return make_record(job)

    monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
    monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
    return calls


@pytest.fixture
def suite():
    return generate_suite("smoke", count=2, seed=7, repetitions=1)


def make_backend(root, suite, **kwargs):
    kwargs.setdefault("repetitions", 1)
    return DispatchProbeBackend(Path(root) / "probes", suite, [mls_v1()], **kwargs)


def curve_bytes(out_dir):
    out_dir = Path(out_dir)
    return (
        (out_dir / "curves" / "coverage.jsonl").read_bytes(),
        (out_dir / "curves" / "failure-modes.jsonl").read_bytes(),
        (out_dir / "sweep.md").read_bytes(),
    )


class TestLadder:
    def test_severity_ladder_endpoints_and_spacing(self):
        assert severity_ladder(3) == (0.0, 0.5, 1.0)
        assert severity_ladder(5) == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_ladder_needs_two_points(self):
        with pytest.raises(ValueError):
            severity_ladder(1)

    def test_parse_severities_sorts_and_dedupes(self):
        assert parse_severities("1,0.5,0.5,0") == (0.0, 0.5, 1.0)

    def test_severities_range_checked(self):
        with pytest.raises(ValueError):
            validate_severities([0.5, 1.5])
        with pytest.raises(ValueError):
            parse_severities("zero")


class TestSweep:
    def test_probe_grid_covers_specs_x_severities(self, suite):
        probes = sweep_probes(suite, SPECS, (0.0, 0.5, 1.0))
        assert len(probes) == 6
        assert {p.spec.name for p in probes} == {s.name for s in SPECS}
        # Severity variants keep the curve key (the spec name).
        assert all(p.scenario_ids == ("smoke-7-0000", "smoke-7-0001") for p in probes)

    def test_sweep_points_and_files(self, tmp_path, stub_execute, suite):
        backend = make_backend(tmp_path, suite)
        result = run_sweep(
            backend, SPECS, severity_ladder(3), out_dir=tmp_path / "sweep"
        )
        assert len(result.points) == 6
        by_key = {(p.fault, p.severity): p for p in result.points}
        # Below both thresholds nothing escapes; above both everything does.
        for spec in SPECS:
            assert by_key[(spec.name, 0.0)].escaped == 0
            assert by_key[(spec.name, 0.0)].absorbed == 2
            assert by_key[(spec.name, 1.0)].escaped == 2
        header, rows = read_curve(result.coverage_path)
        assert header["curve"] == "coverage-vs-severity"
        assert header["points"] == len(rows) == 6
        assert rows[0]["fault"] == "camera-freeze"
        _, mode_rows = read_curve(result.failure_modes_path)
        assert mode_rows[0]["modes"]["degraded-success"] == 2
        assert "## Coverage vs severity" in result.report

    def test_rerun_is_byte_identical_and_memoized(self, tmp_path, stub_execute, suite):
        backend = make_backend(tmp_path / "a", suite)
        run_sweep(backend, SPECS, severity_ladder(3), out_dir=tmp_path / "a")
        first = curve_bytes(tmp_path / "a")
        flights = len(stub_execute)
        assert flights == 12  # 2 specs x 3 severities x 2 scenarios

        # Same backend: memoized, no extra flights.
        run_sweep(backend, SPECS, severity_ladder(3), out_dir=tmp_path / "a")
        assert len(stub_execute) == flights
        assert curve_bytes(tmp_path / "a") == first

        # Fresh backend over the same directory tree: resumes from disk,
        # still no extra flights, still byte-identical.
        resumed = make_backend(tmp_path / "a", suite)
        run_sweep(resumed, SPECS, severity_ladder(3), out_dir=tmp_path / "a")
        assert len(stub_execute) == flights
        assert curve_bytes(tmp_path / "a") == first

        # And an independent directory reproduces the same bytes.
        other = make_backend(tmp_path / "b", suite)
        run_sweep(other, SPECS, severity_ladder(3), out_dir=tmp_path / "b")
        assert curve_bytes(tmp_path / "b") == first

    def test_worker_interleaving_is_byte_identical(self, tmp_path, stub_execute, suite):
        serial = make_backend(tmp_path / "serial", suite)
        run_sweep(serial, SPECS, severity_ladder(3), out_dir=tmp_path / "serial")

        def two_workers(directory):
            # Two in-process workers alternating shard claims: the same
            # contention pattern run_local_workers produces, minus the
            # processes (which would not see the monkeypatched executor).
            run_worker(directory, worker_id="w0", max_shards=1, wait=False)
            run_worker(directory, worker_id="w1", wait=False)
            run_worker(directory, worker_id="w0", wait=False)

        sharded = make_backend(tmp_path / "multi", suite, shards=2, drain=two_workers)
        run_sweep(sharded, SPECS, severity_ladder(3), out_dir=tmp_path / "multi")
        assert curve_bytes(tmp_path / "multi") == curve_bytes(tmp_path / "serial")

    def test_killed_sweep_resumes_to_identical_bytes(self, tmp_path, monkeypatch, suite):
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
        flown = []

        def dying_execute(job):
            if len(flown) == 3:
                raise RuntimeError("worker killed mid-sweep")
            flown.append(job.scenario.scenario_id)
            return make_record(job)

        monkeypatch.setattr(campaign_module, "_execute_job", dying_execute)
        dying = make_backend(tmp_path / "killed", suite, lease_seconds=0.2)
        with pytest.raises(RuntimeError, match="killed mid-sweep"):
            run_sweep(dying, SPECS, severity_ladder(3), out_dir=tmp_path / "killed")
        assert len(flown) == 3  # died partway through the probe batch

        # The crashed worker's lease must expire before a successor can
        # claim its shard through the lease protocol.
        time.sleep(0.25)
        monkeypatch.setattr(
            campaign_module, "_execute_job", lambda job: make_record(job)
        )
        resumed = make_backend(tmp_path / "killed", suite, lease_seconds=0.2)
        run_sweep(resumed, SPECS, severity_ladder(3), out_dir=tmp_path / "killed")

        serial = make_backend(tmp_path / "serial", suite)
        run_sweep(serial, SPECS, severity_ladder(3), out_dir=tmp_path / "serial")
        assert curve_bytes(tmp_path / "killed") == curve_bytes(tmp_path / "serial")


class ReorderingBackend:
    """Evaluates every batch in reversed order (and re-orders the answers)."""

    def __init__(self, inner):
        self.inner = inner
        self.suite = inner.suite

    def describe(self):
        return self.inner.describe()

    def evaluate(self, probes):
        reversed_outcomes = self.inner.evaluate(list(reversed(probes)))
        return list(reversed(reversed_outcomes))


class TestBisection:
    def test_bisection_brackets_planted_thresholds(self, tmp_path, stub_execute, suite):
        backend = make_backend(tmp_path, suite)
        results = bisect_severity(backend, SPECS, resolution=0.125)
        assert len(results) == 4  # 2 specs x 2 scenarios x 1 system x 1 rep
        for result in results:
            truth = planted_threshold(result.scenario_id)
            assert result.lo_mode == "degraded-success"
            assert result.hi_mode == result.critical_mode == "crash"
            assert result.hi - result.lo <= 0.125
            # The planted flip lies inside the final bracket.
            assert result.lo < truth <= result.critical

    def test_no_flip_cells_report_none(self, tmp_path, monkeypatch, suite):
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)

        def always_crashes(job):
            return replace(
                make_record(job), outcome=RunOutcome.COLLISION, collided=True,
                landed=False,
            )

        monkeypatch.setattr(campaign_module, "_execute_job", always_crashes)
        backend = make_backend(tmp_path, suite)
        results = bisect_severity(backend, SPECS[:1], resolution=0.25)
        assert [r.critical for r in results] == [None, None]
        assert all(r.lo_mode == r.hi_mode == "crash" for r in results)
        assert all(r.probes == 2 for r in results)  # endpoints only

    def test_rerun_and_probe_order_invariance(self, tmp_path, stub_execute, suite):
        first = bisect_severity(make_backend(tmp_path / "a", suite), SPECS,
                                resolution=0.125)
        again = bisect_severity(make_backend(tmp_path / "b", suite), SPECS,
                                resolution=0.125)
        assert again == first

        reordered = bisect_severity(
            ReorderingBackend(make_backend(tmp_path / "c", suite)), SPECS,
            resolution=0.125,
        )
        assert reordered == first

        def two_workers(directory):
            run_worker(directory, worker_id="w0", max_shards=1, wait=False)
            run_worker(directory, worker_id="w1", wait=False)
            run_worker(directory, worker_id="w0", wait=False)

        multi = bisect_severity(
            make_backend(tmp_path / "d", suite, shards=2, drain=two_workers),
            SPECS, resolution=0.125,
        )
        assert multi == first

    def test_bisection_jsonl_roundtrip_is_byte_stable(self, tmp_path, stub_execute, suite):
        results = bisect_severity(make_backend(tmp_path, suite), SPECS,
                                  resolution=0.25)
        path = write_bisection(tmp_path / "bisect.jsonl", results,
                               meta={"resolution": "0.25"})
        first = path.read_bytes()
        header, rows = read_bisection(path)
        assert header["cells"] == len(rows) == len(results)
        assert rows[0]["fault"] == results[0].fault
        write_bisection(path, results, meta={"resolution": "0.25"})
        assert path.read_bytes() == first
        report = render_bisection_report(results, meta={"resolution": "0.25"})
        assert "## Minimal critical severity per fault" in report

    def test_bisection_rejects_bad_arguments(self, tmp_path, suite):
        backend = make_backend(tmp_path, suite)
        with pytest.raises(ValueError):
            bisect_severity(backend, SPECS, resolution=0.0)
        with pytest.raises(ValueError):
            bisect_severity(backend, SPECS, lo=0.5, hi=0.5)
        with pytest.raises(ValueError):
            bisect_severity(backend, [])


class TestBackend:
    def test_probe_directories_are_content_addressed(self, tmp_path, stub_execute, suite):
        backend = make_backend(tmp_path, suite)
        probe = sweep_probes(suite, SPECS[:1], (0.5,))[0]
        _, plan = backend.probe_plan(probe)
        directory = backend.probe_dir(probe, plan.fingerprint)
        assert directory.name.startswith("camera-freeze-s0p5-")
        backend.evaluate([probe])
        assert (directory / "plan.json").is_file()

    def test_unknown_scenario_refused(self, tmp_path, suite):
        backend = make_backend(tmp_path, suite)
        probe = Probe(spec=SPECS[0], scenario_ids=("nope",))
        with pytest.raises(ValueError, match="not in the suite"):
            backend.evaluate([probe])

    def test_multi_system_records_cover_all_systems(self, tmp_path, stub_execute, suite):
        backend = DispatchProbeBackend(
            tmp_path / "probes", suite, [mls_v1(), mls_v2()], repetitions=1
        )
        probes = sweep_probes(suite, SPECS[:1], (0.0, 1.0))
        outcomes = backend.evaluate(probes)
        assert {r.system_name for r in outcomes[0].records} == {"MLS-V1", "MLS-V2"}
        results = bisect_severity(backend, SPECS[:1], resolution=0.25)
        assert len(results) == 4  # 2 scenarios x 2 systems
        assert {r.system for r in results} == {"MLS-V1", "MLS-V2"}


class TestServiceBackend:
    @pytest.fixture
    def server_factory(self, tmp_path):
        from repro.service.client import ServiceClient
        from repro.service.server import CampaignServer

        servers = []

        def make(workers=2, lease_seconds=5.0):
            server = CampaignServer(
                str(tmp_path / "service-root"), ("127.0.0.1", 0),
                workers=workers, lease_seconds=lease_seconds,
            )
            threading.Thread(target=server.serve_forever, daemon=True).start()
            server.start_pool()
            servers.append(server)
            return server, ServiceClient(server.url)

        yield make
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_sweep_through_service_matches_local(
        self, tmp_path, stub_execute, suite, server_factory
    ):
        _, client = server_factory()
        remote = ServiceProbeBackend(
            client, suite, ["mls-v1"], repetitions=1, timeout=30.0
        )
        result = run_sweep(
            remote, SPECS[:1], (0.0, 1.0), out_dir=tmp_path / "remote"
        )
        local = make_backend(tmp_path / "local", suite)
        reference = run_sweep(
            local, SPECS[:1], (0.0, 1.0), out_dir=tmp_path / "local"
        )
        assert result.points == reference.points
        # Identical systems/suite provenance -> identical curve bytes.
        assert curve_bytes(tmp_path / "remote") == curve_bytes(tmp_path / "local")

    def test_resubmitted_probe_joins_existing_job(
        self, tmp_path, stub_execute, suite, server_factory
    ):
        _, client = server_factory()
        backend = ServiceProbeBackend(
            client, suite, ["mls-v1"], repetitions=1, timeout=30.0
        )
        probes = sweep_probes(suite, SPECS[:1], (0.5,))
        backend.evaluate(probes)
        flights = len(stub_execute)
        fresh = ServiceProbeBackend(
            client, suite, ["mls-v1"], repetitions=1, timeout=30.0
        )
        outcomes = fresh.evaluate(probes)
        assert len(stub_execute) == flights  # deduped server-side
        assert outcomes[0].records


class TestInlineSuiteSubmission:
    def test_validate_inline_suite_roundtrip(self, suite):
        from repro.service.jobs import validate_submission

        payload = {
            "suite": {
                "name": suite.name,
                "repetitions": 1,
                "scenarios": [s.to_dict() for s in suite.scenarios],
            },
            "systems": ["mls-v1"],
            "shards": 1,
        }
        submission = validate_submission(payload)
        assert [s.scenario_id for s in submission.suite.scenarios] == [
            s.scenario_id for s in suite.scenarios
        ]

    def test_inline_suite_field_problems_are_collected(self, suite):
        from repro.service.jobs import validate_submission
        from repro.world.spec_validation import SpecValidationError

        payload = {
            "suite": {"repetitions": 0, "scenarios": [], "bogus": 1},
            "count": 3,
            "systems": ["mls-v1"],
        }
        with pytest.raises(SpecValidationError) as excinfo:
            validate_submission(payload)
        fields = {issue.field for issue in excinfo.value.issues}
        assert "suite.repetitions" in fields
        assert "suite.scenarios" in fields
        assert "suite.bogus" in fields
        assert "count" in fields  # not applicable with an inline suite

    def test_suite_and_preset_are_exclusive(self, suite):
        from repro.service.jobs import validate_submission
        from repro.world.spec_validation import SpecValidationError

        payload = {
            "suite": {"scenarios": [s.to_dict() for s in suite.scenarios]},
            "preset": "smoke",
            "systems": ["mls-v1"],
        }
        with pytest.raises(SpecValidationError, match="exactly one"):
            validate_submission(payload)


class TestCli:
    def test_sweep_cli_writes_curves_and_report(self, tmp_path, stub_execute, capsys):
        out = tmp_path / "sweep"
        code = faults_main(
            [
                "sweep", "--preset", "smoke", "--count", "2", "--seed", "7",
                "--repetitions", "1", "--faults", "smoke", "--systems", "mls-v1",
                "--severities", "0,1", "--out", str(out),
            ]
        )
        assert code == 0
        assert (out / "curves" / "coverage.jsonl").is_file()
        assert (out / "curves" / "failure-modes.jsonl").is_file()
        assert "## Coverage vs severity" in capsys.readouterr().out

    def test_bisect_cli_writes_results(self, tmp_path, stub_execute, capsys):
        out = tmp_path / "bisect"
        code = faults_main(
            [
                "bisect", "--preset", "smoke", "--count", "2", "--seed", "7",
                "--repetitions", "1", "--faults", "smoke", "--systems", "mls-v1",
                "--resolution", "0.25", "--out", str(out),
            ]
        )
        assert code == 0
        header, rows = read_bisection(out / "bisect.jsonl")
        assert header["cells"] == len(rows) == 6  # 3 smoke specs x 2 scenarios
        assert "## Critical severity per cell" in capsys.readouterr().out

    def test_cli_rejects_bad_severities(self, tmp_path, capsys):
        code = faults_main(
            [
                "sweep", "--preset", "smoke", "--count", "1", "--seed", "7",
                "--faults", "smoke", "--systems", "mls-v1",
                "--severities", "0,2", "--out", str(tmp_path / "x"),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_list_shows_severity_and_schedule_columns(self, capsys):
        assert faults_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Severities" in out
        assert "Schedule" in out

    def test_describe_ladder_expands_the_sweep_grid(self, capsys):
        assert faults_main(["describe", "--faults", "vehicle", "--ladder", "3"]) == 0
        out = capsys.readouterr().out
        assert "severity ladder (3 points): 0, 0.5, 1" in out
        # Each vehicle spec appears once per rung in the expanded grid.
        assert out.count("vehicle-ekf-reset") >= 3


class TestCoverageGate:
    def persist_records(self, tmp_path, stub_execute, suite):
        # Severity 0.5 sits between the planted thresholds (0.35, 0.65), so
        # one scenario escapes and the other absorbs: coverage 1/2.
        campaign = campaign_module.Campaign(mls_v1())
        campaign.suite(suite).faults(replace(SPECS[0], severity=0.5))
        campaign.repetitions(1)
        campaign.out(tmp_path / "results")
        campaign.run()
        return tmp_path / "results"

    def test_gate_passes_and_fails_on_wilson_lower_bound(
        self, tmp_path, stub_execute, suite, capsys
    ):
        results = self.persist_records(tmp_path, stub_execute, suite)
        code = faults_main(["coverage", str(results), "--gate",
                            "--min-coverage", "0.001"])
        out = capsys.readouterr().out
        assert code == 0
        assert "coverage gate passed" in out

        code = faults_main(["coverage", str(results), "--gate",
                            "--min-coverage", "0.99"])
        out = capsys.readouterr().out
        assert code == 1
        assert "coverage gate FAILED" in out

    def test_gate_requires_min_coverage(self, tmp_path, stub_execute, suite, capsys):
        results = self.persist_records(tmp_path, stub_execute, suite)
        assert faults_main(["coverage", str(results), "--gate"]) == 2
        assert "requires --min-coverage" in capsys.readouterr().err

    def test_gate_bound_is_stricter_than_observed(self, tmp_path, stub_execute, suite):
        """The Wilson bound fails a bar the raw proportion would pass."""
        results = self.persist_records(tmp_path, stub_execute, suite)
        from repro.analysis.io import iter_records
        from repro.faults.coverage import accumulate_coverage

        report = accumulate_coverage(iter_records([results]))
        observed = report.overall_coverage
        assert observed == observed  # some data activated
        assert faults_main(
            ["coverage", str(results), "--gate", "--min-coverage", str(observed)]
        ) == 1


class TestSeverityBandFactor:
    def test_records_slice_by_severity_band(self, tmp_path, stub_execute, suite):
        from repro.analysis.slicing import FACTORS, severity_band

        assert "fault-severity-band" in FACTORS
        assert severity_band(0.1) == "mild (<0.25)"
        assert severity_band(0.5) == "severe (0.5-0.75)"
        assert severity_band(0.9) == "extreme (>=0.75)"

        backend = make_backend(tmp_path, suite)
        outcomes = backend.evaluate(sweep_probes(suite, SPECS[:1], (0.1, 0.9)))
        from repro.analysis.slicing import RecordContext, slice_contexts

        contexts = [
            RecordContext(record=record)
            for outcome in outcomes
            for record in outcome.records
        ]
        slices = slice_contexts(contexts, "fault-severity-band")
        assert set(slices) == {"mild (<0.25)", "extreme (>=0.75)"}
