"""Tests for the analysis statistics layer: Wilson intervals, bootstrap CIs,
two-proportion tests, streaming summaries, slicing and campaign diffing."""

import math

import pytest

from repro.analysis.compare import compare_summaries, compare_to_paper
from repro.analysis.io import RecordContext
from repro.analysis.slicing import (
    UNJOINED,
    ScenarioIndex,
    lighting_band,
    obstacle_band,
    slice_contexts,
    wind_band,
)
from repro.analysis.stats import (
    MetricSamples,
    RateEstimate,
    SystemSummary,
    bootstrap_diff_ci,
    bootstrap_mean_ci,
    metric_seed,
    summarize_records,
    two_proportion_test,
    wilson_interval,
)
from repro.core.metrics import (
    RECORD_FACTORS,
    CampaignResult,
    DetectionStats,
    ResourceStats,
    RunOutcome,
    RunRecord,
)
from repro.hil.monitor import ResourceMonitor, UtilisationSample
from repro.world.scenario_gen import generate_suite


def make_record(
    scenario_id="s000",
    name="MLS-V1",
    outcome=RunOutcome.SUCCESS,
    landing_error=0.3,
    adverse=False,
    mission_time=40.0,
    frames_visible=10,
    frames_detected=9,
):
    return RunRecord(
        scenario_id=scenario_id,
        system_name=name,
        outcome=outcome,
        landing_error=landing_error,
        landed=outcome is RunOutcome.SUCCESS,
        mission_time=mission_time,
        adverse_weather=adverse,
        detection=DetectionStats(
            frames_with_visible_marker=frames_visible,
            frames_detected=frames_detected,
            deviation_samples=[0.1, 0.2],
        ),
    )


class TestWilson:
    def test_known_value(self):
        # Classic check: 5/10 at 95% gives roughly [0.2366, 0.7634].
        low, high = wilson_interval(5, 10)
        assert low == pytest.approx(0.2366, abs=1e-3)
        assert high == pytest.approx(0.7634, abs=1e-3)

    def test_extremes_stay_in_unit_interval(self):
        assert wilson_interval(0, 20)[0] == 0.0
        assert wilson_interval(20, 20)[1] == 1.0
        low, high = wilson_interval(0, 20)
        assert 0.0 < high < 0.25  # never collapses to a zero-width interval

    def test_empty_counts_give_trivial_interval(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_data(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            wilson_interval(3, 2)


class TestBootstrap:
    def test_deterministic_for_seed(self):
        samples = [0.1, 0.5, 0.9, 0.2, 0.7, 0.4]
        assert bootstrap_mean_ci(samples, seed=7) == bootstrap_mean_ci(samples, seed=7)
        assert bootstrap_mean_ci(samples, seed=7) != bootstrap_mean_ci(samples, seed=8)

    def test_brackets_the_mean(self):
        samples = list(range(100))
        low, high = bootstrap_mean_ci(samples, seed=0)
        assert low < 49.5 < high

    def test_degenerate_sizes(self):
        assert all(math.isnan(v) for v in bootstrap_mean_ci([], seed=0))
        assert bootstrap_mean_ci([2.5], seed=0) == (2.5, 2.5)

    def test_diff_ci_detects_shift(self):
        baseline = [1.0 + 0.01 * i for i in range(50)]
        shifted = [value + 1.0 for value in baseline]
        low, high = bootstrap_diff_ci(baseline, shifted, seed=3)
        assert low > 0.5 and high < 1.5

    def test_metric_seed_is_stable_and_distinct(self):
        assert metric_seed(0, "a", "b") == metric_seed(0, "a", "b")
        assert metric_seed(0, "a", "b") != metric_seed(0, "a", "c")
        assert metric_seed(0, "a", "b") != metric_seed(1, "a", "b")


class TestTwoProportion:
    def test_significant_difference(self):
        result = two_proportion_test(80, 100, 50, 100)
        assert result.p_value < 0.001
        assert result.significant(0.05)

    def test_no_difference(self):
        result = two_proportion_test(50, 100, 50, 100)
        assert result.z == 0.0
        assert result.p_value == pytest.approx(1.0)

    def test_degenerate_inputs_are_null(self):
        assert two_proportion_test(0, 0, 5, 10).p_value == 1.0
        assert two_proportion_test(10, 10, 10, 10).p_value == 1.0


class TestSystemSummary:
    def test_streaming_counts_match_campaign_result(self):
        records = [
            make_record("s0", outcome=RunOutcome.SUCCESS),
            make_record("s1", outcome=RunOutcome.COLLISION, adverse=True),
            make_record("s2", outcome=RunOutcome.POOR_LANDING),
            make_record("s3", outcome=RunOutcome.SUCCESS),
        ]
        summaries = summarize_records(iter(records))
        summary = summaries["MLS-V1"]
        campaign = CampaignResult(system_name="MLS-V1", records=records)
        assert summary.runs == len(campaign)
        assert summary.rates()["success"].rate == pytest.approx(campaign.success_rate)
        assert summary.rates()["collision"].rate == pytest.approx(
            campaign.collision_failure_rate
        )
        assert summary.rates()["detection-fn"].rate == pytest.approx(
            campaign.false_negative_rate
        )
        assert summary.landing_errors.mean == pytest.approx(campaign.mean_landing_error)

    def test_nan_landing_error_excluded(self):
        summary = SystemSummary("MLS-V1")
        summary.add(make_record("s0", landing_error=float("nan")))
        assert len(summary.landing_errors) == 0

    def test_wrong_system_rejected(self):
        summary = SystemSummary("MLS-V3")
        with pytest.raises(ValueError):
            summary.add(make_record(name="MLS-V1"))

    def test_metrics_deterministic(self):
        summary = SystemSummary("MLS-V1")
        for index in range(8):
            summary.add(make_record(f"s{index}", landing_error=0.1 * index))
        first = summary.metrics(seed=5)
        second = summary.metrics(seed=5)
        assert first == second

    def test_merge(self):
        left, right = SystemSummary("MLS-V1"), SystemSummary("MLS-V1")
        left.add(make_record("s0"))
        right.add(make_record("s1", outcome=RunOutcome.COLLISION))
        left.merge(right)
        assert left.runs == 2
        assert left.outcome_counts[RunOutcome.COLLISION] == 1


class TestMetricSamples:
    def test_ignores_non_finite(self):
        samples = MetricSamples("m")
        samples.extend([1.0, float("nan"), float("inf"), 2.0])
        assert samples.values == [1.0, 2.0]


class TestFilterAndFactors:
    def test_filter_predicate(self):
        campaign = CampaignResult(system_name="MLS-V1")
        campaign.add(make_record("s0", outcome=RunOutcome.SUCCESS))
        campaign.add(make_record("s1", outcome=RunOutcome.COLLISION))
        succeeded = campaign.filter(lambda record: record.succeeded)
        assert len(succeeded) == 1
        assert succeeded.system_name == "MLS-V1"

    def test_subset_is_filter_wrapper(self):
        campaign = CampaignResult(system_name="MLS-V1")
        campaign.add(make_record("s0", adverse=True))
        campaign.add(make_record("s1", adverse=False))
        assert len(campaign.subset(adverse=True)) == 1
        assert len(campaign.filter(lambda r: r.adverse_weather)) == 1

    def test_record_factors(self):
        record = make_record(adverse=True)
        assert RECORD_FACTORS["system"](record) == ("MLS-V1",)
        assert RECORD_FACTORS["weather"](record) == ("adverse",)
        assert RECORD_FACTORS["outcome"](record) == ("success",)


class TestSlicing:
    def test_bands(self):
        assert wind_band(0.0).startswith("calm")
        assert wind_band(5.0).startswith("moderate")
        assert wind_band(9.0).startswith("strong")
        assert lighting_band(1.0).startswith("day")
        assert lighting_band(0.3).startswith("night")
        assert obstacle_band(2.0).startswith("dense")

    def test_scenario_join_and_stress_axis_slices(self):
        suite = generate_suite("stress", count=6, seed=11)
        index = ScenarioIndex.from_sources([suite])
        contexts = [
            RecordContext(record=make_record(scenario.scenario_id))
            for scenario in suite
        ]
        slices = slice_contexts(contexts, "stress-axis", index)
        assert slices  # the stress preset engages at least one axis
        assert UNJOINED not in slices
        total = sum(s.runs for systems in slices.values() for s in systems.values())
        assert total >= len(suite)  # multi-label: records fan out to axes

    def test_fingerprint_mismatch_unjoins(self):
        suite = generate_suite("smoke", count=2, seed=1)
        index = ScenarioIndex.from_sources([suite])
        record = make_record(suite.scenarios[0].scenario_id)
        record.scenario_fingerprint = "deadbeefdeadbeef"
        slices = slice_contexts([RecordContext(record=record)], "wind-band", index)
        assert list(slices) == [UNJOINED]
        assert index.mismatches == 1

    def test_record_level_factor_needs_no_join(self):
        contexts = [RecordContext(record=make_record("s0", adverse=True))]
        slices = slice_contexts(contexts, "weather")
        assert list(slices) == ["adverse"]

    def test_platform_factor_uses_context(self):
        contexts = [
            RecordContext(record=make_record("s0"), platform="jetson-nano"),
            RecordContext(record=make_record("s1")),
        ]
        slices = slice_contexts(contexts, "platform")
        assert set(slices) == {"jetson-nano", "(unknown)"}


class TestCompare:
    def _summaries(self, successes, total, name="MLS-V1", landing_error=0.3):
        summary = SystemSummary(name)
        for index in range(total):
            outcome = RunOutcome.SUCCESS if index < successes else RunOutcome.COLLISION
            summary.add(
                make_record(f"s{index:03d}", name=name, outcome=outcome,
                            landing_error=landing_error)
            )
        return {name: summary}

    def test_injected_regression_is_flagged(self):
        comparison = compare_summaries(
            self._summaries(80, 100), self._summaries(55, 100), seed=0
        )
        regressed = {(d.system, d.metric) for d in comparison.regressions}
        assert ("MLS-V1", "success") in regressed
        assert ("MLS-V1", "collision") in regressed
        assert comparison.has_regression

    def test_improvement_is_not_a_regression(self):
        comparison = compare_summaries(
            self._summaries(55, 100), self._summaries(80, 100), seed=0
        )
        assert not comparison.has_regression
        success = next(d for d in comparison.rates if d.metric == "success")
        assert success.significant and not success.regression
        assert success.verdict == "improvement"

    def test_identical_campaigns_pass(self):
        comparison = compare_summaries(
            self._summaries(60, 100), self._summaries(60, 100), seed=0
        )
        assert not comparison.has_regression

    def test_small_noise_is_not_significant(self):
        comparison = compare_summaries(
            self._summaries(60, 100), self._summaries(58, 100), seed=0
        )
        assert not comparison.has_regression

    def test_landing_error_regression(self):
        comparison = compare_summaries(
            self._summaries(50, 50, landing_error=0.2),
            self._summaries(50, 50, landing_error=0.6),
            seed=0,
        )
        regressed = {(d.system, d.metric) for d in comparison.regressions}
        assert ("MLS-V1", "landing-error-m") in regressed

    def test_disjoint_systems_reported_not_compared(self):
        comparison = compare_summaries(
            self._summaries(10, 20, name="MLS-V1"),
            self._summaries(10, 20, name="MLS-V2"),
        )
        assert comparison.baseline_only == ("MLS-V1",)
        assert comparison.current_only == ("MLS-V2",)
        assert not comparison.rates

    def test_compare_to_paper(self):
        deltas = compare_to_paper(self._summaries(80, 100))
        metrics = {delta.metric for delta in deltas}
        assert metrics == {"success", "collision", "poor-landing"}
        success = next(d for d in deltas if d.metric == "success")
        assert success.paper_rate == pytest.approx(0.2467)
        assert not success.paper_in_interval  # 80% CI excludes 24.67%


class TestResourceStatsDelegation:
    def test_monitor_delegates_to_resource_stats(self):
        monitor = ResourceMonitor()
        for index, cpu in enumerate([0.5, 0.9, 0.7]):
            monitor.record(
                UtilisationSample(
                    timestamp=float(index),
                    cpu_utilisation=cpu,
                    memory_mb=1000.0 + 100.0 * index,
                    gpu_utilisation=0.2 * index,
                )
            )
        stats = monitor.to_stats()
        assert isinstance(stats, ResourceStats)
        assert monitor.mean_cpu == pytest.approx(stats.mean_cpu)
        assert monitor.peak_cpu == pytest.approx(0.9) == pytest.approx(stats.peak_cpu)
        assert monitor.peak_memory_mb == pytest.approx(1200.0)
        summary = monitor.summary()
        assert summary["mean_cpu_utilisation"] == pytest.approx(0.7)
        assert summary["samples"] == 3.0

    def test_empty_monitor(self):
        monitor = ResourceMonitor()
        assert monitor.mean_cpu == 0.0
        assert monitor.peak_cpu == 0.0
        assert monitor.to_stats().peak_cpu == 0.0


class TestRateEstimate:
    def test_contains(self):
        estimate = RateEstimate.from_counts(50, 100)
        assert estimate.contains(0.5)
        assert not estimate.contains(0.9)
