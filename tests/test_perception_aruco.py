"""Tests for the ArUco dictionary and basic image operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perception import image_ops
from repro.perception.aruco import ArucoDictionary, default_dictionary


class TestDictionary:
    def test_default_dictionary_size(self):
        dictionary = default_dictionary()
        assert len(dictionary.codes) == dictionary.size == 50

    def test_codes_are_deterministic(self):
        a = ArucoDictionary(size=10, seed=1)
        b = ArucoDictionary(size=10, seed=1)
        for marker_id in range(10):
            assert np.array_equal(a.bit_grid(marker_id), b.bit_grid(marker_id))

    def test_minimum_hamming_distance_enforced(self):
        dictionary = ArucoDictionary(size=20, min_distance=4, seed=2)
        ids = list(dictionary.codes)
        for i in ids:
            for j in ids:
                if i >= j:
                    continue
                for rotation in range(4):
                    rotated = np.rot90(dictionary.bit_grid(j), rotation)
                    distance = int(np.sum(dictionary.bit_grid(i) != rotated))
                    assert distance >= 4

    def test_bordered_grid_has_black_border(self):
        grid = default_dictionary().bordered_grid(5)
        assert grid.shape == (6, 6)
        assert not grid[0, :].any() and not grid[-1, :].any()
        assert not grid[:, 0].any() and not grid[:, -1].any()

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            default_dictionary().bit_grid(999)

    def test_identify_exact_and_rotated(self):
        dictionary = default_dictionary()
        code = dictionary.bit_grid(7)
        assert dictionary.identify(code)[0] == 7
        assert dictionary.identify(np.rot90(code, 1), max_errors=0)[0] == 7

    def test_identify_with_one_bit_error(self):
        dictionary = default_dictionary()
        corrupted = dictionary.bit_grid(7).copy()
        corrupted[0, 0] = ~corrupted[0, 0]
        assert dictionary.identify(corrupted, max_errors=1)[0] == 7

    def test_identify_garbage_returns_none(self):
        dictionary = default_dictionary()
        nothing = dictionary.identify(np.zeros((4, 4), dtype=bool), max_errors=0)
        # All-black inner grid is not a valid codeword in this dictionary.
        assert nothing is None or nothing[0] in dictionary.codes

    def test_identify_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            default_dictionary().identify(np.zeros((3, 3), dtype=bool))

    def test_render_scales_with_pixels_per_cell(self):
        image = default_dictionary().render(3, pixels_per_cell=4)
        assert image.shape == (24, 24)
        assert set(np.unique(image)).issubset({0.0, 1.0})

    def test_sample_at_outside_is_black(self):
        dictionary = default_dictionary()
        values = dictionary.sample_at(3, np.array([-0.1, 1.1]), np.array([0.5, 0.5]))
        assert values.tolist() == [0.0, 0.0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ArucoDictionary(bits=2)
        with pytest.raises(ValueError):
            ArucoDictionary(size=0)


class TestImageOps:
    def test_box_filter_preserves_constant_images(self):
        image = np.full((20, 20), 0.7)
        np.testing.assert_allclose(image_ops.box_filter(image, 3), image, atol=1e-9)

    def test_adaptive_threshold_finds_dark_square(self):
        image = np.full((40, 40), 0.8)
        image[10:20, 10:20] = 0.1
        mask = image_ops.adaptive_threshold(image, radius=6, offset=0.05)
        assert mask[15, 15]
        assert not mask[2, 2]

    def test_connected_components_separates_blobs(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[2:8, 2:8] = True
        mask[20:28, 20:28] = True
        components = image_ops.connected_components(mask, min_size=4)
        assert len(components) == 2
        assert components[0].sum() >= components[1].sum()

    def test_connected_components_min_size_filter(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True
        assert image_ops.connected_components(mask, min_size=2) == []

    def test_component_geometry(self):
        mask = np.zeros((20, 20), dtype=bool)
        mask[5:10, 5:15] = True
        geometry = image_ops.component_geometry(mask)
        assert geometry.pixel_count == 50
        assert geometry.centroid[0] == pytest.approx(7.0)
        assert geometry.aspect_ratio == pytest.approx(2.0)
        assert geometry.fill_ratio == pytest.approx(1.0)

    def test_estimate_quad_corners_of_square(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[5:15, 5:15] = True
        corners = image_ops.estimate_quad_corners(mask)
        assert corners is not None
        assert corners.shape == (4, 2)

    def test_estimate_quad_corners_degenerate_returns_none(self):
        mask = np.zeros((30, 30), dtype=bool)
        mask[5, 5:9] = True
        assert image_ops.estimate_quad_corners(mask) is None

    def test_sample_quad_grid_reads_pattern(self):
        image = np.zeros((32, 32))
        image[8:16, 8:16] = 1.0
        corners = np.array([[8, 8], [8, 15], [15, 15], [15, 8]], dtype=float)
        grid = image_ops.sample_quad_grid(image, corners, 4)
        assert grid.mean() > 0.9

    def test_otsu_separates_bimodal(self):
        values = np.concatenate([np.full(50, 0.1), np.full(50, 0.9)])
        threshold = image_ops.otsu_threshold(values)
        # Any threshold that puts the two modes on opposite sides is correct.
        assert 0.1 < threshold < 0.9

    def test_crop_patch_pads_at_border(self):
        image = np.ones((10, 10))
        patch = image_ops.crop_patch(image, (0, 0), 8)
        assert patch.shape == (8, 8)
        assert patch[0, 0] == 0.0  # padded corner

    def test_resize_patch(self):
        patch = np.arange(16, dtype=float).reshape(4, 4)
        resized = image_ops.resize_patch(patch, 8)
        assert resized.shape == (8, 8)

    @given(st.integers(min_value=0, max_value=49))
    @settings(max_examples=15, deadline=None)
    def test_rendered_markers_decode_to_their_id(self, marker_id):
        dictionary = default_dictionary()
        image = dictionary.render(marker_id, pixels_per_cell=6)
        cells = dictionary.bits + 2
        h = image.shape[0]
        corners = np.array([[0, 0], [0, h - 1], [h - 1, h - 1], [h - 1, 0]], dtype=float)
        grid = image_ops.sample_quad_grid(image, corners, cells)
        bits = grid > 0.5
        match = dictionary.identify(bits[1:-1, 1:-1], max_errors=1)
        assert match is not None and match[0] == marker_id
