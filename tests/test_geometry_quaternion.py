"""Unit and property tests for repro.geometry.quaternion and pose."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import Pose, Quaternion, Vec3

angles = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


class TestQuaternionBasics:
    def test_identity_rotation_is_noop(self):
        v = Vec3(1, 2, 3)
        assert Quaternion.identity().rotate(v).is_close(v)

    def test_yaw_rotation_rotates_x_to_y(self):
        q = Quaternion.from_yaw(math.pi / 2)
        rotated = q.rotate(Vec3.unit_x())
        assert rotated.is_close(Vec3.unit_y(), tol=1e-9)

    def test_from_axis_angle_matches_from_yaw(self):
        a = Quaternion.from_axis_angle(Vec3.unit_z(), 0.7)
        b = Quaternion.from_yaw(0.7)
        assert a.angle_to(b) == pytest.approx(0.0, abs=1e-9)

    def test_rotate_inverse_undoes_rotate(self):
        q = Quaternion.from_euler(0.2, -0.3, 1.1)
        v = Vec3(1, -2, 0.5)
        assert q.rotate_inverse(q.rotate(v)).is_close(v, tol=1e-9)

    def test_euler_roundtrip(self):
        roll, pitch, yaw = 0.1, -0.25, 2.0
        q = Quaternion.from_euler(roll, pitch, yaw)
        r, p, y = q.to_euler()
        assert r == pytest.approx(roll, abs=1e-9)
        assert p == pytest.approx(pitch, abs=1e-9)
        assert y == pytest.approx(yaw, abs=1e-9)

    def test_rotation_matrix_matches_rotate(self):
        q = Quaternion.from_euler(0.3, 0.2, -0.8)
        v = Vec3(0.5, -1.0, 2.0)
        matrix_result = q.rotation_matrix() @ v.to_array()
        np.testing.assert_allclose(matrix_result, q.rotate(v).to_array(), atol=1e-9)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Quaternion(0, 0, 0, 0).normalized()

    def test_slerp_endpoints(self):
        a = Quaternion.from_yaw(0.0)
        b = Quaternion.from_yaw(1.0)
        assert a.slerp(b, 0.0).angle_to(a) == pytest.approx(0.0, abs=1e-6)
        assert a.slerp(b, 1.0).angle_to(b) == pytest.approx(0.0, abs=1e-6)

    def test_slerp_halfway_yaw(self):
        a = Quaternion.from_yaw(0.0)
        b = Quaternion.from_yaw(1.0)
        assert a.slerp(b, 0.5).yaw == pytest.approx(0.5, abs=1e-6)


class TestQuaternionProperties:
    @given(angles, angles, angles)
    def test_from_euler_is_unit(self, roll, pitch, yaw):
        assert Quaternion.from_euler(roll, pitch, yaw).norm() == pytest.approx(1.0, abs=1e-9)

    @given(angles, angles, angles)
    def test_rotation_preserves_norm(self, roll, pitch, yaw):
        q = Quaternion.from_euler(roll, pitch, yaw)
        v = Vec3(1.0, -2.0, 0.5)
        assert q.rotate(v).norm() == pytest.approx(v.norm(), rel=1e-9)

    @given(angles)
    def test_composition_of_yaws_adds_angles(self, yaw):
        a = Quaternion.from_yaw(yaw / 2)
        composed = a * a
        assert composed.angle_to(Quaternion.from_yaw(yaw)) == pytest.approx(0.0, abs=1e-6)


class TestPose:
    def test_identity_pose_transform_is_noop(self):
        p = Pose.identity()
        assert p.transform_point(Vec3(1, 2, 3)) == Vec3(1, 2, 3)

    def test_transform_and_inverse_roundtrip(self):
        pose = Pose(Vec3(10, -5, 2), Quaternion.from_yaw(0.6))
        point = Vec3(1, 2, 3)
        assert pose.inverse_transform_point(pose.transform_point(point)).is_close(point, tol=1e-9)

    def test_translation_only(self):
        pose = Pose.at(Vec3(5, 5, 5))
        assert pose.transform_point(Vec3(1, 0, 0)) == Vec3(6, 5, 5)

    def test_compose_applies_child_in_parent_frame(self):
        parent = Pose.at(Vec3(1, 0, 0), yaw=math.pi / 2)
        child = Pose.at(Vec3(1, 0, 0))
        composed = parent.compose(child)
        assert composed.position.is_close(Vec3(1, 1, 0), tol=1e-9)

    def test_with_yaw_and_with_position(self):
        pose = Pose.at(Vec3(1, 2, 3), yaw=0.5)
        assert pose.with_yaw(1.0).yaw == pytest.approx(1.0)
        assert pose.with_position(Vec3.zero()).position == Vec3.zero()

    def test_distance_between_poses(self):
        a = Pose.at(Vec3(0, 0, 0))
        b = Pose.at(Vec3(3, 4, 0))
        assert a.distance_to(b) == pytest.approx(5.0)
