"""Tests for obstacles, markers and weather."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import Vec3
from repro.world.markers import Marker
from repro.world.obstacles import ObstacleKind, building, pole, tree, wall, water
from repro.world.weather import Weather, WeatherCondition


class TestObstacleFactories:
    def test_building_rests_on_ground(self):
        b = building(10, 20, 8, 6, 15)
        assert b.kind is ObstacleKind.BUILDING
        assert b.bounds.minimum.z == 0.0
        assert b.height == 15.0
        assert b.contains(Vec3(10, 20, 7))

    def test_tree_has_trunk_and_late_visibility_canopy(self):
        parts = tree(0, 0, canopy_radius=3, height=10)
        assert len(parts) == 2
        trunk, canopy = parts
        assert trunk.late_visibility_range is None
        assert canopy.late_visibility_range is not None
        assert canopy.bounds.minimum.z == pytest.approx(4.0)

    def test_canopy_visibility_depends_on_distance(self):
        _, canopy = tree(0, 0, canopy_radius=3, height=10, canopy_visibility_range=5.0)
        assert not canopy.visible_from(Vec3(30, 0, 8))
        assert canopy.visible_from(Vec3(4, 0, 8))

    def test_pole_is_thin(self):
        p = pole(5, 5, 8)
        assert p.bounds.size.x < 1.0 and p.bounds.size.y < 1.0

    def test_wall_orientation_and_thickness(self):
        w = wall(0, 0, 10, 0, height=3, thickness=0.5)
        assert w.bounds.size.x == pytest.approx(10.0)
        assert w.bounds.size.y == pytest.approx(0.5)

    def test_water_is_not_collision_hazard(self):
        lake = water(0, 0, 10, 10)
        assert not lake.is_collision_hazard
        assert building(0, 0, 5, 5, 5).is_collision_hazard


class TestMarker:
    def test_corner_count_and_size(self):
        marker = Marker(marker_id=7, position=Vec3(1, 2, 0), size=1.0)
        corners = marker.corners
        assert len(corners) == 4
        assert corners[0].distance_to(corners[1]) == pytest.approx(1.0)

    def test_rotation_preserves_distance_from_center(self):
        marker = Marker(marker_id=7, position=Vec3.zero(), size=2.0, yaw=0.7)
        for corner in marker.corners:
            assert corner.horizontal_norm() == pytest.approx(math.sqrt(2.0))

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Marker(marker_id=1, position=Vec3.zero(), size=0.0)

    def test_invalid_occlusion_rejected(self):
        with pytest.raises(ValueError):
            Marker(marker_id=1, position=Vec3.zero(), occlusion=1.0)

    def test_horizontal_distance(self):
        marker = Marker(marker_id=1, position=Vec3(3, 4, 0))
        assert marker.horizontal_distance_to(Vec3(0, 0, 10)) == pytest.approx(5.0)


class TestWeather:
    def test_clear_preset_has_no_adverse_effects(self):
        clear = Weather.clear()
        assert not clear.is_adverse
        assert clear.wind_speed == 0.0
        assert clear.gps_degradation == 0.0

    @pytest.mark.parametrize("condition", [c for c in WeatherCondition if c.is_adverse])
    def test_adverse_presets_have_some_effect(self, condition):
        weather = Weather.preset(condition, severity=1.0)
        assert weather.is_adverse
        degraded = (
            weather.visibility < 1.0
            or weather.glare > 0
            or weather.wind_speed > 0
            or weather.gps_degradation > 0
        )
        assert degraded

    def test_severity_scales_fog_visibility(self):
        mild = Weather.preset(WeatherCondition.FOG, 0.2)
        dense = Weather.preset(WeatherCondition.FOG, 1.0)
        assert dense.visibility < mild.visibility

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Weather.preset(WeatherCondition.FOG, 1.5)

    def test_invalid_visibility_rejected(self):
        with pytest.raises(ValueError):
            Weather(visibility=0.0)

    def test_sampling_respects_class(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert Weather.sample_adverse(rng).is_adverse
            assert not Weather.sample_normal(rng).is_adverse

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_storm_wind_grows_with_severity(self, severity):
        assert Weather.preset(WeatherCondition.STORM, severity).wind_speed >= 4.0 - 1e-9
