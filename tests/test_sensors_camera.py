"""Tests for the synthetic downward camera."""


import numpy as np
import pytest

from repro.geometry import AABB, Pose, Vec3
from repro.sensors.camera import CameraIntrinsics, DownwardCamera
from repro.world.markers import Marker
from repro.world.obstacles import building
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World


def make_world(weather=None, markers=None, obstacles=None):
    return World(
        name="cam-test",
        bounds=AABB(Vec3(-60, -60, 0), Vec3(60, 60, 40)),
        obstacles=obstacles or [],
        markers=markers if markers is not None else [Marker(marker_id=7, position=Vec3.zero(), size=1.0, is_target=True)],
        weather=weather or Weather.clear(),
    )


class TestIntrinsics:
    def test_focal_length_from_fov(self):
        intr = CameraIntrinsics(width=128, height=128, fov_degrees=90.0)
        assert intr.focal_length == pytest.approx(64.0, rel=1e-6)

    def test_footprint_grows_with_altitude(self):
        intr = CameraIntrinsics()
        assert intr.ground_footprint_width(20) > intr.ground_footprint_width(10)

    def test_pixels_per_meter_decreases_with_altitude(self):
        intr = CameraIntrinsics()
        assert intr.pixels_per_meter(5) > intr.pixels_per_meter(15)


class TestRendering:
    def test_image_shape_and_range(self):
        frame = DownwardCamera().capture(make_world(), Pose.at(Vec3(0, 0, 10)))
        intr = CameraIntrinsics()
        assert frame.image.shape == (intr.height, intr.width)
        assert float(frame.image.min()) >= 0.0
        assert float(frame.image.max()) <= 1.0

    def test_marker_visible_directly_below(self):
        frame = DownwardCamera().capture(make_world(), Pose.at(Vec3(0, 0, 8)))
        assert any(m.marker_id == 7 for m in frame.visible_markers)
        # The marker introduces strong dark/bright structure near the centre.
        center = frame.image[54:74, 54:74]
        assert float(center.max() - center.min()) > 0.5

    def test_marker_not_visible_when_far_away(self):
        frame = DownwardCamera().capture(make_world(), Pose.at(Vec3(50, 50, 8)))
        assert not frame.visible_markers

    def test_fog_reduces_contrast(self):
        clear_frame = DownwardCamera(seed=1).capture(make_world(), Pose.at(Vec3(0, 0, 8)))
        fog = Weather.preset(WeatherCondition.FOG, 1.0)
        fog_frame = DownwardCamera(seed=1).capture(make_world(weather=fog), Pose.at(Vec3(0, 0, 8)))
        assert float(fog_frame.image.std()) < float(clear_frame.image.std())

    def test_glare_brightens_image(self):
        glare = Weather.preset(WeatherCondition.SUN_GLARE, 1.0)
        glare_frame = DownwardCamera(seed=2).capture(make_world(weather=glare), Pose.at(Vec3(0, 0, 8)))
        clear_frame = DownwardCamera(seed=2).capture(make_world(), Pose.at(Vec3(0, 0, 8)))
        assert float(glare_frame.image.mean()) > float(clear_frame.image.mean())

    def test_building_occludes_marker(self):
        # A tall building directly over the marker's line of sight from a
        # laterally offset camera: the rooftop should replace ground pixels.
        obstacles = [building(0, 0, 6, 6, 12, name="roof")]
        world = make_world(obstacles=obstacles, markers=[])
        frame = DownwardCamera().capture(world, Pose.at(Vec3(0, 0, 20)))
        center_value = frame.image[64, 64]
        assert center_value == pytest.approx(0.3, abs=0.15)

    def test_occluded_marker_band_rendered_gray(self):
        markers = [Marker(marker_id=7, position=Vec3.zero(), size=1.0, occlusion=0.45, is_target=True)]
        frame = DownwardCamera(seed=3).capture(make_world(markers=markers), Pose.at(Vec3(0, 0, 6)))
        assert any(m.occlusion > 0 for m in frame.visible_markers)


class TestProjection:
    def test_pixel_to_ground_center_is_below_camera(self):
        frame = DownwardCamera().capture(make_world(), Pose.at(Vec3(3, -2, 10)))
        intr = frame.intrinsics
        ground = frame.pixel_to_ground(intr.cy, intr.cx)
        assert ground.horizontal_distance_to(Vec3(3, -2, 0)) < 0.2

    def test_ground_to_pixel_round_trip(self):
        frame = DownwardCamera().capture(make_world(), Pose.at(Vec3(0, 0, 10)))
        point = Vec3(1.5, -2.0, 0.0)
        pixel = frame.ground_to_pixel(point)
        assert pixel is not None
        recovered = frame.pixel_to_ground(*pixel)
        assert recovered.horizontal_distance_to(point) < 0.2

    def test_estimated_pose_shifts_backprojection(self):
        true_pose = Pose.at(Vec3(0, 0, 10))
        shifted = Pose.at(Vec3(2, 0, 10))
        frame = DownwardCamera().capture(make_world(), true_pose, estimated_pose=shifted)
        intr = frame.intrinsics
        ground = frame.pixel_to_ground(intr.cy, intr.cx)
        assert ground.horizontal_distance_to(Vec3(2, 0, 0)) < 0.2
