"""Unit and property tests for repro.geometry.vec."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import Vec3

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
vectors = st.builds(Vec3, finite, finite, finite)


class TestConstruction:
    def test_zero(self):
        assert Vec3.zero() == Vec3(0.0, 0.0, 0.0)

    def test_unit_axes_are_orthonormal(self):
        assert Vec3.unit_x().dot(Vec3.unit_y()) == 0.0
        assert Vec3.unit_x().cross(Vec3.unit_y()) == Vec3.unit_z()
        assert Vec3.unit_z().norm() == 1.0

    def test_from_array_roundtrip(self):
        v = Vec3.from_array([1.5, -2.0, 3.25])
        assert v.to_tuple() == (1.5, -2.0, 3.25)
        np.testing.assert_allclose(v.to_array(), [1.5, -2.0, 3.25])

    def test_from_array_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            Vec3.from_array([1.0, 2.0])

    def test_iteration_order(self):
        assert list(Vec3(1, 2, 3)) == [1, 2, 3]


class TestArithmetic:
    def test_add_sub(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_multiplication_commutes(self):
        assert 2.0 * Vec3(1, 2, 3) == Vec3(1, 2, 3) * 2.0 == Vec3(2, 4, 6)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec3(1, 1, 1) / 0.0

    def test_negation(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)


class TestNormsAndProducts:
    def test_norm_of_pythagorean_triple(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)

    def test_norm_sq_avoids_sqrt(self):
        assert Vec3(3, 4, 0).norm_sq() == pytest.approx(25.0)

    def test_horizontal_norm_ignores_z(self):
        assert Vec3(3, 4, 100).horizontal_norm() == pytest.approx(5.0)

    def test_normalized_rejects_zero(self):
        with pytest.raises(ValueError):
            Vec3.zero().normalized()

    def test_cross_is_anticommutative(self):
        a, b = Vec3(1, 2, 3), Vec3(-2, 0.5, 4)
        assert a.cross(b) == -(b.cross(a))

    def test_distance_is_symmetric(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 6, 3)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a)) == pytest.approx(5.0)


class TestHelpers:
    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec3(1, 2, 3)

    def test_clamp_norm_shortens_long_vectors(self):
        clamped = Vec3(10, 0, 0).clamp_norm(3.0)
        assert clamped.norm() == pytest.approx(3.0)

    def test_clamp_norm_keeps_short_vectors(self):
        v = Vec3(1, 1, 0)
        assert v.clamp_norm(5.0) == v

    def test_clamp_norm_rejects_negative(self):
        with pytest.raises(ValueError):
            Vec3(1, 0, 0).clamp_norm(-1.0)

    def test_with_z_replaces_only_z(self):
        assert Vec3(1, 2, 3).with_z(9.0) == Vec3(1, 2, 9)


class TestProperties:
    @given(vectors, vectors)
    def test_addition_commutes(self, a, b):
        assert (a + b).is_close(b + a, tol=1e-6)

    @given(vectors)
    def test_norm_non_negative(self, v):
        assert v.norm() >= 0.0

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(vectors)
    def test_normalized_has_unit_norm(self, v):
        if v.norm() > 1e-6:
            assert v.normalized().norm() == pytest.approx(1.0, abs=1e-9)

    @given(vectors, vectors)
    def test_dot_symmetry(self, a, b):
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-9, abs=1e-6)

    @given(vectors, vectors)
    def test_cross_orthogonal_to_operands(self, a, b):
        c = a.cross(b)
        assert abs(c.dot(a)) <= 1e-3 * max(1.0, a.norm() * b.norm())
        assert abs(c.dot(b)) <= 1e-3 * max(1.0, a.norm() * b.norm())

    @given(vectors, st.floats(min_value=0.0, max_value=100.0))
    def test_clamp_norm_never_exceeds_limit(self, v, limit):
        assert v.clamp_norm(limit).norm() <= limit + 1e-6
