"""End-to-end integration tests: full missions on small, fast scenarios.

These are the slowest tests in the suite (a few tens of seconds total); they
exercise the complete loop — world, sensors, autopilot, perception, mapping,
planning, decision making, metrics — for each system generation.
"""

import pytest

from repro.core.config import mls_v1, mls_v3

pytestmark = pytest.mark.slow
from repro.core.metrics import RunOutcome
from repro.core.mission import MissionConfig, MissionRunner
from repro.core.states import DecisionState
from repro.geometry import Vec3
from repro.hil.jetson import JetsonNanoPlatform
from repro.perception.neural.training import load_pretrained_detector_net
from repro.world.map_generator import MapStyle
from repro.world.scenario import Scenario
from repro.world.weather import Weather


@pytest.fixture(scope="module")
def network():
    return load_pretrained_detector_net()


def easy_scenario(seed=101):
    """A short, clear-weather scenario on an almost empty rural map."""
    return Scenario(
        scenario_id="itest-easy",
        map_style=MapStyle.RURAL,
        map_seed=909,
        weather=Weather.clear(),
        gps_target=Vec3(16, 2, 0),
        marker_position=Vec3(17.5, 0.5, 0),
        decoy_count=1,
        seed=seed,
    )


def fast_mission_config():
    return MissionConfig(max_mission_time=120.0)


@pytest.mark.slow
class TestEndToEnd:
    def test_mls_v3_lands_on_marker_in_clear_weather(self, network):
        runner = MissionRunner(
            easy_scenario(),
            mls_v3(),
            mission_config=fast_mission_config(),
            detector_network=network,
        )
        record = runner.run()
        assert record.outcome is RunOutcome.SUCCESS
        assert record.landed
        assert record.landing_error < 1.0
        assert record.detection.frames_with_visible_marker > 0
        assert runner.system.state in (DecisionState.LANDED, DecisionState.FINAL_DESCENT)

    def test_mls_v1_completes_and_is_scored(self, network):
        record = MissionRunner(
            easy_scenario(seed=103),
            mls_v1(),
            mission_config=fast_mission_config(),
        ).run()
        assert record.outcome in (RunOutcome.SUCCESS, RunOutcome.COLLISION, RunOutcome.POOR_LANDING)
        assert record.mission_time > 0
        assert record.system_name == "MLS-V1"

    def test_hil_platform_records_resources(self, network):
        platform = JetsonNanoPlatform(seed=7)
        record = MissionRunner(
            easy_scenario(seed=105),
            mls_v3(),
            mission_config=fast_mission_config(),
            platform=platform,
            detector_network=network,
        ).run()
        assert record.resources.cpu_utilisation_samples
        assert record.resources.mean_memory_mb > 1500.0
        assert len(platform.monitor) > 0

    def test_runs_are_reproducible(self, network):
        records = []
        for _ in range(2):
            records.append(
                MissionRunner(
                    easy_scenario(seed=107),
                    mls_v3(),
                    mission_config=fast_mission_config(),
                    detector_network=network,
                ).run()
            )
        assert records[0].outcome == records[1].outcome
        assert records[0].mission_time == pytest.approx(records[1].mission_time, abs=1e-6)
