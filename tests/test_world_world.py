"""Tests for the World container: collision queries, ray casting, landing validity."""

import pytest

from repro.geometry import AABB, Vec3
from repro.world.obstacles import building, tree, water
from repro.world.world import World


@pytest.fixture
def simple_world():
    bounds = AABB(Vec3(-50, -50, 0), Vec3(50, 50, 40))
    obstacles = [building(10, 0, 4, 4, 10, name="block")]
    obstacles += tree(0, 10, canopy_radius=3, height=8, name="oak")
    obstacles.append(water(-10, -10, 6, 6, name="pond"))
    return World(name="test", bounds=bounds, obstacles=obstacles)


class TestCollisionQueries:
    def test_point_inside_building_collides(self, simple_world):
        assert simple_world.point_in_collision(Vec3(10, 0, 5))

    def test_point_in_free_space_does_not_collide(self, simple_world):
        assert not simple_world.point_in_collision(Vec3(0, 0, 5))

    def test_below_ground_collides(self, simple_world):
        assert simple_world.point_in_collision(Vec3(0, 0, -0.5))

    def test_water_is_not_flight_collision(self, simple_world):
        assert not simple_world.point_in_collision(Vec3(-10, -10, 0.02))

    def test_margin_expands_collision(self, simple_world):
        just_outside = Vec3(12.2, 0, 5)
        assert not simple_world.point_in_collision(just_outside)
        assert simple_world.point_in_collision(just_outside, margin=0.5)

    def test_colliding_obstacle_returns_name(self, simple_world):
        obstacle = simple_world.colliding_obstacle(Vec3(10, 0, 5))
        assert obstacle is not None and obstacle.name == "block"

    def test_segment_through_building(self, simple_world):
        assert simple_world.segment_in_collision(Vec3(0, 0, 5), Vec3(20, 0, 5))
        assert not simple_world.segment_in_collision(Vec3(0, 0, 20), Vec3(20, 0, 20))

    def test_clearance_decreases_near_obstacles(self, simple_world):
        far = simple_world.clearance(Vec3(-30, 30, 5))
        near = simple_world.clearance(Vec3(8.5, 0, 5))
        assert near < far


class TestRaycast:
    def test_downward_ray_hits_ground(self, simple_world):
        hit = simple_world.raycast(Vec3(0, 0, 10), Vec3(0, 0, -1), max_range=20)
        assert hit == pytest.approx(10.0, abs=1e-6)

    def test_ray_hits_building_before_ground(self, simple_world):
        hit = simple_world.raycast(Vec3(10, 0, 20), Vec3(0, 0, -1), max_range=30)
        assert hit == pytest.approx(10.0, abs=1e-6)

    def test_horizontal_ray_hits_building_side(self, simple_world):
        hit = simple_world.raycast(Vec3(0, 0, 5), Vec3(1, 0, 0), max_range=30)
        assert hit == pytest.approx(8.0, abs=1e-6)

    def test_out_of_range_returns_none(self, simple_world):
        assert simple_world.raycast(Vec3(0, 0, 5), Vec3(1, 0, 0), max_range=3) is None

    def test_canopy_hidden_until_close(self, simple_world):
        # Canopy of the tree at (0, 10) spans z in [3.2, 8]; ray from far away
        # pointed at it passes through because it has not been "seen" yet.
        far_origin = Vec3(0, -20, 5)
        direction = Vec3(0, 1, 0)
        hit_far = simple_world.raycast(far_origin, direction, 60, visible_only_from=far_origin)
        near_origin = Vec3(0, 5, 5)
        hit_near = simple_world.raycast(near_origin, direction, 60, visible_only_from=near_origin)
        assert hit_near is not None and hit_near == pytest.approx(2.0, abs=0.1)
        assert hit_far is None or hit_far > 25.0

    def test_zero_direction_rejected(self, simple_world):
        with pytest.raises(ValueError):
            simple_world.raycast(Vec3(0, 0, 5), Vec3(0, 0, 0), 10)


class TestLandingValidity:
    def test_open_ground_is_valid(self, simple_world):
        assert simple_world.is_valid_landing_point(Vec3(0, -20, 0))

    def test_water_is_invalid(self, simple_world):
        assert not simple_world.is_valid_landing_point(Vec3(-10, -10, 0))

    def test_next_to_building_is_invalid(self, simple_world):
        assert not simple_world.is_valid_landing_point(Vec3(12.1, 0, 0))

    def test_outside_bounds_is_invalid(self, simple_world):
        assert not simple_world.is_valid_landing_point(Vec3(200, 0, 0))

    def test_target_marker_lookup(self, simple_world):
        from repro.world.markers import Marker

        simple_world.markers = [
            Marker(marker_id=3, position=Vec3(1, 1, 0)),
            Marker(marker_id=7, position=Vec3(2, 2, 0), is_target=True),
        ]
        assert simple_world.target_marker.marker_id == 7
        assert len(simple_world.markers_within(Vec3(0, 0, 0), 5.0)) == 2
        assert len(simple_world.markers_within(Vec3(100, 0, 0), 5.0)) == 0
