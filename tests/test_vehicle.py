"""Tests for dynamics, wind, EKF, controller and the autopilot."""


import pytest

from repro.geometry import AABB, Quaternion, Vec3
from repro.sensors.gps import GpsFix
from repro.vehicle.autopilot import Autopilot, AutopilotConfig, FlightMode
from repro.vehicle.controller import PositionController
from repro.vehicle.dynamics import QuadrotorDynamics, QuadrotorLimits
from repro.vehicle.ekf import PositionEkf
from repro.vehicle.state import EstimatedState, VehicleState
from repro.vehicle.wind import WindModel
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World


def empty_world(weather=None):
    return World(
        name="flight-test",
        bounds=AABB(Vec3(-100, -100, 0), Vec3(100, 100, 60)),
        weather=weather or Weather.clear(),
    )


class TestDynamics:
    def test_tracks_commanded_velocity(self):
        dynamics = QuadrotorDynamics()
        dynamics.command_velocity(Vec3(2, 0, 0))
        for _ in range(100):
            dynamics.step(0.02)
        assert dynamics.state.velocity.x == pytest.approx(2.0, abs=0.3)

    def test_velocity_commands_are_clamped(self):
        limits = QuadrotorLimits(max_horizontal_speed=3.0)
        dynamics = QuadrotorDynamics(limits)
        dynamics.command_velocity(Vec3(50, 0, 0))
        assert dynamics.commanded_velocity.horizontal_norm() <= 3.0 + 1e-9

    def test_does_not_sink_below_ground(self):
        dynamics = QuadrotorDynamics()
        dynamics.command_velocity(Vec3(0, 0, -5))
        for _ in range(200):
            dynamics.step(0.02)
        assert dynamics.state.position.z >= 0.0

    def test_wind_pushes_vehicle(self):
        dynamics = QuadrotorDynamics()
        dynamics.command_velocity(Vec3.zero())
        for _ in range(250):
            dynamics.step(0.02, wind=Vec3(5, 0, 0))
        assert dynamics.state.position.x > 0.5

    def test_teleport_resets_state(self):
        dynamics = QuadrotorDynamics()
        dynamics.command_velocity(Vec3(2, 2, 1))
        for _ in range(50):
            dynamics.step(0.02)
        dynamics.teleport(Vec3(5, 5, 0), yaw=1.0)
        assert dynamics.state.position == Vec3(5, 5, 0)
        assert dynamics.state.velocity == Vec3.zero()

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            QuadrotorDynamics().step(0.0)


class TestWind:
    def test_calm_weather_is_calm(self):
        wind = WindModel(Weather.clear(), seed=1)
        assert wind.is_calm
        assert wind.step(0.1).norm() < 1.0

    def test_storm_produces_wind_near_mean_speed(self):
        weather = Weather.preset(WeatherCondition.WIND, 1.0)
        wind = WindModel(weather, seed=1)
        speeds = [wind.step(0.1).norm() for _ in range(300)]
        assert sum(speeds) / len(speeds) == pytest.approx(weather.wind_speed, rel=0.5)

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            WindModel(Weather.clear()).step(0.0)


class TestEkf:
    def test_converges_to_gps_position(self):
        ekf = PositionEkf()
        ekf.reset_to(Vec3.zero())
        target = Vec3(5, -3, 10)
        for t in range(50):
            ekf.predict(Vec3.zero(), 0.1)
            ekf.update_gps(GpsFix(position=target, hdop=1.5, vdop=2.0, timestamp=float(t)))
        assert ekf.estimate().position.distance_to(target) < 0.5

    def test_tracks_slow_gps_drift(self):
        # The filter follows a self-consistent slow drift rather than rejecting
        # it — the mechanism behind the paper's corrupted maps (Fig. 5c/5d).
        ekf = PositionEkf()
        ekf.reset_to(Vec3.zero())
        for t in range(200):
            drifted = Vec3(t * 0.01, 0, 10)
            ekf.predict(Vec3.zero(), 0.1)
            ekf.update_gps(GpsFix(position=drifted, hdop=2.0, vdop=2.5, timestamp=float(t)))
        assert ekf.estimate().position.x == pytest.approx(2.0, abs=0.5)

    def test_altitude_update_only_affects_z(self):
        ekf = PositionEkf()
        ekf.reset_to(Vec3(1, 2, 3))
        ekf.update_altitude(8.0)
        estimate = ekf.estimate()
        assert estimate.position.x == pytest.approx(1.0)
        assert estimate.position.z > 3.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            PositionEkf().predict(Vec3.zero(), 0.0)

    def test_estimated_state_error(self):
        estimate = EstimatedState(position=Vec3(1, 0, 0))
        truth = VehicleState(position=Vec3(0, 0, 0))
        assert estimate.error_to(truth) == pytest.approx(1.0)


class TestController:
    def test_command_points_towards_target(self):
        controller = PositionController()
        estimate = EstimatedState(position=Vec3.zero())
        command = controller.velocity_command(estimate, Vec3(10, 0, 0))
        assert command.x > 0 and abs(command.y) < 1e-6

    def test_speed_limit_respected(self):
        controller = PositionController()
        estimate = EstimatedState(position=Vec3.zero())
        command = controller.velocity_command(estimate, Vec3(100, 0, 0), speed_limit=1.0)
        assert command.horizontal_norm() <= 1.0 + 1e-9

    def test_descent_rate_limited(self):
        controller = PositionController()
        estimate = EstimatedState(position=Vec3(0, 0, 50))
        command = controller.velocity_command(estimate, Vec3(0, 0, 0))
        assert command.z >= -controller.gains.max_descent_speed - 1e-9

    def test_slows_down_near_target(self):
        controller = PositionController()
        far = controller.velocity_command(EstimatedState(position=Vec3.zero()), Vec3(20, 0, 0))
        near = controller.velocity_command(EstimatedState(position=Vec3(19.5, 0, 0)), Vec3(20, 0, 0))
        assert near.norm() < far.norm()

    def test_is_at_tolerance(self):
        controller = PositionController()
        assert controller.is_at(EstimatedState(position=Vec3(0.1, 0, 0)), Vec3.zero())
        assert not controller.is_at(EstimatedState(position=Vec3(5, 0, 0)), Vec3.zero())


class TestAutopilot:
    def test_takeoff_reaches_altitude_and_switches_to_offboard(self):
        autopilot = Autopilot(empty_world(), AutopilotConfig(takeoff_altitude=10.0), seed=1)
        autopilot.arm_and_takeoff()
        for _ in range(800):
            autopilot.step(0.02)
        assert autopilot.mode is FlightMode.OFFBOARD
        assert autopilot.true_state.altitude == pytest.approx(10.0, abs=1.0)

    def test_offboard_setpoint_tracking(self):
        autopilot = Autopilot(empty_world(), AutopilotConfig(takeoff_altitude=10.0), seed=2)
        autopilot.arm_and_takeoff()
        for _ in range(600):
            autopilot.step(0.02)
        autopilot.set_position_setpoint(Vec3(15, -10, 10))
        for _ in range(1500):
            autopilot.step(0.02)
        assert autopilot.true_state.position.horizontal_distance_to(Vec3(15, -10, 0)) < 1.5

    def test_land_mode_reaches_ground(self):
        autopilot = Autopilot(empty_world(), AutopilotConfig(takeoff_altitude=6.0), seed=3)
        autopilot.arm_and_takeoff()
        for _ in range(500):
            autopilot.step(0.02)
        autopilot.command_land()
        for _ in range(1500):
            autopilot.step(0.02)
            if autopilot.is_landed:
                break
        assert autopilot.is_landed
        assert autopilot.true_state.altitude < 0.3

    def test_estimation_error_stays_bounded_in_clear_weather(self):
        autopilot = Autopilot(empty_world(), seed=4)
        autopilot.arm_and_takeoff()
        for _ in range(1000):
            autopilot.step(0.02)
        assert autopilot.estimation_error < 2.5

    def test_return_mode_heads_home(self):
        autopilot = Autopilot(empty_world(), AutopilotConfig(takeoff_altitude=8.0), seed=5)
        autopilot.arm_and_takeoff()
        for _ in range(600):
            autopilot.step(0.02)
        autopilot.set_position_setpoint(Vec3(20, 0, 8))
        for _ in range(1200):
            autopilot.step(0.02)
        autopilot.command_return()
        for _ in range(400):
            autopilot.step(0.02)
        assert autopilot.mode in (FlightMode.RETURN, FlightMode.LAND, FlightMode.LANDED)
