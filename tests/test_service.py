"""Tests for the campaign platform service (repro.service).

Mission execution is stubbed (the test_dispatch idiom) so the HTTP, job
store, pool and memo machinery run fast and deterministically; the CI
``service-smoke`` job covers the real-execution path end to end.
"""

import json
import threading
import time

import pytest

import repro.bench.campaign as campaign_module
from repro.analysis.cli import main as analysis_main
from repro.bench.campaign import Campaign
from repro.core.config import mls_v1, mls_v2
from repro.core.metrics import DetectionStats, RunOutcome, RunRecord
from repro.dispatch.queue import ShardState
from repro.dispatch.worker import run_worker
from repro.faults.spec import FAULT_PRESETS
from repro.service.cli import main as service_main
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import JobStore, validate_submission
from repro.service.server import CampaignServer
from repro.world.scenario_gen import generate_suite
from repro.world.spec_validation import SpecValidationError


def make_record(scenario_id, repetition, system="MLS-V1"):
    return RunRecord(
        scenario_id=scenario_id,
        system_name=system,
        outcome=RunOutcome.SUCCESS,
        landing_error=0.4,
        landed=True,
        mission_time=42.0,
        detection=DetectionStats(frames_with_visible_marker=10, frames_detected=9),
        repetition=repetition,
    )


@pytest.fixture
def stub_execute(monkeypatch):
    """Replace mission execution with a deterministic record factory."""
    calls = []

    def fake_execute(job):
        calls.append((job.system.name, job.scenario.scenario_id, job.repetition))
        return make_record(job.scenario.scenario_id, job.repetition, job.system.name)

    monkeypatch.setattr(campaign_module, "_execute_job", fake_execute)
    monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)
    return calls


@pytest.fixture
def server_factory(tmp_path):
    """Start (and always tear down) CampaignServers on ephemeral ports."""
    servers = []

    def make(root=None, workers=2, lease_seconds=5.0, start_pool=True):
        server = CampaignServer(
            str(root if root is not None else tmp_path / "root"),
            ("127.0.0.1", 0),
            workers=workers,
            lease_seconds=lease_seconds,
        )
        threading.Thread(target=server.serve_forever, daemon=True).start()
        if start_pool:
            server.start_pool()
        servers.append(server)
        return server, ServiceClient(server.url)

    yield make
    for server in servers:
        server.shutdown()  # stops the pool too
        server.server_close()


SUBMISSION = {
    "preset": "smoke", "count": 4, "seed": 3,
    "systems": ["mls-v1"], "shards": 2, "repetitions": 1,
}


class TestSubmissionValidation:
    def test_all_problems_reported_at_once(self):
        with pytest.raises(SpecValidationError) as excinfo:
            validate_submission(
                {"preset": "nope", "shards": 0, "bogus": 1, "systems": ["bad"]}
            )
        fields = {issue.field for issue in excinfo.value.issues}
        assert {"preset", "shards", "bogus", "systems[0]"} <= fields
        payload = excinfo.value.to_payload()
        assert payload["error"] == "invalid submission"
        assert all({"field", "reason"} <= set(i) for i in payload["issues"])

    def test_server_side_fault_paths_refused(self):
        with pytest.raises(SpecValidationError, match="file paths are not accepted"):
            validate_submission({**SUBMISSION, "faults": "plans/evil.json"})

    def test_spec_and_preset_are_exclusive(self):
        with pytest.raises(SpecValidationError, match="exactly one"):
            validate_submission({"preset": "smoke", "spec": {"count": 1}})

    def test_inline_spec_issues_are_prefixed(self):
        with pytest.raises(SpecValidationError) as excinfo:
            validate_submission({"spec": {"count": 0, "wrong": 1}})
        fields = {issue.field for issue in excinfo.value.issues}
        assert "spec.count" in fields
        assert "spec.wrong" in fields

    def test_http_submit_maps_to_structured_400(self, server_factory, stub_execute):
        _, client = server_factory(start_pool=False)
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"preset": "nope"})
        assert excinfo.value.status == 400
        assert excinfo.value.payload["issues"][0]["field"] == "preset"


class TestSubmitDedup:
    def test_identical_resubmit_returns_existing_job(self, server_factory, stub_execute):
        _, client = server_factory(start_pool=False)
        first = client.submit(SUBMISSION)
        second = client.submit(dict(SUBMISSION))
        assert first["created"] is True
        assert second["created"] is False
        assert second["id"] == first["id"]

    def test_concurrent_identical_submits_create_one_job(
        self, server_factory, stub_execute
    ):
        server, client = server_factory(start_pool=False)
        results, errors = [], []

        def submit():
            try:
                results.append(client.submit(SUBMISSION))
            except Exception as error:  # pragma: no cover - diagnostic only
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len({response["id"] for response in results}) == 1
        assert sum(response["created"] for response in results) == 1
        assert len(server.store.jobs()) == 1

    def test_concurrent_differing_submits_are_isolated(
        self, server_factory, stub_execute
    ):
        server, client = server_factory(start_pool=False)
        results = []
        lock = threading.Lock()

        def submit(seed):
            response = client.submit({**SUBMISSION, "seed": seed})
            with lock:
                results.append(response)

        threads = [threading.Thread(target=submit, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({response["id"] for response in results}) == 4
        assert all(response["created"] for response in results)
        jobs = server.store.jobs()
        assert len(jobs) == 4
        assert len({job.dispatch_dir for job in jobs}) == 4


class TestEndToEnd:
    def test_service_run_matches_offline_campaign_byte_for_byte(
        self, server_factory, stub_execute, tmp_path
    ):
        _, client = server_factory(workers=2)
        submission = {
            "preset": "smoke", "count": 4, "seed": 3,
            "systems": ["mls-v1", "mls-v2"], "shards": 2, "repetitions": 2,
            "faults": "smoke",
        }
        job_id = client.submit(submission)["id"]
        status = client.wait(job_id, timeout=60)
        assert status["state"] == "done"
        assert status["queue"]["runs_done"] == status["queue"]["total_runs"]

        # The offline path: one process, same suite/systems/faults/seed.
        offline = tmp_path / "offline"
        suite = generate_suite("smoke", count=4, seed=3, repetitions=2)
        (
            Campaign(mls_v1(), mls_v2())
            .suite(suite)
            .repetitions(2)
            .faults(*FAULT_PRESETS["smoke"])
            .out(offline)
            .run()
        )
        text, headers = client.report(job_id)
        assert headers["X-Report-Cache"] == "miss"

        report_path = tmp_path / "offline-report.md"
        assert analysis_main(
            ["summarize", str(offline), "--out", str(report_path)]
        ) == 0
        assert text == report_path.read_text(encoding="utf-8")

        # Second fetch must come from the on-disk memo, byte-identical.
        text2, headers2 = client.report(job_id)
        assert headers2["X-Report-Cache"] == "hit"
        assert headers2["X-Report-Key"] == headers["X-Report-Key"]
        assert text2 == text

    def test_merged_files_identical_to_offline(
        self, server_factory, stub_execute, tmp_path
    ):
        server, client = server_factory(workers=2)
        job_id = client.submit(SUBMISSION)["id"]
        client.wait(job_id, timeout=60)
        job = server.store.get(job_id)
        merged = server.store.ensure_merged(job)

        offline = tmp_path / "offline"
        suite = generate_suite("smoke", count=4, seed=3)
        Campaign(mls_v1()).suite(suite).repetitions(1).out(offline).run()
        for path in sorted(offline.glob("*.jsonl")):
            assert (merged / path.name).read_bytes() == path.read_bytes()

    def test_records_pagination_across_systems(self, server_factory, stub_execute):
        server, client = server_factory(workers=2)
        job_id = client.submit(
            {**SUBMISSION, "systems": ["mls-v1", "mls-v2"]}
        )["id"]
        client.wait(job_id, timeout=60)

        page = client.records(job_id, offset=3, limit=3)
        assert page["total"] == 8
        systems = [record["system_name"] for record in page["records"]]
        assert systems == ["MLS-V1", "MLS-V2", "MLS-V2"]

        everything = client.records(job_id)
        assert len(everything["records"]) == 8  # default limit covers it

        past_end = client.records(job_id, offset=100, limit=5)
        assert past_end["total"] == 8
        assert past_end["records"] == []

        only_v2 = client.records(job_id, system="MLS-V2", limit=100)
        assert only_v2["total"] == 4
        assert all(r["system_name"] == "MLS-V2" for r in only_v2["records"])

        with pytest.raises(ServiceClientError) as excinfo:
            client.records(job_id, system="nope")
        assert excinfo.value.status == 404

    def test_torn_tail_in_merged_file_is_dropped_not_counted(
        self, server_factory, stub_execute
    ):
        server, client = server_factory(workers=2)
        job_id = client.submit(SUBMISSION)["id"]
        client.wait(job_id, timeout=60)
        merged = server.store.ensure_merged(server.store.get(job_id))
        victim = sorted(merged.glob("*.jsonl"))[0]
        with victim.open("a", encoding="utf-8") as handle:
            handle.write('{"scenario_id": "torn", "system_na')
        page = client.records(job_id, limit=100)
        assert page["total"] == 4
        assert all(r["scenario_id"] != "torn" for r in page["records"])

    def test_records_before_completion_conflict(self, server_factory, stub_execute):
        _, client = server_factory(start_pool=False)
        job_id = client.submit(SUBMISSION)["id"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.records(job_id)
        assert excinfo.value.status == 409

    def test_unknown_job_and_route_are_404(self, server_factory, stub_execute):
        _, client = server_factory(start_pool=False)
        for call in (
            lambda: client.status("feedfacefeedface"),
            lambda: client.report("feedfacefeedface"),
            lambda: client._json("GET", "/nope"),
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_bad_slice_factor_is_400(self, server_factory, stub_execute):
        _, client = server_factory(workers=1)
        job_id = client.submit(SUBMISSION)["id"]
        client.wait(job_id, timeout=60)
        with pytest.raises(ServiceClientError) as excinfo:
            client.slice(job_id, "bogus")
        assert excinfo.value.status == 400


class TestCancellation:
    def test_cancel_mid_shard_releases_lease(
        self, server_factory, monkeypatch
    ):
        started = threading.Event()
        release = threading.Event()

        def gated_execute(job):
            started.set()
            release.wait(timeout=30.0)
            return make_record(job.scenario.scenario_id, job.repetition, job.system.name)

        monkeypatch.setattr(campaign_module, "_execute_job", gated_execute)
        monkeypatch.setattr(campaign_module, "_shared_network", lambda: None)

        server, client = server_factory(workers=1, lease_seconds=30.0)
        job_id = client.submit({**SUBMISSION, "shards": 1})["id"]
        assert started.wait(timeout=10.0), "worker never started the shard"
        client.cancel(job_id)
        release.set()  # let the in-flight mission finish; the next raises

        job = server.store.get(job_id)
        queue = job.queue()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            statuses = queue.status()
            if all(status.state is ShardState.PENDING for status in statuses):
                break
            time.sleep(0.05)
        statuses = queue.status()
        # The lease was *released* (not left to go stale), and the shard was
        # never published done.
        assert [status.state for status in statuses] == [ShardState.PENDING]
        assert not queue.lease_path(statuses[0].shard).exists()
        assert client.status(job_id)["state"] == "cancelled"
        # The pool skips cancelled jobs: no worker re-claims it.
        time.sleep(0.5)
        assert [s.state for s in queue.status()] == [ShardState.PENDING]
        assert client.healthz()["pool_running"] is True


class TestRestartAndExternalWorkers:
    def test_restart_resumes_from_directory_tree(
        self, server_factory, stub_execute, tmp_path
    ):
        root = tmp_path / "root"
        store = JobStore(root)
        job, created = store.submit(SUBMISSION)
        assert created
        # A first "server" drains one of the two shards, then dies.
        run_worker(job.dispatch_dir, worker_id="first-life", max_shards=1, wait=False)
        assert not job.queue().all_done()

        server, client = server_factory(root=root, workers=2)
        listed = client.jobs()
        assert [entry["id"] for entry in listed] == [job.id]
        assert listed[0]["sequence"] == job.sequence  # submission order survives
        status = client.wait(job.id, timeout=60)
        assert status["state"] == "done"
        text, _ = client.report(job.id)
        assert text.startswith("# Campaign analytics summary")

    def test_external_dispatch_worker_drains_service_job(
        self, server_factory, stub_execute
    ):
        server, client = server_factory(start_pool=False)
        job_id = client.submit(SUBMISSION)["id"]
        job = server.store.get(job_id)
        # What `python -m repro.dispatch work <dir>` runs, pointed at the
        # job's dispatch directory.
        report = run_worker(job.dispatch_dir, worker_id="external")
        assert report.records_flown == 4
        assert client.status(job_id)["state"] == "done"
        text, headers = client.report(job_id)
        assert headers["X-Report-Cache"] == "miss"
        assert "MLS-V1" in text


class TestServiceCli:
    def test_submit_status_fetch_cancel_roundtrip(
        self, server_factory, stub_execute, tmp_path, capsys
    ):
        server, client = server_factory(workers=2)
        url = server.url
        assert service_main([
            "submit", url, "--preset", "smoke", "--count", "4", "--seed", "3",
            "--systems", "mls-v1", "--shards", "2", "--repetitions", "1",
            "--wait", "--json",
        ]) == 0
        response = json.loads(capsys.readouterr().out)
        job_id = response["id"]

        assert service_main(["status", url, "--json"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        assert [job["id"] for job in jobs] == [job_id]
        assert jobs[0]["state"] == "done"

        out = tmp_path / "fetched.md"
        assert service_main(["fetch", url, job_id, "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "report cache miss" in captured.err
        assert out.read_text(encoding="utf-8").startswith(
            "# Campaign analytics summary"
        )

        assert service_main([
            "fetch", url, job_id, "--records", "--offset", "1", "--limit", "2",
        ]) == 0
        page = json.loads(capsys.readouterr().out)
        assert page["total"] == 4
        assert len(page["records"]) == 2

        assert service_main(["cancel", url, job_id]) == 0
        assert json.loads(capsys.readouterr().out)["cancelled"] is True
        assert service_main(["status", url, job_id]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == "cancelled"

    def test_client_error_exits_2(self, server_factory, stub_execute, capsys):
        server, _ = server_factory(start_pool=False)
        assert service_main(["submit", server.url, "--preset", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "HTTP 400" in err and "preset" in err


class TestObservabilityEndpoints:
    def test_healthz_reports_pool_thread_liveness(self, server_factory, stub_execute):
        server, client = server_factory(workers=2)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            health = client.healthz()
            pool = health["pool"]
            if all(t["last_progress_age"] is not None for t in pool["threads"]):
                break
            time.sleep(0.05)
        assert health["ok"] is True
        assert health["pool_running"] is True
        assert pool["workers"] == 2
        assert len(pool["threads"]) == 2
        for thread in pool["threads"]:
            assert thread["alive"] is True
            assert thread["last_progress_age"] < 5.0

    def test_healthz_without_pool(self, server_factory, stub_execute):
        _, client = server_factory(start_pool=False)
        health = client.healthz()
        assert health["pool_running"] is False
        assert health["pool"]["threads"] == []

    def test_metrics_endpoint_serves_prometheus_text(
        self, server_factory, stub_execute
    ):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        try:
            server, client = server_factory(workers=1)
            job_id = client.submit(SUBMISSION)["id"]
            client.wait(job_id, timeout=30)
            text, headers = client._text("/metrics")
            assert headers["Content-Type"].startswith("text/plain")
            assert "# TYPE repro_service_jobs gauge" in text
            assert 'repro_service_jobs{state="done"} 1' in text
            assert "# TYPE repro_http_requests_total counter" in text
            # The job id collapses to {id} in route labels.
            assert 'route="/jobs/{id}"' in text
            assert job_id not in text
            assert "# TYPE repro_http_request_seconds histogram" in text
            assert "repro_http_request_seconds_bucket" in text
            assert "repro_service_pool_threads_alive 1" in text
            # Sanity: every non-comment line is `name{labels} value`.
            for line in text.splitlines():
                if line.startswith("#") or not line:
                    continue
                name_part, _, value = line.rpartition(" ")
                assert name_part and (value == "NaN" or float(value) is not None)
            # Scrapes are repeatable (and the scrape itself was counted).
            again, _ = client._text("/metrics")
            assert 'route="/metrics"' in again
        finally:
            METRICS.reset()

    def test_dispatch_worker_metrics_counted(self, server_factory, stub_execute):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        try:
            server, client = server_factory(workers=1)
            job_id = client.submit(SUBMISSION)["id"]
            client.wait(job_id, timeout=30)
            snapshot = METRICS.snapshot()
            assert sum(snapshot["repro_dispatch_shards_completed_total"].values()) == 2
            assert sum(snapshot["repro_dispatch_records_flown_total"].values()) == 4
            claims = snapshot["repro_dispatch_claims_total"]
            assert sum(claims.values()) == 2
        finally:
            METRICS.reset()


class TestFleetMetrics:
    def _foreign_snapshot(self, dispatch_dir, runs, process="exthost-99-zz", seq=1):
        metrics_dir = dispatch_dir / "obs" / "metrics"
        metrics_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": "metrics-snapshot", "schema": 1,
            "process": process, "seq": seq,
            "metrics": {
                "repro_runs_total": {
                    "type": "counter", "help": "Completed runs.",
                    "series": [
                        [[["outcome", "success"], ["system", "EXT"]], runs]
                    ],
                },
            },
        }
        (metrics_dir / "99-zz.json").write_text(json.dumps(payload))

    def test_metrics_merges_external_worker_snapshots(
        self, server_factory, stub_execute
    ):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        try:
            server, client = server_factory(workers=1)
            job_id = client.submit(SUBMISSION)["id"]
            client.wait(job_id, timeout=30)
            (job,) = server.store.jobs()
            self._foreign_snapshot(job.dispatch_dir, 7)
            text, _ = client._text("/metrics")
            # The external process's series joins the same exposition as
            # the in-process pool's own state.
            assert 'repro_runs_total{outcome="success",system="EXT"} 7' in text
            assert 'repro_service_jobs{state="done"} 1' in text
            # A newer flush from the same process supersedes (dedupe by
            # seq), it does not double-count.
            self._foreign_snapshot(job.dispatch_dir, 9, seq=2)
            text, _ = client._text("/metrics")
            assert 'repro_runs_total{outcome="success",system="EXT"} 9' in text
        finally:
            METRICS.reset()

    def test_stale_job_state_labels_are_cleared_each_scrape(
        self, server_factory, stub_execute
    ):
        from repro.obs.metrics import METRICS

        METRICS.reset()
        try:
            _, client = server_factory(start_pool=False)
            # A label value no server code sets any more must not linger
            # from scrape to scrape: the gauge is rebuilt wholesale.
            METRICS.gauge(
                "repro_service_jobs", "Submitted jobs by lifecycle state."
            ).set(5, state="bogus-legacy-state")
            text, _ = client._text("/metrics")
            assert "bogus-legacy-state" not in text
            for state in ("queued", "running", "done", "cancelled"):
                assert f'repro_service_jobs{{state="{state}"}} 0' in text
        finally:
            METRICS.reset()

    def test_workers_zero_serves_while_externals_fly(
        self, server_factory, stub_execute
    ):
        server, client = server_factory(workers=0)
        assert server.pool.health()["threads"] == []
        job_id = client.submit(SUBMISSION)["id"]
        (job,) = server.store.jobs()
        assert server.store.job_state(job) == "queued"
        # An "external" dispatch worker (same protocol, own process in
        # production) drains the job's dispatch directory.
        run_worker(job.dispatch_dir, worker_id="external-w0", wait=False)
        status = client.wait(job_id, timeout=30)
        assert status["state"] == "done"
        text, _ = client.report(job_id)
        assert "runs" in text.lower()

    def test_pool_refuses_negative_workers(self, tmp_path):
        from repro.service.pool import WorkerPool

        with pytest.raises(ValueError, match="non-negative"):
            WorkerPool(JobStore(tmp_path / "r"), workers=-1)
