"""Tests for the classical and learned detectors and the validation gate."""

import numpy as np
import pytest

from repro.geometry import AABB, Pose, Vec3
from repro.perception.classical import ClassicalMarkerDetector
from repro.perception.detection import Detection, DetectionFrame
from repro.perception.learned import LearnedMarkerDetector
from repro.perception.neural.training import load_pretrained_detector_net
from repro.perception.validation import ValidationGate, ValidationResult
from repro.sensors.camera import DownwardCamera
from repro.world.markers import Marker
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World


@pytest.fixture(scope="module")
def shared_network():
    return load_pretrained_detector_net()


def world_with_marker(weather=None, occlusion=0.0, marker_id=7, yaw=0.4):
    return World(
        name="det-test",
        bounds=AABB(Vec3(-60, -60, 0), Vec3(60, 60, 40)),
        markers=[Marker(marker_id=marker_id, position=Vec3.zero(), size=1.0, yaw=yaw, occlusion=occlusion, is_target=True)],
        weather=weather or Weather.clear(),
    )


def capture(world, altitude, seed=0):
    return DownwardCamera(seed=seed).capture(world, Pose.at(Vec3(0, 0, altitude)))


class TestClassicalDetector:
    def test_detects_and_decodes_at_low_altitude(self):
        frame = capture(world_with_marker(), altitude=5.0)
        result = ClassicalMarkerDetector().detect(frame)
        assert any(d.marker_id == 7 for d in result.detections)

    def test_position_estimate_is_accurate(self):
        frame = capture(world_with_marker(), altitude=5.0)
        result = ClassicalMarkerDetector().detect(frame)
        detection = next(d for d in result.detections if d.marker_id == 7)
        assert detection.world_position.horizontal_distance_to(Vec3.zero()) < 0.5

    def test_fails_at_high_altitude(self):
        frame = capture(world_with_marker(), altitude=18.0)
        result = ClassicalMarkerDetector().detect(frame)
        assert not any(d.marker_id == 7 for d in result.detections)

    def test_degrades_under_heavy_occlusion(self):
        frame = capture(world_with_marker(occlusion=0.5), altitude=5.0)
        result = ClassicalMarkerDetector().detect(frame)
        assert not any(d.marker_id == 7 for d in result.detections)

    def test_does_not_hallucinate_markers_on_empty_ground(self):
        world = world_with_marker()
        world.markers = []
        frame = capture(world, altitude=6.0)
        result = ClassicalMarkerDetector().detect(frame)
        assert len(result.detections) == 0


class TestLearnedDetector:
    def test_detects_at_low_altitude(self, shared_network):
        detector = LearnedMarkerDetector(network=shared_network)
        frame = capture(world_with_marker(), altitude=5.0)
        result = detector.detect(frame)
        assert any(d.marker_id == 7 for d in result.detections)

    def test_more_robust_than_classical_in_fog(self, shared_network):
        fog = Weather.preset(WeatherCondition.FOG, 1.0)
        learned = LearnedMarkerDetector(network=shared_network)
        classical = ClassicalMarkerDetector()
        learned_hits = 0
        classical_hits = 0
        for seed in range(6):
            frame = capture(world_with_marker(weather=fog), altitude=6.0, seed=seed)
            learned_hits += any(
                d.marker_id == 7 or d.marker_id is None for d in learned.detect(frame).detections
            )
            classical_hits += any(d.marker_id == 7 for d in classical.detect(frame).detections)
        assert learned_hits >= classical_hits
        assert learned_hits >= 3

    def test_detection_confidence_in_range(self, shared_network):
        detector = LearnedMarkerDetector(network=shared_network)
        frame = capture(world_with_marker(), altitude=6.0)
        for detection in detector.detect(frame).detections:
            assert 0.0 <= detection.confidence <= 1.0

    def test_non_max_suppression_removes_duplicates(self, shared_network):
        detector = LearnedMarkerDetector(network=shared_network)
        detections = [
            Detection(marker_id=None, pixel_center=(50, 50), pixel_size=10, world_position=Vec3.zero(), confidence=0.9),
            Detection(marker_id=None, pixel_center=(52, 52), pixel_size=10, world_position=Vec3.zero(), confidence=0.7),
            Detection(marker_id=None, pixel_center=(90, 90), pixel_size=10, world_position=Vec3.zero(), confidence=0.8),
        ]
        kept = detector._non_max_suppression(detections)
        assert len(kept) == 2
        assert kept[0].confidence == 0.9


class TestDetectionFrame:
    def test_best_for_picks_highest_confidence(self):
        frame = DetectionFrame(
            timestamp=0.0,
            detections=[
                Detection(marker_id=7, pixel_center=(0, 0), pixel_size=5, world_position=Vec3.zero(), confidence=0.5),
                Detection(marker_id=7, pixel_center=(1, 1), pixel_size=5, world_position=Vec3.zero(), confidence=0.9),
                Detection(marker_id=3, pixel_center=(2, 2), pixel_size=5, world_position=Vec3.zero(), confidence=1.0),
            ],
        )
        assert frame.best_for(7).confidence == 0.9
        assert frame.best_for(99) is None
        assert frame.has_any


def make_frame(detections):
    return DetectionFrame(timestamp=0.0, detections=detections)


def identified(marker_id, x=0.0, confidence=1.0):
    return Detection(marker_id=marker_id, pixel_center=(0, 0), pixel_size=8, world_position=Vec3(x, 0, 0), confidence=confidence)


def unidentified(x=0.0, confidence=0.8):
    return Detection(marker_id=None, pixel_center=(0, 0), pixel_size=8, world_position=Vec3(x, 0, 0), confidence=confidence)


class TestValidationGate:
    def test_accepts_consistent_target_detections(self):
        gate = ValidationGate(target_marker_id=7, required_frames=10, required_hits=5)
        gate.reset()
        result = ValidationResult.PENDING
        for _ in range(5):
            result = gate.observe(make_frame([identified(7)]))
        assert result is ValidationResult.ACCEPTED

    def test_rejects_decoy_detections(self):
        gate = ValidationGate(target_marker_id=7, required_frames=6, required_hits=4)
        gate.reset()
        result = ValidationResult.PENDING
        for _ in range(6):
            result = gate.observe(make_frame([identified(3)]))
            if result is not ValidationResult.PENDING:
                break
        assert result is ValidationResult.REJECTED

    def test_rejects_empty_frames(self):
        gate = ValidationGate(target_marker_id=7, required_frames=5, required_hits=3)
        gate.reset()
        result = ValidationResult.PENDING
        for _ in range(5):
            result = gate.observe(make_frame([]))
            if result is not ValidationResult.PENDING:
                break
        assert result is ValidationResult.REJECTED

    def test_early_reject_when_threshold_unreachable(self):
        gate = ValidationGate(target_marker_id=7, required_frames=10, required_hits=9)
        gate.reset()
        result = gate.observe(make_frame([]))
        result = gate.observe(make_frame([]))
        assert result is ValidationResult.REJECTED

    def test_unidentified_detections_count_with_prior(self):
        gate = ValidationGate(target_marker_id=7, required_frames=10, required_hits=4, accept_unidentified=True)
        gate.reset(candidate_position=Vec3.zero())
        result = ValidationResult.PENDING
        for _ in range(4):
            result = gate.observe(make_frame([unidentified(x=0.5)]))
        assert result is ValidationResult.ACCEPTED

    def test_unidentified_far_from_prior_do_not_count(self):
        gate = ValidationGate(target_marker_id=7, required_frames=6, required_hits=3, accept_unidentified=True)
        gate.reset(candidate_position=Vec3.zero())
        result = ValidationResult.PENDING
        for _ in range(6):
            result = gate.observe(make_frame([unidentified(x=10.0)]))
            if result is not ValidationResult.PENDING:
                break
        assert result is ValidationResult.REJECTED

    def test_unidentified_disabled_for_classical(self):
        gate = ValidationGate(target_marker_id=7, required_frames=6, required_hits=3, accept_unidentified=False)
        gate.reset(candidate_position=Vec3.zero())
        result = ValidationResult.PENDING
        for _ in range(6):
            result = gate.observe(make_frame([unidentified(x=0.0)]))
            if result is not ValidationResult.PENDING:
                break
        assert result is ValidationResult.REJECTED

    def test_position_estimate_averages_hits(self):
        gate = ValidationGate(target_marker_id=7, required_frames=10, required_hits=5)
        gate.reset()
        gate.observe(make_frame([identified(7, x=1.0)]))
        gate.observe(make_frame([identified(7, x=3.0)]))
        assert gate.position_estimate().x == pytest.approx(2.0)
        assert gate.hits == 2
        assert gate.hit_ratio == pytest.approx(1.0)
