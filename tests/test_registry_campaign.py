"""Tests for the component registry, config serialization and Campaign API."""

import json

import pytest

from repro import (
    REGISTRY,
    Campaign,
    ComponentContext,
    ComponentError,
    LandingSystem,
    LandingSystemConfig,
    MissionConfig,
    ablation_grid,
    build_evaluation_suite,
    mls_v1,
    mls_v2,
    mls_v3,
    register_detector,
    run_scenario,
)
from repro.bench.campaign import CampaignConfig, CampaignJob, run_campaign
from repro.core.config import DetectorKind, MapperKind, PlannerKind, SystemGeneration, preset
from repro.core.registry import DETECTOR, MAPPER, PLANNER
from repro.geometry import Vec3
from repro.perception.classical import ClassicalMarkerDetector


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestComponentRegistry:
    def test_builtin_components_registered(self):
        assert set(REGISTRY.keys(DETECTOR)) == {"opencv", "tph-yolo"}
        assert set(REGISTRY.keys(MAPPER)) == {"none", "dense-grid", "octomap"}
        assert set(REGISTRY.keys(PLANNER)) == {"straight-line", "ego-local-astar", "rrt-star"}

    def test_aliases_and_enums_resolve(self):
        assert REGISTRY.canonical_key(DETECTOR, "learned") == "tph-yolo"
        assert REGISTRY.canonical_key(DETECTOR, DetectorKind.CLASSICAL) == "opencv"
        assert REGISTRY.canonical_key(PLANNER, "ego") == "ego-local-astar"
        assert REGISTRY.canonical_key(MAPPER, MapperKind.OCTOMAP) == "octomap"

    def test_nominal_latency_declared_per_component(self):
        assert REGISTRY.nominal_latency(PLANNER, "rrt-star") == pytest.approx(0.120)
        assert REGISTRY.nominal_latency(DETECTOR, DetectorKind.CLASSICAL) == pytest.approx(0.012)
        assert REGISTRY.nominal_latency(MAPPER, "none") == 0.0

    def test_unknown_key_raises_with_choices(self):
        with pytest.raises(ComponentError, match="registered detectors.*opencv"):
            REGISTRY.spec(DETECTOR, "no-such-detector")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ComponentError, match="already registered"):
            register_detector("opencv", latency=0.01)(lambda ctx: None)

    def test_valid_combinations_subset_of_grid(self):
        grid = set(REGISTRY.combinations())
        valid = set(REGISTRY.valid_combinations())
        assert len(grid) == 18
        assert len(valid) == 12
        assert valid <= grid
        # EGO needs the dense grid; RRT* needs any inflated map.
        assert ("opencv", "none", "ego-local-astar") not in valid
        assert ("opencv", "none", "rrt-star") not in valid
        assert ("opencv", "octomap", "rrt-star") in valid
        assert ("opencv", "octomap", "ego-local-astar") not in valid

    def test_unbuildable_combination_raises_at_build(self):
        config = LandingSystemConfig.custom(mapper="none", planner="rrt-star")
        with pytest.raises(ComponentError, match="requires a mapper"):
            LandingSystem(config, target_marker_id=1, gps_target=Vec3(1, 1, 0))


class TestCustomComponent:
    @pytest.fixture
    def toy_detector(self):
        calls = {"count": 0}

        class ToyDetector:
            def __init__(self):
                self._inner = ClassicalMarkerDetector()

            def detect(self, frame):
                calls["count"] += 1
                return self._inner.detect(frame)

        @register_detector("toy", latency=0.005, metadata={"needs_network": False})
        def _build_toy(ctx: ComponentContext):
            return ToyDetector()

        yield ToyDetector, calls
        REGISTRY.unregister(DETECTOR, "toy")

    def test_custom_detector_runs_a_mission(self, toy_detector):
        toy_cls, calls = toy_detector
        config = LandingSystemConfig.custom(detector="toy", name="toy-system")
        assert config.detector == "toy"  # custom keys stay strings
        assert config.name == "toy-system"

        system = LandingSystem(config, target_marker_id=1, gps_target=Vec3(5, 5, 0))
        assert isinstance(system.detector, toy_cls)

        scenario = build_evaluation_suite().subset(1).scenarios[0]
        record = run_scenario(
            scenario, config, mission_config=MissionConfig(max_mission_time=10.0)
        )
        assert record.system_name == "toy-system"
        assert calls["count"] > 0
        # The declared latency feeds the resource model.
        assert REGISTRY.nominal_latency(DETECTOR, "toy") == pytest.approx(0.005)

    def test_unregister_removes_component(self, toy_detector):
        REGISTRY.unregister(DETECTOR, "toy")
        assert not REGISTRY.has(DETECTOR, "toy")
        register_detector("toy", latency=0.005)(lambda ctx: None)  # fixture teardown


# ---------------------------------------------------------------------- #
# configuration
# ---------------------------------------------------------------------- #
class TestConfigComposition:
    def test_custom_accepts_strings_and_aliases(self):
        config = LandingSystemConfig.custom("learned", "octree", "rrt")
        assert config.detector is DetectorKind.LEARNED
        assert config.mapper is MapperKind.OCTOMAP
        assert config.planner is PlannerKind.RRT_STAR
        assert config.generation is None
        assert config.name == "custom(tph-yolo+octomap+rrt-star)"

    def test_presets_unchanged(self):
        assert mls_v1().detector is DetectorKind.CLASSICAL
        assert mls_v2().planner is PlannerKind.EGO_LOCAL_ASTAR
        assert mls_v3().name == "MLS-V3"
        assert preset("MLS-V2") == mls_v2()

    def test_ablation_grid_is_18_wide(self):
        configs = list(ablation_grid())
        assert len(configs) == 18
        assert len({c.name for c in configs}) == 18
        assert len(list(ablation_grid(valid_only=True))) == 12

    def test_with_components_swaps_and_clears_generation(self):
        hybrid = mls_v3().with_components(planner="straight-line", name="V3-straight")
        assert hybrid.detector is DetectorKind.LEARNED
        assert hybrid.planner is PlannerKind.STRAIGHT_LINE
        assert hybrid.generation is None
        assert hybrid.name == "V3-straight"


class TestConfigSerialization:
    def test_round_trip_presets(self):
        for config in (mls_v1(), mls_v2(), mls_v3()):
            assert LandingSystemConfig.from_dict(config.to_dict()) == config

    def test_round_trip_custom_with_overrides_via_json(self):
        config = LandingSystemConfig.custom(
            "opencv", "dense-grid", "straight-line", name="tuned", cruise_altitude=20.0
        ).with_validation(required_hits=9).with_safety(obstacle_clearance=0.8)
        payload = json.dumps(config.to_dict())
        restored = LandingSystemConfig.from_dict(json.loads(payload))
        assert restored == config
        assert restored.validation.required_hits == 9
        assert restored.safety.obstacle_clearance == 0.8
        assert restored.name == "tuned"

    def test_partial_dict_uses_defaults(self):
        config = LandingSystemConfig.from_dict({"detector": "tph-yolo"})
        assert config.detector is DetectorKind.LEARNED
        assert config.mapper is MapperKind.NONE

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown LandingSystemConfig keys"):
            LandingSystemConfig.from_dict({"detectr": "opencv"})

    def test_generation_round_trips(self):
        data = mls_v2().to_dict()
        assert data["generation"] == "MLS-V2"
        assert LandingSystemConfig.from_dict(data).generation is SystemGeneration.MLS_V2


# ---------------------------------------------------------------------- #
# campaign
# ---------------------------------------------------------------------- #
class TestCampaignBuilder:
    def test_jobs_preserve_mission_overrides_per_repetition(self):
        # Regression test: the old runner rebuilt MissionConfig by hand and
        # silently dropped collision_margin / success_radius /
        # min_marker_pixels_for_visibility / end_on_failsafe overrides.
        mission = MissionConfig(
            collision_margin=0.2,
            success_radius=2.5,
            min_marker_pixels_for_visibility=3.0,
            end_on_failsafe=False,
        )
        jobs = Campaign(mls_v1()).scenarios(2).repetitions(2).mission(mission).jobs()
        assert len(jobs) == 4
        for job in jobs:
            assert job.mission.collision_margin == 0.2
            assert job.mission.success_radius == 2.5
            assert job.mission.min_marker_pixels_for_visibility == 3.0
            assert job.mission.end_on_failsafe is False
        assert [job.mission.camera_seed for job in jobs] == [0, 1, 0, 1]

    def test_systems_accepts_presets_generations_and_configs(self):
        campaign = Campaign().systems("mls-v1", SystemGeneration.MLS_V2, mls_v3())
        assert [job.system.name for job in campaign.scenarios(1).repetitions(1).jobs()] == [
            "MLS-V1",
            "MLS-V2",
            "MLS-V3",
        ]

    def test_network_loaded_only_for_learned_detectors(self):
        v1_jobs = Campaign(mls_v1()).scenarios(1).repetitions(1).jobs()
        v3_jobs = Campaign(mls_v3()).scenarios(1).repetitions(1).jobs()
        assert not v1_jobs[0].needs_network
        assert v3_jobs[0].needs_network

    def test_platform_validation(self):
        with pytest.raises(ValueError, match="unknown platform"):
            Campaign().platform("abacus")
        Campaign().platform("jetson-nano")  # known key validates

    def test_fluent_setters_validate(self):
        with pytest.raises(ValueError):
            Campaign().scenarios(0)
        with pytest.raises(ValueError):
            Campaign().repetitions(-1)
        with pytest.raises(ValueError):
            Campaign().parallel(0)
        with pytest.raises(TypeError):
            Campaign().systems(42)

    def test_jobs_are_picklable(self):
        import pickle

        job = Campaign(mls_v3()).scenarios(1).repetitions(1).jobs()[0]
        clone = pickle.loads(pickle.dumps(job))
        assert isinstance(clone, CampaignJob)
        assert clone.system == job.system
        assert clone.scenario.scenario_id == job.scenario.scenario_id

    def test_duplicate_system_names_rejected(self):
        campaign = Campaign(mls_v1(), mls_v1().with_validation(required_hits=9)).scenarios(1)
        with pytest.raises(ValueError, match="duplicate system names.*MLS-V1"):
            campaign.run()

    def test_unpicklable_platform_falls_back_to_serial(self):
        from repro.core.platform import DesktopPlatform

        campaign = (
            Campaign(mls_v1())
            .scenarios(1)
            .repetitions(2)
            .mission(MissionConfig(max_mission_time=5.0))
            .platform(lambda: DesktopPlatform())
            .parallel(2)
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = campaign.run()
        assert len(results["MLS-V1"].records) == 2

    def test_mapping_stack_memory_duck_typed(self):
        from repro.core.registry import MappingStack

        assert MappingStack().memory_bytes() == 0
        assert MappingStack(primary=object()).memory_bytes() == 0


@pytest.mark.slow
class TestCampaignExecution:
    def _signature(self, results):
        out = {}
        for name, campaign in results.items():
            out[name] = [
                (
                    record.scenario_id,
                    record.outcome.value,
                    None if record.landing_error != record.landing_error
                    else round(record.landing_error, 9),
                    round(record.mission_time, 6),
                    record.aborts,
                    record.planner_failures,
                )
                for record in campaign.records
            ]
        return out

    def test_parallel_results_identical_to_serial(self):
        suite = build_evaluation_suite().subset(2)
        suite.repetitions = 1
        systems = [
            mls_v1(),
            LandingSystemConfig.custom(
                "opencv", "dense-grid", "straight-line", name="V1+grid"
            ),
        ]
        mission = MissionConfig(max_mission_time=30.0)

        serial = Campaign(*systems).suite(suite).mission(mission).serial().run()
        parallel = Campaign(*systems).suite(suite).mission(mission).parallel(2).run()

        assert self._signature(serial) == self._signature(parallel)
        assert {name: len(c.records) for name, c in serial.items()} == {
            "MLS-V1": 2,
            "V1+grid": 2,
        }

    def test_run_campaign_wrapper_keeps_working(self):
        suite = build_evaluation_suite().subset(1)
        suite.repetitions = 1
        results = run_campaign(
            [mls_v1()],
            campaign_config=CampaignConfig(mission=MissionConfig(max_mission_time=10.0)),
            suite=suite,
        )
        assert set(results) == {"MLS-V1"}
        assert len(results["MLS-V1"].records) == 1
