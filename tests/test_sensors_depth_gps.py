"""Tests for the depth camera, GPS, IMU, rangefinder and barometer."""

import numpy as np
import pytest

from repro.geometry import AABB, Pose, Vec3
from repro.sensors.barometer import Barometer
from repro.sensors.depth import DepthCamera, DepthCameraSpec, PointCloud
from repro.sensors.gps import GpsSensor
from repro.sensors.imu import ImuQuality, ImuSensor
from repro.sensors.rangefinder import Rangefinder
from repro.world.obstacles import building, tree
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World


def make_world(obstacles=None, weather=None):
    return World(
        name="depth-test",
        bounds=AABB(Vec3(-60, -60, 0), Vec3(60, 60, 40)),
        obstacles=obstacles or [building(8, 0, 4, 4, 10, name="block")],
        weather=weather or Weather.clear(),
    )


class TestDepthCamera:
    def test_forward_camera_sees_building(self):
        camera = DepthCamera(facing="forward", depth_noise_std=0.0)
        cloud = camera.capture(make_world(), Pose.at(Vec3(0, 0, 5)))
        assert len(cloud) > 0
        near_building = [p for p in cloud if abs(p.x - 6.0) < 1.0]
        assert near_building

    def test_downward_camera_sees_ground(self):
        camera = DepthCamera(facing="down", depth_noise_std=0.0)
        cloud = camera.capture(make_world(obstacles=[]), Pose.at(Vec3(0, 0, 8)))
        assert len(cloud) > 0
        assert all(abs(p.z) < 0.5 for p in cloud)

    def test_estimation_error_shifts_cloud(self):
        camera = DepthCamera(facing="down", depth_noise_std=0.0)
        true_pose = Pose.at(Vec3(0, 0, 8))
        shifted = Pose.at(Vec3(3, 0, 8))
        cloud = camera.capture(make_world(obstacles=[]), true_pose, estimated_pose=shifted)
        mean_x = float(np.mean([p.x for p in cloud]))
        assert mean_x == pytest.approx(3.0, abs=0.5)

    def test_rain_causes_dropouts(self):
        clear_camera = DepthCamera(facing="down", seed=5)
        rain_camera = DepthCamera(facing="down", seed=5)
        storm = Weather.preset(WeatherCondition.STORM, 1.0)
        clear_cloud = clear_camera.capture(make_world(obstacles=[]), Pose.at(Vec3(0, 0, 8)))
        rain_cloud = rain_camera.capture(make_world(obstacles=[], weather=storm), Pose.at(Vec3(0, 0, 8)))
        assert len(rain_cloud) < len(clear_cloud)

    def test_canopy_invisible_from_afar(self):
        obstacles = tree(10, 0, canopy_radius=3, height=9, canopy_visibility_range=4.0)
        world = make_world(obstacles=obstacles)
        camera = DepthCamera(facing="forward", depth_noise_std=0.0)
        far_cloud = camera.capture(world, Pose.at(Vec3(-10, 0, 6)))
        near_cloud = camera.capture(world, Pose.at(Vec3(5, 0, 6)))
        canopy_hits = lambda cloud: [p for p in cloud if p.z > 4.0 and 6 < p.x < 14]
        assert not canopy_hits(far_cloud)
        assert canopy_hits(near_cloud)

    def test_invalid_facing_rejected(self):
        with pytest.raises(ValueError):
            DepthCamera(facing="sideways")

    def test_merged_clouds_concatenate(self):
        a = PointCloud(points=[Vec3(1, 1, 1)], timestamp=1.0)
        b = PointCloud(points=[Vec3(2, 2, 2)], timestamp=2.0)
        merged = a.merged_with(b)
        assert len(merged) == 2 and merged.timestamp == 2.0


class TestGps:
    def test_clear_weather_fix_is_close(self):
        gps = GpsSensor(seed=1)
        fix = gps.measure(Vec3(10, 20, 30), Weather.clear(), 1.0)
        assert fix.position.distance_to(Vec3(10, 20, 30)) < 3.0
        assert fix.is_healthy

    def test_drift_grows_with_degradation(self):
        calm_gps = GpsSensor(seed=2)
        storm_gps = GpsSensor(seed=2)
        storm = Weather.preset(WeatherCondition.STORM, 1.0)
        for t in range(300):
            calm_gps.measure(Vec3.zero(), Weather.clear(), float(t))
            storm_gps.measure(Vec3.zero(), storm, float(t))
        assert storm_gps.current_drift.norm() > calm_gps.current_drift.norm()

    def test_dop_stays_in_paper_band(self):
        gps = GpsSensor(seed=3)
        storm = Weather.preset(WeatherCondition.STORM, 1.0)
        for t in range(100):
            fix = gps.measure(Vec3.zero(), storm, float(t))
            assert fix.hdop <= 8.0 and fix.vdop <= 8.0

    def test_reset_drift(self):
        gps = GpsSensor(seed=4)
        storm = Weather.preset(WeatherCondition.STORM, 1.0)
        for t in range(100):
            gps.measure(Vec3.zero(), storm, float(t))
        gps.reset_drift()
        assert gps.current_drift.norm() == 0.0


class TestImuRangefinderBarometer:
    def test_industrial_grade_is_quieter(self):
        consumer = ImuSensor(ImuQuality.consumer_grade(), seed=1)
        industrial = ImuSensor(ImuQuality.industrial_grade(), seed=1)
        consumer_errors, industrial_errors = [], []
        for t in range(200):
            truth = Vec3(0, 0, 0)
            consumer_errors.append(consumer.measure(truth, truth, t).acceleration.norm())
            industrial_errors.append(industrial.measure(truth, truth, t).acceleration.norm())
        assert np.mean(industrial_errors) < np.mean(consumer_errors)

    def test_rangefinder_reads_altitude_over_ground(self):
        world = make_world(obstacles=[])
        reading = Rangefinder(noise_std=0.0).measure(world, Pose.at(Vec3(0, 0, 7.5)))
        assert reading == pytest.approx(7.5, abs=1e-6)

    def test_rangefinder_reads_rooftop(self):
        world = make_world()
        reading = Rangefinder(noise_std=0.0).measure(world, Pose.at(Vec3(8, 0, 15)))
        assert reading == pytest.approx(5.0, abs=1e-6)

    def test_rangefinder_out_of_range(self):
        world = make_world(obstacles=[])
        assert Rangefinder(max_range=5.0).measure(world, Pose.at(Vec3(0, 0, 30))) is None

    def test_barometer_tracks_altitude(self):
        baro = Barometer(noise_std=0.0, drift_rate=0.0)
        assert baro.measure(12.0) == pytest.approx(12.0)

    def test_barometer_drift_is_bounded_short_term(self):
        baro = Barometer(seed=2)
        readings = [baro.measure(10.0) for _ in range(500)]
        assert abs(np.mean(readings) - 10.0) < 1.0
