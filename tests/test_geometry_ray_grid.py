"""Tests for ray traversal, grid indexing and angle helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry import GridIndex, Ray, Vec3
from repro.geometry.grid import angle_difference, wrap_angle
from repro.geometry.ray import bresenham_voxels

coord = st.floats(min_value=-30, max_value=30, allow_nan=False)


class TestRay:
    def test_direction_is_normalised(self):
        ray = Ray(Vec3.zero(), Vec3(0, 0, 10))
        assert ray.direction.norm() == pytest.approx(1.0)

    def test_zero_direction_raises(self):
        with pytest.raises(ValueError):
            Ray(Vec3.zero(), Vec3.zero())

    def test_point_at_distance(self):
        ray = Ray(Vec3(1, 0, 0), Vec3(1, 0, 0))
        assert ray.point_at(3.0) == Vec3(4, 0, 0)

    def test_between_points(self):
        ray = Ray.between(Vec3(0, 0, 0), Vec3(0, 5, 0))
        assert ray.direction.is_close(Vec3(0, 1, 0))


class TestBresenhamVoxels:
    def test_single_voxel_when_start_equals_end(self):
        voxels = list(bresenham_voxels(Vec3(0.2, 0.2, 0.2), Vec3(0.3, 0.3, 0.3), 1.0))
        assert voxels == [(0, 0, 0)]

    def test_straight_line_along_x(self):
        voxels = list(bresenham_voxels(Vec3(0.5, 0.5, 0.5), Vec3(3.5, 0.5, 0.5), 1.0))
        assert voxels == [(0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0)]

    def test_negative_direction(self):
        voxels = list(bresenham_voxels(Vec3(0.5, 0.5, 0.5), Vec3(-1.5, 0.5, 0.5), 1.0))
        assert voxels[0] == (0, 0, 0)
        assert voxels[-1] == (-2, 0, 0)

    def test_resolution_must_be_positive(self):
        with pytest.raises(ValueError):
            list(bresenham_voxels(Vec3.zero(), Vec3(1, 1, 1), 0.0))

    @given(coord, coord, coord, coord, coord, coord)
    def test_traversal_starts_and_ends_at_correct_voxels(self, x0, y0, z0, x1, y1, z1):
        start, end = Vec3(x0, y0, z0), Vec3(x1, y1, z1)
        voxels = list(bresenham_voxels(start, end, 0.5))
        index = GridIndex(Vec3.zero(), 0.5)
        assert voxels[0] == index.to_index(start)
        # Endpoints exactly on a voxel boundary may legitimately resolve to a
        # face-adjacent voxel; require the final voxel to be within one cell.
        final, expected = voxels[-1], index.to_index(end)
        assert max(abs(final[i] - expected[i]) for i in range(3)) <= 1

    @given(coord, coord, coord, coord, coord, coord)
    def test_consecutive_voxels_are_face_adjacent(self, x0, y0, z0, x1, y1, z1):
        voxels = list(bresenham_voxels(Vec3(x0, y0, z0), Vec3(x1, y1, z1), 1.0))
        for a, b in zip(voxels, voxels[1:]):
            assert sum(abs(a[i] - b[i]) for i in range(3)) == 1


class TestGridIndex:
    def test_round_trip_center(self):
        grid = GridIndex(Vec3.zero(), 0.5)
        index = grid.to_index(Vec3(1.2, -0.7, 3.3))
        center = grid.to_center(index)
        assert grid.to_index(center) == index

    def test_negative_coordinates_floor(self):
        grid = GridIndex(Vec3.zero(), 1.0)
        assert grid.to_index(Vec3(-0.5, -1.5, 0.5)) == (-1, -2, 0)

    def test_voxel_bounds_contain_center(self):
        grid = GridIndex(Vec3(1, 1, 1), 2.0)
        lo, hi = grid.voxel_bounds((0, 0, 0))
        center = grid.to_center((0, 0, 0))
        assert lo.x <= center.x <= hi.x

    def test_snap_is_idempotent(self):
        grid = GridIndex(Vec3.zero(), 0.25)
        p = Vec3(0.6, 0.6, 0.6)
        assert grid.snap(grid.snap(p)) == grid.snap(p)

    def test_zero_resolution_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(Vec3.zero(), 0.0)


class TestAngles:
    def test_wrap_within_range(self):
        assert wrap_angle(0.0) == pytest.approx(0.0)
        assert wrap_angle(math.pi) == pytest.approx(math.pi)
        assert wrap_angle(3 * math.pi) == pytest.approx(math.pi)
        assert wrap_angle(-3 * math.pi) == pytest.approx(math.pi)

    def test_angle_difference_shortest_path(self):
        assert angle_difference(0.1, -0.1) == pytest.approx(0.2)
        assert abs(angle_difference(math.pi - 0.05, -math.pi + 0.05)) == pytest.approx(0.1, abs=1e-9)

    @given(st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_wrap_angle_always_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -math.pi < wrapped <= math.pi + 1e-12
