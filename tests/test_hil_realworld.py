"""Tests for the Jetson platform model, TensorRT model and real-world effects."""

import numpy as np
import pytest

from repro.core.landing_system import ModuleTimings
from repro.core.platform import DesktopPlatform
from repro.geometry import Pose, Vec3
from repro.hil.jetson import JetsonNanoPlatform, JetsonNanoSpec
from repro.hil.monitor import ResourceMonitor, UtilisationSample
from repro.hil.tensorrt import TensorRtEngine
from repro.perception.neural.network import PATCH_SIZE
from repro.perception.neural.training import load_pretrained_detector_net
from repro.realworld.field_test import FieldTestConfig, build_field_world, simplify_scenario
from repro.realworld.gps_drift import characterise_gps_drift
from repro.realworld.hardware import CUAV_X7_PRO, PIXHAWK_2_4_8
from repro.realworld.sensor_faults import characterise_point_cloud_faults
from repro.world.map_generator import MapStyle
from repro.world.obstacles import building
from repro.world.scenario import Scenario
from repro.world.weather import Weather, WeatherCondition


def timings(detection=0.03, mapping=0.028, planning=0.12):
    return ModuleTimings(detection=detection, mapping=mapping, planning=planning)


class TestDesktopPlatform:
    def test_never_misses_deadlines(self):
        platform = DesktopPlatform()
        for _ in range(50):
            budget = platform.schedule_tick(timings(), 0.2)
            assert budget.allow_replan and not budget.deadline_missed


class TestJetsonPlatform:
    def test_heavy_load_misses_deadlines(self):
        platform = JetsonNanoPlatform(seed=1)
        misses = 0
        for _ in range(100):
            budget = platform.schedule_tick(timings(), 0.2)
            misses += budget.deadline_missed
        assert misses > 0
        assert platform.deadline_miss_rate > 0.0

    def test_light_load_keeps_up(self):
        platform = JetsonNanoPlatform(seed=2)
        misses = 0
        for _ in range(100):
            budget = platform.schedule_tick(timings(detection=0.012, mapping=0.0, planning=0.001), 0.2)
            misses += budget.deadline_missed
        assert misses < 10

    def test_memory_stays_within_budget_and_is_high(self):
        platform = JetsonNanoPlatform(seed=3, map_memory_provider=lambda: 4_000_000)
        budget = platform.schedule_tick(timings(), 0.2)
        assert budget.memory_mb <= JetsonNanoSpec().usable_memory_mb
        assert budget.memory_mb > 1800.0

    def test_real_world_spec_uses_more_resources(self):
        hil = JetsonNanoPlatform(spec=JetsonNanoSpec(), seed=4)
        field = JetsonNanoPlatform(spec=JetsonNanoSpec.real_world(), seed=4)
        hil_budget = [hil.schedule_tick(timings(), 0.2) for _ in range(50)]
        field_budget = [field.schedule_tick(timings(), 0.2) for _ in range(50)]
        assert np.mean([b.cpu_utilisation for b in field_budget]) > np.mean(
            [b.cpu_utilisation for b in hil_budget]
        )
        assert field_budget[0].memory_mb > hil_budget[0].memory_mb

    def test_monitor_records_samples(self):
        platform = JetsonNanoPlatform(seed=5)
        for _ in range(10):
            platform.schedule_tick(timings(), 0.2)
        assert len(platform.monitor) == 10
        summary = platform.monitor.summary()
        assert 0.0 < summary["mean_cpu_utilisation"] <= 1.0


class TestResourceMonitor:
    def test_statistics(self):
        monitor = ResourceMonitor()
        monitor.record(UtilisationSample(0.0, 0.5, 1000, 0.2))
        monitor.record(UtilisationSample(1.0, 0.9, 2000, 0.4))
        assert monitor.mean_cpu == pytest.approx(0.7)
        assert monitor.peak_memory_mb == 2000
        assert monitor.peak_cpu == pytest.approx(0.9)

    def test_empty_monitor_is_safe(self):
        monitor = ResourceMonitor()
        assert monitor.mean_cpu == 0.0 and monitor.peak_memory_mb == 0.0


class TestTensorRt:
    def test_quantised_network_agrees_with_original(self):
        network = load_pretrained_detector_net()
        engine = TensorRtEngine(network)
        patches = np.random.default_rng(0).random((8, PATCH_SIZE, PATCH_SIZE))
        original = network.predict_probability(patches)
        optimized = engine.predict_probability(patches)
        assert np.max(np.abs(original - optimized)) < 0.05

    def test_optimization_report_shows_speedup(self):
        engine = TensorRtEngine(load_pretrained_detector_net())
        report = engine.optimization_report()
        assert report.speedup > 2.0
        assert report.parameter_count > 0
        assert report.max_weight_error < 0.01


class TestHardwareProfiles:
    def test_cuav_is_quieter_than_pixhawk(self):
        pixhawk = PIXHAWK_2_4_8.effective_imu_quality
        cuav = CUAV_X7_PRO.effective_imu_quality
        assert cuav.accel_noise_std < pixhawk.accel_noise_std
        assert cuav.gyro_noise_std < pixhawk.gyro_noise_std


class TestGpsDriftCharacterisation:
    def test_drift_larger_in_storm(self):
        calm = characterise_gps_drift(Weather.clear(), duration=60, seed=1)
        storm = characterise_gps_drift(Weather.preset(WeatherCondition.STORM, 1.0), duration=60, seed=1)
        assert storm.mean_error > calm.mean_error
        assert storm.max_error > 1.0

    def test_dop_stays_in_band_while_drifting(self):
        storm = characterise_gps_drift(Weather.preset(WeatherCondition.STORM, 1.0), duration=60, seed=2)
        assert storm.all_dop_in_band
        assert storm.mean_hdop <= 8.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            characterise_gps_drift(Weather.clear(), duration=0)


class TestPointCloudFaults:
    def make_world(self, weather):
        from repro.geometry import AABB
        from repro.world.world import World

        return World(
            name="faults",
            bounds=AABB(Vec3(-40, -40, 0), Vec3(40, 40, 30)),
            obstacles=[building(6, 0, 4, 4, 8)],
            weather=weather,
        )

    def test_estimation_error_displaces_points(self):
        world = self.make_world(Weather.clear())
        clean = characterise_point_cloud_faults(world, Pose.at(Vec3(0, 0, 5)), Vec3.zero(), captures=3)
        drifted = characterise_point_cloud_faults(world, Pose.at(Vec3(0, 0, 5)), Vec3(2.0, 0, 0), captures=3)
        assert drifted.displaced_fraction > clean.displaced_fraction
        assert drifted.mean_displacement > clean.mean_displacement

    def test_invalid_captures_rejected(self):
        world = self.make_world(Weather.clear())
        with pytest.raises(ValueError):
            characterise_point_cloud_faults(world, Pose.at(Vec3(0, 0, 5)), Vec3.zero(), captures=0)


class TestFieldTestPreparation:
    def make_scenario(self):
        return Scenario.generate("field", MapStyle.RURAL, 2, adverse_weather=False, seed=21)

    def test_simplification_shrinks_distance(self):
        config = FieldTestConfig(max_target_distance=20.0)
        scenario = self.make_scenario()
        simplified = simplify_scenario(scenario, config)
        assert simplified.marker_position.horizontal_norm() <= 20.0 + 1e-6
        # The GPS error offset is preserved.
        original_offset = scenario.gps_target - scenario.marker_position
        new_offset = simplified.gps_target - simplified.marker_position
        assert new_offset.is_close(original_offset, tol=1e-6)

    def test_field_weather_always_has_wind_and_gps_degradation(self):
        config = FieldTestConfig()
        simplified = simplify_scenario(self.make_scenario(), config)
        assert simplified.weather.gps_degradation >= config.minimum_gps_degradation
        assert simplified.weather.wind_speed >= config.minimum_wind_speed

    def test_build_field_world_has_target(self):
        world = build_field_world(self.make_scenario())
        assert world.target_marker is not None
