"""Tests for A*, the EGO local planner, RRT*, trajectories and the spiral."""

import math

import pytest

from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap, InflationConfig
from repro.mapping.octomap import OcTree
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.planning.astar import AStarConfig, AStarPlanner
from repro.planning.ego_planner import EgoLocalPlanner, EgoPlannerConfig
from repro.planning.rrt_star import RrtStarConfig, RrtStarPlanner
from repro.planning.spiral import spiral_search_waypoints
from repro.planning.straight_line import StraightLinePlanner
from repro.planning.trajectory import Trajectory, TrajectoryFollower, shortcut_smooth
from repro.planning.types import PlannerStatus, PlanningProblem, path_length
from repro.sensors.depth import PointCloud


def wall_collision(x_wall=5.0, gap_z=None):
    """Collision predicate: an infinite wall at x = x_wall (with optional gap)."""

    def is_colliding(point: Vec3) -> bool:
        if gap_z is not None and point.z > gap_z:
            return False
        return abs(point.x - x_wall) < 0.6

    return is_colliding


class TestAStar:
    def test_straight_path_in_free_space(self):
        planner = AStarPlanner(lambda p: False, AStarConfig(resolution=1.0))
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(8, 0, 5)))
        assert result.succeeded
        assert result.waypoints[0] == Vec3(0, 0, 5)
        assert result.waypoints[-1] == Vec3(8, 0, 5)

    def test_routes_around_wall(self):
        planner = AStarPlanner(wall_collision(gap_z=8.0), AStarConfig(resolution=1.0, max_expansions=5000))
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(10, 0, 5), max_altitude=12))
        assert result.succeeded
        assert not any(wall_collision(gap_z=8.0)(w) for w in result.waypoints)

    def test_bounded_pool_times_out_on_large_obstacle(self):
        planner = AStarPlanner(wall_collision(), AStarConfig(resolution=1.0, max_expansions=40))
        result = planner.plan(
            PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(10, 0, 5), min_altitude=4, max_altitude=6)
        )
        assert not result.succeeded
        assert result.status in (PlannerStatus.TIMEOUT, PlannerStatus.NO_PATH_FOUND)

    def test_start_or_goal_in_collision(self):
        planner = AStarPlanner(wall_collision(), AStarConfig())
        in_wall = Vec3(5, 0, 5)
        assert (
            planner.plan(PlanningProblem(start=in_wall, goal=Vec3(10, 0, 5))).status
            is PlannerStatus.START_IN_COLLISION
        )
        assert (
            planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=in_wall)).status
            is PlannerStatus.GOAL_IN_COLLISION
        )

    def test_respects_altitude_band(self):
        planner = AStarPlanner(lambda p: False, AStarConfig(resolution=1.0))
        result = planner.plan(
            PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(6, 0, 5), min_altitude=3, max_altitude=7)
        )
        assert all(3 <= w.z <= 7 for w in result.waypoints[1:-1])


class TestStraightLine:
    def test_returns_two_waypoints(self):
        result = StraightLinePlanner().plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(9, 9, 5)))
        assert result.succeeded
        assert len(result.waypoints) == 2
        assert result.cost == pytest.approx(path_length(result.waypoints))


class TestEgoLocalPlanner:
    def make_planner(self, occupied_points=(), max_expansions=900):
        grid = VoxelGrid(VoxelGridConfig(window_size=30.0, resolution=1.0))
        if occupied_points:
            grid.integrate_cloud(PointCloud(points=list(occupied_points), sensor_position=Vec3.zero()))
        return EgoLocalPlanner(grid, EgoPlannerConfig(grid_resolution=1.0, max_expansions=max_expansions))

    def test_plans_in_free_space(self):
        planner = self.make_planner()
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(8, 0, 5)))
        assert result.succeeded
        assert not planner.last_fallback_used

    def test_clips_goal_to_local_horizon(self):
        planner = self.make_planner()
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(100, 0, 5)))
        assert result.succeeded
        assert result.waypoints[-1].horizontal_norm() <= planner.config.local_goal_horizon + 1.0

    def test_avoids_small_known_obstacle(self):
        occupied = [Vec3(4, y * 0.5, 5) for y in range(-4, 5)] + [Vec3(4, y * 0.5, 6) for y in range(-4, 5)]
        planner = self.make_planner(occupied)
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(8, 0, 5)))
        assert result.succeeded
        # Path must not pass through the occupied column at x=4, |y|<2 at z~5-6.
        for waypoint in result.waypoints:
            if abs(waypoint.x - 4) < 0.5 and abs(waypoint.y) < 1.0:
                assert waypoint.z > 6.5 or waypoint.z < 4.0

    def test_falls_back_to_straight_line_when_pool_exhausted(self):
        # A wide dense wall with a tiny expansion budget: the bounded search
        # fails and the planner issues the unsafe straight segment (the
        # paper's observed MLS-V2 behaviour near large buildings).
        occupied = [
            Vec3(4, y, z)
            for y in range(-10, 11)
            for z in range(1, 12)
        ]
        planner = self.make_planner(occupied, max_expansions=30)
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(9, 0, 5)))
        assert result.succeeded
        assert planner.last_fallback_used
        assert len(result.waypoints) == 2

    def test_path_is_safe_checks_current_map(self):
        occupied = [Vec3(4, 0, 5)]
        planner = self.make_planner(occupied)
        assert not planner.path_is_safe([Vec3(0, 0, 5), Vec3(8, 0, 5)])
        assert planner.path_is_safe([Vec3(0, 5, 5), Vec3(8, 5, 5)])


class TestRrtStar:
    def make_inflated(self, occupied_points=()):
        tree = OcTree()
        for point in occupied_points:
            for _ in range(3):
                tree.update_voxel(point, hit=True)
        return InflatedMap(tree, InflationConfig(vehicle_radius=0.3, safety_margin=0.4))

    def test_plans_in_free_space(self):
        planner = RrtStarPlanner(self.make_inflated(), RrtStarConfig(seed=1, max_iterations=300))
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(10, 0, 5), time_budget=2.0))
        assert result.succeeded
        assert result.waypoints[-1] == Vec3(10, 0, 5)

    def test_avoids_known_wall(self):
        wall_points = [Vec3(5, y * 0.5, z * 0.5) for y in range(-8, 9) for z in range(4, 16)]
        inflated = self.make_inflated(wall_points)
        planner = RrtStarPlanner(inflated, RrtStarConfig(seed=2, max_iterations=900))
        result = planner.plan(
            PlanningProblem(start=Vec3(0, 0, 4), goal=Vec3(10, 0, 4), time_budget=5.0, max_altitude=20)
        )
        assert result.succeeded
        assert not inflated.path_colliding(result.waypoints)

    def test_reports_failure_from_occupied_start(self):
        inflated = self.make_inflated([Vec3(0, 0, 5)])
        planner = RrtStarPlanner(inflated, RrtStarConfig(seed=3))
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(10, 0, 5)))
        assert result.status is PlannerStatus.START_IN_COLLISION

    def test_deterministic_given_seed(self):
        a = RrtStarPlanner(self.make_inflated(), RrtStarConfig(seed=7, max_iterations=200))
        b = RrtStarPlanner(self.make_inflated(), RrtStarConfig(seed=7, max_iterations=200))
        problem = PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(8, 3, 5), time_budget=2.0)
        result_a = a.plan(problem)
        result_b = b.plan(problem)
        assert [w.to_tuple() for w in result_a.waypoints] == [w.to_tuple() for w in result_b.waypoints]

    def test_respects_time_budget(self):
        planner = RrtStarPlanner(self.make_inflated(), RrtStarConfig(seed=4, max_iterations=100000))
        result = planner.plan(PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(30, 30, 5), time_budget=0.1))
        assert result.planning_time < 1.5

    def test_time_budget_is_a_deterministic_iteration_cap(self):
        # The budget is converted through the declared per-iteration cost,
        # never measured mid-search: host load must not change the tree.
        config = RrtStarConfig(seed=4, max_iterations=100000)
        problem = PlanningProblem(start=Vec3(0, 0, 5), goal=Vec3(30, 30, 5), time_budget=0.05)
        results = [
            RrtStarPlanner(self.make_inflated(), config).plan(problem) for _ in range(2)
        ]
        expected = int(0.05 / config.nominal_iteration_cost)
        assert [r.iterations for r in results] == [expected, expected]
        assert [w.to_tuple() for w in results[0].waypoints] == [
            w.to_tuple() for w in results[1].waypoints
        ]


class TestTrajectory:
    def test_length_and_goal(self):
        trajectory = Trajectory([Vec3(0, 0, 0), Vec3(3, 0, 0), Vec3(3, 4, 0)])
        assert trajectory.length == pytest.approx(7.0)
        assert trajectory.goal == Vec3(3, 4, 0)

    def test_sample_every_spacing(self):
        trajectory = Trajectory([Vec3(0, 0, 0), Vec3(10, 0, 0)])
        samples = trajectory.sample_every(2.0)
        assert len(samples) >= 6
        assert samples[0] == Vec3(0, 0, 0) and samples[-1] == Vec3(10, 0, 0)

    def test_max_corner_angle(self):
        straight = Trajectory([Vec3(0, 0, 0), Vec3(5, 0, 0), Vec3(10, 0, 0)])
        corner = Trajectory([Vec3(0, 0, 0), Vec3(5, 0, 0), Vec3(5, 5, 0)])
        assert straight.max_corner_angle() == pytest.approx(0.0, abs=1e-6)
        assert corner.max_corner_angle() == pytest.approx(math.pi / 2, abs=1e-6)

    def test_follower_advances_through_waypoints(self):
        follower = TrajectoryFollower(Trajectory([Vec3(0, 0, 0), Vec3(5, 0, 0), Vec3(10, 0, 0)]), acceptance_radius=1.0)
        assert follower.current_target() == Vec3(0, 0, 0)
        target = follower.advance(Vec3(0.5, 0, 0))
        assert target == Vec3(5, 0, 0)
        target = follower.advance(Vec3(4.8, 0, 0))
        assert target == Vec3(10, 0, 0)

    def test_follower_completes(self):
        follower = TrajectoryFollower(Trajectory([Vec3(0, 0, 0), Vec3(2, 0, 0)]), acceptance_radius=1.0)
        follower.advance(Vec3(0, 0, 0))
        follower.advance(Vec3(2, 0, 0))
        assert follower.is_complete
        assert follower.remaining_waypoints() == []

    def test_shortcut_smoothing_removes_redundant_waypoints(self):
        waypoints = [Vec3(0, 0, 0), Vec3(1, 1, 0), Vec3(2, 0, 0), Vec3(4, 0, 0)]
        smoothed = shortcut_smooth(waypoints, lambda a, b: True)
        assert smoothed == [Vec3(0, 0, 0), Vec3(4, 0, 0)]

    def test_shortcut_smoothing_respects_collisions(self):
        waypoints = [Vec3(0, 0, 0), Vec3(0, 5, 0), Vec3(10, 5, 0), Vec3(10, 0, 0)]
        blocked = lambda a, b: not (min(a.y, b.y) < 2.5 and abs(a.x - b.x) > 5)
        smoothed = shortcut_smooth(waypoints, blocked)
        assert smoothed[0] == waypoints[0] and smoothed[-1] == waypoints[-1]
        assert len(smoothed) >= 3


class TestSpiral:
    def test_starts_at_center_and_grows(self):
        waypoints = spiral_search_waypoints(Vec3(10, 10, 0), altitude=8.0, max_radius=12.0)
        assert waypoints[0] == Vec3(10, 10, 8.0)
        radii = [w.horizontal_distance_to(Vec3(10, 10, 0)) for w in waypoints]
        assert radii[-1] > radii[1]
        assert all(w.z == pytest.approx(8.0) for w in waypoints)

    def test_covers_radius_with_spacing(self):
        waypoints = spiral_search_waypoints(Vec3.zero(), altitude=5.0, max_radius=10.0, spacing=2.0)
        max_radius = max(w.horizontal_norm() for w in waypoints)
        assert max_radius == pytest.approx(10.0, abs=1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            spiral_search_waypoints(Vec3.zero(), 5.0, max_radius=0.0)
        with pytest.raises(ValueError):
            spiral_search_waypoints(Vec3.zero(), 5.0, points_per_turn=2)
