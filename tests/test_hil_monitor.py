"""Edge-case tests for the HIL resource monitor (repro.hil.monitor).

The mean/peak arithmetic lives in ResourceStats; these tests pin the
monitor's delegation to it across the degenerate shapes a campaign can
produce: no samples at all (a run that fails before the first tick), a
single sample, and samples where peak and mean genuinely diverge.
"""

import pytest

from repro.core.metrics import ResourceStats
from repro.hil.monitor import ResourceMonitor, UtilisationSample


def sample(ts, cpu, mem, gpu, cores=()):
    return UtilisationSample(
        timestamp=ts,
        cpu_utilisation=cpu,
        memory_mb=mem,
        gpu_utilisation=gpu,
        per_core_utilisation=cores,
    )


class TestEmptyMonitor:
    def test_no_samples_reports_zeroes_not_errors(self):
        monitor = ResourceMonitor()
        assert len(monitor) == 0
        assert monitor.mean_cpu == 0.0
        assert monitor.peak_cpu == 0.0
        assert monitor.mean_memory_mb == 0.0
        assert monitor.peak_memory_mb == 0.0
        assert monitor.mean_gpu == 0.0

    def test_empty_summary(self):
        summary = ResourceMonitor().summary()
        assert summary == {
            "mean_cpu_utilisation": 0.0,
            "peak_cpu_utilisation": 0.0,
            "mean_memory_mb": 0.0,
            "peak_memory_mb": 0.0,
            "mean_gpu_utilisation": 0.0,
            "samples": 0.0,
        }

    def test_empty_to_stats_round_trips(self):
        stats = ResourceMonitor().to_stats()
        assert isinstance(stats, ResourceStats)
        assert stats.cpu_utilisation_samples == []
        assert ResourceStats.from_dict(stats.to_dict()).mean_cpu == 0.0


class TestSingleSample:
    def test_mean_equals_peak_equals_value(self):
        monitor = ResourceMonitor()
        monitor.record(sample(0.0, 0.62, 2213.0, 0.4))
        assert len(monitor) == 1
        assert monitor.mean_cpu == monitor.peak_cpu == 0.62
        assert monitor.mean_memory_mb == monitor.peak_memory_mb == 2213.0
        assert monitor.mean_gpu == 0.4

    def test_per_core_utilisation_defaults_empty(self):
        bare = sample(0.0, 0.5, 100.0, 0.0)
        assert bare.per_core_utilisation == ()
        cored = sample(0.0, 0.5, 100.0, 0.0, cores=(0.9, 0.8, 0.7, 0.6))
        assert len(cored.per_core_utilisation) == 4


class TestPeakVersusMean:
    def test_peak_tracks_max_not_last(self):
        monitor = ResourceMonitor()
        monitor.record(sample(0.0, 0.20, 1000.0, 0.1))
        monitor.record(sample(1.0, 0.90, 2900.0, 0.8))  # the spike
        monitor.record(sample(2.0, 0.40, 1500.0, 0.3))
        assert monitor.peak_cpu == 0.90
        assert monitor.peak_memory_mb == 2900.0
        assert monitor.mean_cpu == pytest.approx(0.5)
        assert monitor.mean_memory_mb == pytest.approx(1800.0)
        assert monitor.mean_gpu == pytest.approx(0.4)

    def test_summary_rounds_and_counts(self):
        monitor = ResourceMonitor()
        monitor.record(sample(0.0, 0.3333333, 2211.11, 0.12345))
        monitor.record(sample(1.0, 0.6666667, 2255.55, 0.54321))
        summary = monitor.summary()
        assert summary["mean_cpu_utilisation"] == 0.5
        assert summary["peak_cpu_utilisation"] == 0.667
        assert summary["mean_memory_mb"] == 2233.3
        assert summary["peak_memory_mb"] == 2255.6
        assert summary["mean_gpu_utilisation"] == 0.333
        assert summary["samples"] == 2.0

    def test_to_stats_merge_accumulates_across_runs(self):
        first, second = ResourceMonitor(), ResourceMonitor()
        first.record(sample(0.0, 0.2, 1000.0, 0.1))
        second.record(sample(0.0, 0.8, 2000.0, 0.9))
        stats = first.to_stats()
        stats.merge(second.to_stats())
        assert stats.mean_cpu == pytest.approx(0.5)
        assert stats.peak_memory_mb == 2000.0
