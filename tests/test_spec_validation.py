"""Tests for structured suite-spec/fault-axis validation
(repro.world.spec_validation) and its CLI wiring."""

import json

import pytest

from repro.faults.spec import FAULT_PRESETS, FaultSpec
from repro.scenarios import main as scenarios_main
from repro.world.scenario_gen import SUITE_PRESETS, SuiteSpec
from repro.world.spec_validation import (
    SpecIssue,
    SpecValidationError,
    load_suite_spec,
    validate_fault_axis,
    validate_suite_spec,
)


class TestValidateSuiteSpec:
    def test_valid_spec_round_trips(self):
        original = SUITE_PRESETS["smoke"]
        rebuilt = validate_suite_spec(original.to_dict())
        assert isinstance(rebuilt, SuiteSpec)
        assert rebuilt.to_dict() == original.to_dict()

    def test_every_problem_reported_at_once(self):
        with pytest.raises(SpecValidationError) as excinfo:
            validate_suite_spec(
                {
                    "count": 0,
                    "seed": "seven",
                    "bogus": 1,
                    "name": 3,
                    "scenario": {"wrong_axis": 1},
                }
            )
        fields = {issue.field for issue in excinfo.value.issues}
        assert {"count", "seed", "bogus", "name", "scenario.wrong_axis"} <= fields

    def test_error_is_a_value_error_with_readable_str(self):
        with pytest.raises(ValueError) as excinfo:
            validate_suite_spec({"count": -2})
        message = str(excinfo.value)
        assert "invalid suite spec" in message
        assert "count" in message

    def test_to_payload_shape(self):
        error = SpecValidationError(
            [SpecIssue("count", "must be positive, got 0")]
        )
        payload = error.to_payload()
        assert payload == {
            "error": "invalid suite spec",
            "issues": [{"field": "count", "reason": "must be positive, got 0"}],
        }

    def test_non_object_payload(self):
        with pytest.raises(SpecValidationError, match="expected a SuiteSpec object"):
            validate_suite_spec([1, 2, 3])

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SpecValidationError) as excinfo:
            validate_suite_spec({"count": True})
        assert excinfo.value.issues[0].field == "count"


class TestValidateFaultAxis:
    def test_preset_name_resolves_without_paths(self):
        specs = validate_fault_axis("smoke", allow_paths=False)
        assert specs == FAULT_PRESETS["smoke"]

    def test_path_like_string_refused_without_paths(self):
        with pytest.raises(SpecValidationError, match="file paths are not accepted"):
            validate_fault_axis("plans/faults.json", allow_paths=False)

    def test_inline_spec_list(self):
        payload = [spec.to_dict() for spec in FAULT_PRESETS["smoke"]]
        specs = validate_fault_axis(payload, allow_paths=False)
        assert all(isinstance(spec, FaultSpec) for spec in specs)
        assert [s.to_dict() for s in specs] == payload

    def test_bad_list_items_reported_per_index(self):
        with pytest.raises(SpecValidationError) as excinfo:
            validate_fault_axis([42, {"kind": "nope"}], allow_paths=False)
        fields = [issue.field for issue in excinfo.value.issues]
        assert fields[0] == "faults[0]"
        assert fields[1] == "faults[1]"

    def test_none_is_empty(self):
        assert validate_fault_axis(None) == ()


class TestLoadSuiteSpec:
    def test_reads_and_validates(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SUITE_PRESETS["smoke"].to_dict()))
        spec = load_suite_spec(path)
        assert spec.to_dict() == SUITE_PRESETS["smoke"].to_dict()

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_suite_spec(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecValidationError, match="not valid JSON"):
            load_suite_spec(path)


class TestScenariosCliSpec:
    def test_generate_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SUITE_PRESETS["smoke"].to_dict()))
        assert scenarios_main(
            ["generate", "--spec", str(path), "--count", "3", "--seed", "5"]
        ) == 0
        assert "3" in capsys.readouterr().out

    def test_invalid_spec_exits_2_with_issue_list(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"count": 0, "wrong": 1}))
        assert scenarios_main(["generate", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert "invalid suite spec" in err
        assert "count" in err and "wrong" in err
