"""Tests for the dense voxel grid, the octree and obstacle inflation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap, InflationConfig
from repro.mapping.interface import OccupancyMap
from repro.mapping.octomap import OcTree, OcTreeConfig
from repro.mapping.voxel_grid import VoxelGrid, VoxelGridConfig
from repro.sensors.depth import PointCloud

coord = st.floats(min_value=-20, max_value=20, allow_nan=False)


def cloud_at(points, sensor=Vec3(0, 0, 5)):
    return PointCloud(points=points, sensor_position=sensor)


class TestVoxelGrid:
    def test_implements_protocol(self):
        assert isinstance(VoxelGrid(), OccupancyMap)

    def test_integrated_points_become_occupied(self):
        grid = VoxelGrid()
        grid.integrate_cloud(cloud_at([Vec3(2, 3, 4)]))
        assert grid.is_occupied(Vec3(2, 3, 4))
        assert grid.is_known(Vec3(2, 3, 4))
        assert grid.occupied_voxel_count() == 1

    def test_unknown_space_reports_free(self):
        grid = VoxelGrid()
        assert not grid.is_occupied(Vec3(5, 5, 5))
        assert not grid.is_known(Vec3(5, 5, 5))

    def test_points_outside_window_ignored(self):
        grid = VoxelGrid(VoxelGridConfig(window_size=10.0))
        grid.integrate_cloud(cloud_at([Vec3(50, 0, 2)]))
        assert grid.occupied_voxel_count() == 0

    def test_recenter_forgets_old_data(self):
        grid = VoxelGrid(VoxelGridConfig(window_size=16.0))
        grid.integrate_cloud(cloud_at([Vec3(2, 0, 2)]))
        assert grid.is_occupied(Vec3(2, 0, 2))
        grid.recenter(Vec3(30, 0, 5))
        assert not grid.is_occupied(Vec3(2, 0, 2))

    def test_small_moves_do_not_recenter(self):
        grid = VoxelGrid(VoxelGridConfig(window_size=24.0))
        grid.integrate_cloud(cloud_at([Vec3(2, 0, 2)]))
        grid.recenter(Vec3(1.0, 0, 5))
        assert grid.is_occupied(Vec3(2, 0, 2))

    def test_mark_free_clears_voxel(self):
        grid = VoxelGrid()
        grid.integrate_cloud(cloud_at([Vec3(2, 0, 2)]))
        grid.mark_free(Vec3(2, 0, 2))
        assert not grid.is_occupied(Vec3(2, 0, 2))
        assert grid.is_known(Vec3(2, 0, 2))

    def test_memory_is_dense(self):
        small = VoxelGrid(VoxelGridConfig(window_size=10.0, height=10.0, resolution=1.0))
        large = VoxelGrid(VoxelGridConfig(window_size=40.0, height=10.0, resolution=1.0))
        assert large.memory_bytes() > small.memory_bytes() * 10

    def test_occupied_points_lists_voxel_centers(self):
        grid = VoxelGrid()
        grid.integrate_cloud(cloud_at([Vec3(2, 3, 4)]))
        points = grid.occupied_points()
        assert len(points) == 1
        assert points[0].distance_to(Vec3(2, 3, 4)) < 1.0


class TestOcTree:
    def test_implements_protocol(self):
        assert isinstance(OcTree(), OccupancyMap)

    def test_hit_marks_occupied_after_updates(self):
        tree = OcTree()
        for _ in range(3):
            tree.update_voxel(Vec3(2, 2, 2), hit=True)
        assert tree.is_occupied(Vec3(2, 2, 2))
        assert tree.occupancy_probability(Vec3(2, 2, 2)) > 0.8

    def test_misses_carve_free_space(self):
        tree = OcTree()
        tree.update_voxel(Vec3(2, 2, 2), hit=True)
        for _ in range(5):
            tree.update_voxel(Vec3(2, 2, 2), hit=False)
        assert not tree.is_occupied(Vec3(2, 2, 2))
        assert tree.is_known(Vec3(2, 2, 2))

    def test_unknown_space_probability_half(self):
        tree = OcTree()
        assert tree.occupancy_probability(Vec3(10, 10, 10)) == pytest.approx(0.5)

    def test_insert_ray_occupies_endpoint_and_frees_path(self):
        tree = OcTree()
        origin = Vec3(0, 0, 5)
        end = Vec3(6, 0, 5)
        for _ in range(3):
            tree.insert_ray(origin, end)
        assert tree.is_occupied(end)
        assert not tree.is_occupied(Vec3(3, 0, 5))
        assert tree.is_known(Vec3(3, 0, 5))

    def test_integrate_cloud_uses_sensor_origin(self):
        tree = OcTree()
        cloud = PointCloud(points=[Vec3(4, 0, 5)] * 4, sensor_position=Vec3(0, 0, 5))
        tree.integrate_cloud(cloud)
        assert tree.is_occupied(Vec3(4, 0, 5))

    def test_out_of_bounds_points_ignored(self):
        tree = OcTree(OcTreeConfig(size=32.0, origin=Vec3(-16, -16, -16)))
        tree.update_voxel(Vec3(100, 0, 0), hit=True)
        assert tree.occupied_voxel_count() == 0

    def test_log_odds_clamped(self):
        tree = OcTree()
        for _ in range(100):
            tree.update_voxel(Vec3(1, 1, 1), hit=True)
        # A long run of misses must still be able to free the voxel eventually.
        for _ in range(20):
            tree.update_voxel(Vec3(1, 1, 1), hit=False)
        assert not tree.is_occupied(Vec3(1, 1, 1))

    def test_pruning_reduces_node_count(self):
        tree = OcTree(OcTreeConfig(size=16.0, origin=Vec3(-8, -8, -8), resolution=1.0))
        # Fill a 4x4x4 block completely so entire subtrees agree and prune.
        for x in range(4):
            for y in range(4):
                for z in range(4):
                    for _ in range(2):
                        tree.update_voxel(Vec3(x + 0.5, y + 0.5, z + 0.5), hit=True)
        before = tree.node_count()
        tree.prune()
        assert tree.node_count() <= before

    def test_memory_grows_with_observations(self):
        tree = OcTree()
        empty_memory = tree.memory_bytes()
        for i in range(20):
            tree.update_voxel(Vec3(i, 0, 2), hit=True)
        assert tree.memory_bytes() > empty_memory

    @given(coord, coord, st.floats(min_value=0.5, max_value=15))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_is_consistent_with_updates(self, x, y, z):
        tree = OcTree()
        point = Vec3(x, y, z)
        for _ in range(3):
            tree.update_voxel(point, hit=True)
        assert tree.is_occupied(point)
        assert tree.is_known(point)


class TestInflation:
    def make_map_with_obstacle(self):
        tree = OcTree()
        for _ in range(3):
            tree.update_voxel(Vec3(5, 0, 5), hit=True)
        return InflatedMap(tree, InflationConfig(vehicle_radius=0.4, safety_margin=0.6))

    def test_point_inside_inflation_radius_collides(self):
        inflated = self.make_map_with_obstacle()
        assert inflated.is_colliding(Vec3(5, 0, 5))
        assert inflated.is_colliding(Vec3(5.6, 0, 5))

    def test_point_outside_inflation_radius_is_free(self):
        inflated = self.make_map_with_obstacle()
        assert not inflated.is_colliding(Vec3(9, 0, 5))

    def test_segment_through_obstacle_collides(self):
        inflated = self.make_map_with_obstacle()
        assert inflated.segment_colliding(Vec3(0, 0, 5), Vec3(10, 0, 5))
        assert not inflated.segment_colliding(Vec3(0, 5, 5), Vec3(10, 5, 5))

    def test_path_collision_checks_each_leg(self):
        inflated = self.make_map_with_obstacle()
        safe_path = [Vec3(0, 5, 5), Vec3(10, 5, 5), Vec3(10, 10, 5)]
        bad_path = [Vec3(0, 5, 5), Vec3(5, 0, 5)]
        assert not inflated.path_colliding(safe_path)
        assert inflated.path_colliding(bad_path)

    def test_clearance_reflects_distance(self):
        inflated = self.make_map_with_obstacle()
        near = inflated.clearance_at(Vec3(6, 0, 5))
        far = inflated.clearance_at(Vec3(20, 0, 5))
        assert near < far

    def test_inflation_radius_property(self):
        inflated = self.make_map_with_obstacle()
        assert inflated.inflation_radius == pytest.approx(1.0)
