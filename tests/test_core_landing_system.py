"""Unit tests for the landing system's decision logic (no full mission)."""


import pytest

from repro.core.commands import CommandKind
from repro.core.config import mls_v1, mls_v2, mls_v3
from repro.core.landing_system import LandingSystem
from repro.core.states import DecisionState
from repro.geometry import Vec3
from repro.perception.detection import Detection, DetectionFrame
from repro.perception.neural.training import load_pretrained_detector_net
from repro.sensors.depth import PointCloud
from repro.vehicle.state import EstimatedState


@pytest.fixture(scope="module")
def network():
    return load_pretrained_detector_net()


def make_system(config=None, gps_target=Vec3(20, 0, 0), network_instance=None):
    return LandingSystem(
        config=config or mls_v3(),
        target_marker_id=7,
        gps_target=gps_target,
        home=Vec3.zero(),
        seed=1,
        detector_network=network_instance,
    )


def estimate_at(x, y, z):
    return EstimatedState(position=Vec3(x, y, z))


def detection_frame(timestamp, marker_id, position, confidence=1.0):
    return DetectionFrame(
        timestamp=timestamp,
        detections=[
            Detection(
                marker_id=marker_id,
                pixel_center=(64, 64),
                pixel_size=12,
                world_position=position,
                confidence=confidence,
            )
        ],
    )


def inject_frame(system, frame):
    """Feed a pre-built detection frame, bypassing the camera+detector path."""
    system._last_frame = frame
    best = system._best_candidate(frame)
    if best is not None:
        system._last_detection = best
        system._last_detection_time = frame.timestamp


class TestModuleAssembly:
    def test_v1_has_no_map(self, network):
        system = make_system(mls_v1())
        assert system.local_grid is None and system.octree is None and system.inflated is None

    def test_v2_uses_dense_grid(self, network):
        system = make_system(mls_v2(), network_instance=network)
        assert system.local_grid is not None and system.octree is None

    def test_v3_uses_octree(self, network):
        system = make_system(mls_v3(), network_instance=network)
        assert system.octree is not None and system.local_grid is None

    def test_map_memory_reporting(self, network):
        v1 = make_system(mls_v1())
        v3 = make_system(mls_v3(), network_instance=network)
        assert v1.map_memory_bytes() == 0
        assert v3.map_memory_bytes() > 0


class TestStateMachine:
    def test_starts_in_transit_and_issues_setpoints(self, network):
        system = make_system(network_instance=network)
        command = system.decide(estimate_at(0, 0, 12), now=1.0)
        assert system.state is DecisionState.TRANSIT
        assert command.kind is CommandKind.SETPOINT

    def test_transit_to_search_on_arrival(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)
        assert system.state is DecisionState.SEARCH

    def test_search_to_validate_on_detection(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)   # enters search
        inject_frame(system, detection_frame(1.2, 7, Vec3(21, 1, 0)))
        system.decide(estimate_at(19, 0, 8), now=1.4)
        assert system.state is DecisionState.VALIDATE

    def test_validation_accepts_target_and_starts_landing(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)
        inject_frame(system, detection_frame(1.2, 7, Vec3(21, 1, 0)))
        system.decide(estimate_at(19, 0, 8), now=1.4)
        hover = estimate_at(21, 1, system.config.validation.validation_altitude)
        now = 2.0
        for _ in range(system.config.validation.required_hits + 2):
            inject_frame(system, detection_frame(now, 7, Vec3(21, 1, 0)))
            system.decide(hover, now=now)
            now += 0.2
            if system.state is DecisionState.LANDING:
                break
        assert system.state is DecisionState.LANDING
        assert system.validated_position.horizontal_distance_to(Vec3(21, 1, 0)) < 0.5

    def test_validation_rejects_decoy_and_remembers_it(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)
        inject_frame(system, detection_frame(1.2, 3, Vec3(18, -2, 0)))
        # A decoy ID never counts as the briefed target, so the candidate path
        # is only entered through the unidentified-detection route; classical
        # configs simply ignore it.
        assert system._best_candidate(detection_frame(1.2, 3, Vec3(18, -2, 0))) is None

    def test_landing_aborts_when_marker_lost(self, network):
        system = make_system(network_instance=network)
        system._validated_position = Vec3(20, 0, 0)
        system._candidate_position = Vec3(20, 0, 0)
        system.state = DecisionState.LANDING
        system._last_detection_time = 0.0
        system._descent_target_altitude = 5.0
        lost_duration = system.config.landing.marker_lost_tolerance + 1.0
        command = system.decide(estimate_at(20, 0, 5), now=lost_duration)
        assert system.state in (DecisionState.VALIDATE, DecisionState.FAILSAFE)

    def test_final_descent_when_low_and_close(self, network):
        system = make_system(network_instance=network)
        system._validated_position = Vec3(20, 0, 0)
        system.state = DecisionState.LANDING
        system._last_detection_time = 9.9
        system._descent_target_altitude = 1.5
        command = system.decide(estimate_at(20, 0.2, 1.6), now=10.0)
        assert system.state is DecisionState.FINAL_DESCENT
        assert command.kind is CommandKind.LAND

    def test_failsafe_issues_return(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)
        command = None
        for t in range(200):
            command = system.decide(estimate_at(19, 0, 8), now=100.0 + t)
            if system.state is DecisionState.FAILSAFE:
                break
        assert system.state is DecisionState.FAILSAFE
        assert command.kind is CommandKind.RETURN
        assert system.is_terminal

    def test_transitions_are_recorded(self, network):
        system = make_system(network_instance=network)
        system.decide(estimate_at(19, 0, 12), now=1.0)
        assert len(system.transitions) == 1
        assert system.transitions[0].to_state is DecisionState.SEARCH


class TestMappingIntegration:
    def test_process_cloud_updates_octree(self, network):
        system = make_system(mls_v3(), network_instance=network)
        cloud = PointCloud(points=[Vec3(5, 0, 5)] * 4, sensor_position=Vec3.zero())
        system.process_cloud(cloud, estimate_at(0, 0, 5))
        assert system.octree.is_occupied(Vec3(5, 0, 5))

    def test_process_cloud_noop_for_v1(self, network):
        system = make_system(mls_v1())
        cloud = PointCloud(points=[Vec3(5, 0, 5)], sensor_position=Vec3.zero())
        system.process_cloud(cloud, estimate_at(0, 0, 5))   # must not raise
        assert system.last_timings.mapping == 0.0

    def test_planning_avoids_mapped_obstacle(self, network):
        system = make_system(mls_v3(), gps_target=Vec3(14, 0, 0), network_instance=network)
        # Map a wall between the start and the GPS target.
        wall = [Vec3(7, y * 0.5, z * 0.5) for y in range(-6, 7) for z in range(8, 30)]
        system.process_cloud(PointCloud(points=wall, sensor_position=Vec3(0, 0, 10)), estimate_at(0, 0, 10))
        command = system.decide(estimate_at(0, 0, 12), now=1.0)
        assert command.kind is CommandKind.SETPOINT
        assert system.replans >= 1
