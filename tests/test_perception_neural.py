"""Tests for the NumPy neural network stack and its training."""

import numpy as np
import pytest

from repro.perception.neural.dataset import PatchDatasetConfig, generate_patch_dataset
from repro.perception.neural.layers import (
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    Relu,
    SgdOptimizer,
    cross_entropy_loss,
    softmax,
)
from repro.perception.neural.network import MarkerPatchNet, PATCH_SIZE
from repro.perception.neural.training import TrainingConfig, train_marker_net


class TestLayers:
    def test_dense_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(8, 4, rng)
        out = layer.forward(np.ones((3, 8)))
        assert out.shape == (3, 4)

    def test_dense_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Dense(5, 3, rng)
        x = rng.normal(size=(2, 5))
        labels = np.array([0, 2])
        eps = 1e-5

        logits = layer.forward(x)
        _, grad = cross_entropy_loss(logits, labels)
        layer.backward(grad)
        analytic = layer.weight_grad[0, 0]

        layer.weight[0, 0] += eps
        loss_plus, _ = cross_entropy_loss(layer.forward(x), labels)
        layer.weight[0, 0] -= 2 * eps
        loss_minus, _ = cross_entropy_loss(layer.forward(x), labels)
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_relu_zeroes_negative_gradient(self):
        relu = Relu()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = relu.backward(np.array([[1.0, 1.0]]))
        assert grad.tolist() == [[0.0, 1.0]]

    def test_conv_output_shape(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 4, 3, rng)
        out = conv.forward(np.ones((2, 1, 8, 8)))
        assert out.shape == (2, 4, 6, 6)

    def test_conv_backward_shape_matches_input(self):
        rng = np.random.default_rng(3)
        conv = Conv2d(2, 3, 3, rng)
        x = rng.normal(size=(2, 2, 7, 7))
        out = conv.forward(x)
        grad_in = conv.backward(np.ones_like(out))
        assert grad_in.shape == x.shape

    def test_maxpool_forward_and_backward(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 1, 1] == 15.0
        grad = pool.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert grad.sum() == pytest.approx(4.0)

    def test_maxpool_odd_size_keeps_input_shape_in_backward(self):
        pool = MaxPool2d(2)
        x = np.random.default_rng(0).normal(size=(1, 1, 5, 5))
        out = pool.forward(x)
        grad = pool.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_cross_entropy_decreases_with_correct_confidence(self):
        confident, _ = cross_entropy_loss(np.array([[5.0, -5.0]]), np.array([0]))
        unsure, _ = cross_entropy_loss(np.array([[0.1, -0.1]]), np.array([0]))
        assert confident < unsure

    def test_flatten_round_trip(self):
        flatten = Flatten()
        x = np.ones((2, 3, 4, 4))
        out = flatten.forward(x)
        assert out.shape == (2, 48)
        assert flatten.backward(out).shape == x.shape

    def test_sgd_moves_parameters(self):
        param = np.ones(3)
        grad = np.ones(3)
        optimizer = SgdOptimizer(learning_rate=0.1, momentum=0.0)
        optimizer.step([(param, grad)])
        np.testing.assert_allclose(param, [0.9, 0.9, 0.9])


class TestDataset:
    def test_dataset_is_balanced_and_shaped(self):
        config = PatchDatasetConfig(samples_per_class=50)
        patches, labels = generate_patch_dataset(config, seed=1)
        assert patches.shape == (100, PATCH_SIZE, PATCH_SIZE)
        assert labels.sum() == 50

    def test_dataset_deterministic_given_seed(self):
        config = PatchDatasetConfig(samples_per_class=20)
        a_patches, a_labels = generate_patch_dataset(config, seed=5)
        b_patches, b_labels = generate_patch_dataset(config, seed=5)
        np.testing.assert_allclose(a_patches, b_patches)
        np.testing.assert_array_equal(a_labels, b_labels)

    def test_values_in_unit_range(self):
        patches, _ = generate_patch_dataset(PatchDatasetConfig(samples_per_class=30), seed=2)
        assert patches.min() >= 0.0 and patches.max() <= 1.0


class TestNetworkAndTraining:
    def test_forward_shapes(self):
        network = MarkerPatchNet(seed=0)
        probs = network.predict_probability(np.random.default_rng(0).random((5, PATCH_SIZE, PATCH_SIZE)))
        assert probs.shape == (5,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_wrong_patch_size_rejected(self):
        network = MarkerPatchNet(seed=0)
        with pytest.raises(ValueError):
            network.predict_probability(np.zeros((1, 8, 8)))

    def test_training_improves_accuracy(self):
        config = TrainingConfig(
            epochs=3,
            dataset=PatchDatasetConfig(samples_per_class=250),
            seed=11,
        )
        network, report = train_marker_net(config)
        assert report.validation_accuracy > 0.8
        assert report.loss_history[-1] < report.loss_history[0]

    def test_state_dict_round_trip(self, tmp_path):
        network, _ = train_marker_net(
            TrainingConfig(epochs=1, dataset=PatchDatasetConfig(samples_per_class=50), seed=3)
        )
        path = str(tmp_path / "net.pkl")
        network.save(path)
        restored = MarkerPatchNet.load(path)
        patches = np.random.default_rng(0).random((4, PATCH_SIZE, PATCH_SIZE))
        np.testing.assert_allclose(
            network.predict_probability(patches), restored.predict_probability(patches)
        )

    def test_load_state_dict_shape_mismatch_rejected(self):
        network = MarkerPatchNet(seed=0)
        state = network.state_dict()
        state[0] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            network.load_state_dict(state)
