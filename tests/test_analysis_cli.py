"""End-to-end tests for ``python -m repro.analysis`` and the IO layer:
byte-stable reports, regression gating exit codes, streaming JSONL reading,
and the fluent ``Campaign(...).analyze()`` terminal."""

import json
import math

import pytest

from repro.analysis.cli import main
from repro.analysis.engine import CampaignAnalysis
from repro.analysis.io import (
    discover_result_files,
    iter_records,
    iter_result_records,
    read_result_header,
)
from repro.bench.campaign import Campaign
from repro.core.metrics import (
    CampaignResult,
    DetectionStats,
    RunOutcome,
    RunRecord,
    append_record_jsonl,
)
from repro.world.scenario_gen import generate_suite
from repro.world.scenario_suite import build_evaluation_suite


def write_campaign(
    directory,
    name="MLS-V1",
    successes=8,
    total=10,
    landing_error=0.3,
    platform="desktop",
    scenario_ids=None,
):
    """Persist a synthetic campaign the way ``Campaign.out`` lays it out."""
    path = directory / f"{name}.jsonl"
    for index in range(total):
        outcome = RunOutcome.SUCCESS if index < successes else RunOutcome.COLLISION
        scenario_id = (
            scenario_ids[index] if scenario_ids is not None else f"s{index:03d}"
        )
        record = RunRecord(
            scenario_id=scenario_id,
            system_name=name,
            outcome=outcome,
            landing_error=landing_error if outcome is RunOutcome.SUCCESS else float("nan"),
            landed=outcome is RunOutcome.SUCCESS,
            mission_time=35.0 + index,
            adverse_weather=index % 2 == 0,
            detection=DetectionStats(
                frames_with_visible_marker=20, frames_detected=19,
                deviation_samples=[0.1],
            ),
        )
        append_record_jsonl(path, name, record, extra_header={"platform": platform})
    return path


class TestIo:
    def test_iter_records_streams_file(self, tmp_path):
        path = write_campaign(tmp_path, total=5)
        records = list(iter_result_records(path))
        assert len(records) == 5
        assert all(isinstance(record, RunRecord) for record in records)

    def test_torn_tail_dropped_with_warning(self, tmp_path):
        path = write_campaign(tmp_path, total=3)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"scenario_id": "torn", "system_na')
        with pytest.warns(RuntimeWarning, match="torn"):
            records = list(iter_result_records(path))
        assert len(records) == 3

    def test_malformed_mid_file_raises(self, tmp_path):
        path = write_campaign(tmp_path, total=2)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(2, "{not json}")
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="malformed"):
            list(iter_result_records(path))

    def test_directory_discovery_skips_suite_files(self, tmp_path):
        write_campaign(tmp_path, name="MLS-V1")
        write_campaign(tmp_path, name="MLS-V3")
        generate_suite("smoke", seed=3).to_jsonl(tmp_path / "suite.jsonl")
        results, suites = discover_result_files(tmp_path)
        assert [p.name for p in results] == ["MLS-V1.jsonl", "MLS-V3.jsonl"]
        assert [p.name for p in suites] == ["suite.jsonl"]
        assert len(list(iter_records(tmp_path))) == 20

    def test_header_platform_round_trip(self, tmp_path):
        path = write_campaign(tmp_path, platform="jetson-nano")
        assert read_result_header(path)["platform"] == "jetson-nano"

    def test_live_results_source(self):
        campaign = CampaignResult(system_name="MLS-V1")
        campaign.add(
            RunRecord(scenario_id="s0", system_name="MLS-V1", outcome=RunOutcome.SUCCESS)
        )
        assert len(list(iter_records({"MLS-V1": campaign}))) == 1

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_records(tmp_path / "nope"))
        with pytest.raises(ValueError, match="no campaign-result"):
            empty = tmp_path / "empty"
            empty.mkdir()
            list(iter_records(empty))


class TestSummarizeCli:
    def test_byte_identical_across_invocations(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        write_campaign(results)
        first, second = tmp_path / "a.md", tmp_path / "b.md"
        assert main(["summarize", str(results), "--seed", "3", "--out", str(first)]) == 0
        assert main(["summarize", str(results), "--seed", "3", "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        text = first.read_text(encoding="utf-8")
        assert "Wilson" in text and "bootstrap" in text
        assert "80.00%" in text  # 8/10 success
        assert "Paper reference" in text  # MLS-V1 is in Table I

    def test_summarize_prints_to_stdout(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        write_campaign(results)
        assert main(["summarize", str(results)]) == 0
        assert "Outcome rates" in capsys.readouterr().out

    def test_missing_dir_exits_2_with_diagnostic(self, tmp_path, capsys):
        assert main(["summarize", str(tmp_path / "missing")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_dir_without_results_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["summarize", str(empty)]) == 2
        assert "no campaign-result" in capsys.readouterr().err


class TestSliceCli:
    def test_slice_with_suite_join(self, tmp_path, capsys):
        suite = generate_suite("stress", count=4, seed=9)
        suite_path = tmp_path / "suite.jsonl"
        suite.to_jsonl(suite_path)
        results = tmp_path / "results"
        results.mkdir()
        write_campaign(
            results, total=4, scenario_ids=[s.scenario_id for s in suite]
        )
        assert (
            main(
                [
                    "slice", str(results), "--by", "stress-axis",
                    "--suite", str(suite_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Campaign slice by stress-axis" in out
        assert "(unjoined)" not in out

    def test_slice_auto_joins_suite_in_results_dir(self, tmp_path, capsys):
        suite = generate_suite("stress", count=4, seed=9)
        results = tmp_path / "results"
        results.mkdir()
        suite.to_jsonl(results / "suite.jsonl")
        write_campaign(
            results, total=4, scenario_ids=[s.scenario_id for s in suite]
        )
        assert main(["slice", str(results), "--by", "wind-band"]) == 0
        assert "(unjoined)" not in capsys.readouterr().out

    def test_unjoined_without_suite(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        write_campaign(results, total=2)
        assert main(["slice", str(results), "--by", "map-style"]) == 0
        assert "(unjoined)" in capsys.readouterr().out


class TestCompareAndGateCli:
    def _two_campaigns(self, tmp_path, current_successes):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        write_campaign(baseline, successes=80, total=100)
        write_campaign(current, successes=current_successes, total=100)
        return baseline, current

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        baseline, current = self._two_campaigns(tmp_path, current_successes=55)
        assert main(["compare", str(baseline), str(current)]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "significant regression(s)" in out

    def test_gate_exits_nonzero_on_regression(self, tmp_path, capsys):
        baseline, current = self._two_campaigns(tmp_path, current_successes=55)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 1
        assert "GATE FAILED" in capsys.readouterr().err

    def test_gate_passes_identical_campaigns(self, tmp_path):
        baseline, current = self._two_campaigns(tmp_path, current_successes=80)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 0

    def test_gate_passes_on_improvement(self, tmp_path):
        baseline, current = self._two_campaigns(tmp_path, current_successes=95)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 0

    def test_gate_alpha_changes_sensitivity(self, tmp_path):
        # 80 -> 72 of 100: p ~ 0.18, insignificant at 0.05 but not at 0.5.
        baseline, current = self._two_campaigns(tmp_path, current_successes=72)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 0
        assert (
            main(
                ["gate", str(current), "--baseline", str(baseline), "--alpha", "0.5"]
            )
            == 1
        )

    def test_gate_fails_when_baseline_system_vanishes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        write_campaign(baseline, name="MLS-V1", successes=8, total=10)
        write_campaign(baseline, name="MLS-V3", successes=9, total=10)
        # MLS-V3 produced no records at all in the current campaign: that
        # must fail the gate even though every compared rate is unchanged.
        write_campaign(current, name="MLS-V1", successes=8, total=10)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 1
        assert "MLS-V3 missing" in capsys.readouterr().err

    def test_new_system_in_current_does_not_fail_gate(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        write_campaign(baseline, name="MLS-V1", successes=8, total=10)
        write_campaign(current, name="MLS-V1", successes=8, total=10)
        write_campaign(current, name="MLS-V3", successes=9, total=10)
        assert main(["gate", str(current), "--baseline", str(baseline)]) == 0

    def test_missing_suite_path_is_a_file_error(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        write_campaign(results)
        assert (
            main(
                [
                    "slice", str(results), "--by", "wind-band",
                    "--suite", str(tmp_path / "nope.jsonl"),
                ]
            )
            == 2
        )
        # A typo'd suite path reads as a missing file, not an unknown preset.
        assert "nope.jsonl" in capsys.readouterr().err

    def test_compare_report_deterministic(self, tmp_path):
        baseline, current = self._two_campaigns(tmp_path, current_successes=55)
        first, second = tmp_path / "a.md", tmp_path / "b.md"
        assert main(["compare", str(baseline), str(current), "--out", str(first)]) == 0
        assert main(["compare", str(baseline), str(current), "--out", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()


class TestAnalyzeTerminal:
    @pytest.mark.slow
    def test_campaign_analyze_runs_and_reports(self):
        suite = build_evaluation_suite(base_seed=2025).subset(2)
        suite.repetitions = 1
        campaign = Campaign("mls-v1").suite(suite)
        analysis = campaign.analyze(seed=1)
        assert campaign._suite is suite  # analyze() restores the suite setting
        summaries = analysis.summaries()
        assert "MLS-V1" in summaries
        assert summaries["MLS-V1"].runs == 2
        report = analysis.report()
        assert "Outcome rates" in report
        slices = analysis.slice("map-style")
        assert "(unjoined)" not in slices  # the campaign's suite is joined

    def test_one_shot_iterator_source_is_pinned(self):
        campaign = CampaignResult(system_name="MLS-V1")
        campaign.add(
            RunRecord(scenario_id="s0", system_name="MLS-V1", outcome=RunOutcome.SUCCESS)
        )
        analysis = CampaignAnalysis(iter([campaign]))  # generator-like source
        assert analysis.summaries()["MLS-V1"].runs == 1
        # A second streaming pass (slicing) must see the records again.
        assert analysis.slice("weather")

    def test_analysis_over_live_results_matches_persisted(self, tmp_path):
        campaign = CampaignResult(system_name="MLS-V1")
        for index in range(6):
            outcome = RunOutcome.SUCCESS if index < 4 else RunOutcome.POOR_LANDING
            campaign.add(
                RunRecord(
                    scenario_id=f"s{index}",
                    system_name="MLS-V1",
                    outcome=outcome,
                    landing_error=0.2,
                    landed=outcome is RunOutcome.SUCCESS,
                    mission_time=30.0,
                )
            )
        live = CampaignAnalysis({"MLS-V1": campaign}, seed=2)
        path = campaign.to_jsonl(tmp_path / "MLS-V1.jsonl")
        persisted = CampaignAnalysis(str(path), seed=2)
        assert live.report() == persisted.report()

    def test_gate_api(self, tmp_path):
        good = CampaignResult(system_name="MLS-V1")
        bad = CampaignResult(system_name="MLS-V1")
        for index in range(60):
            good.add(
                RunRecord(
                    scenario_id=f"s{index}", system_name="MLS-V1",
                    outcome=RunOutcome.SUCCESS, landed=True, landing_error=0.2,
                )
            )
            bad.add(
                RunRecord(
                    scenario_id=f"s{index}", system_name="MLS-V1",
                    outcome=RunOutcome.COLLISION,
                )
            )
        comparison = CampaignAnalysis({"MLS-V1": bad}).gate({"MLS-V1": good})
        assert comparison.has_regression
        comparison = CampaignAnalysis({"MLS-V1": good}).gate({"MLS-V1": good})
        assert not comparison.has_regression


class TestRoundTripNumbers:
    def test_summary_json_content_survives_jsonl(self, tmp_path):
        """The persisted stream feeds the same numbers the live records do."""
        path = write_campaign(tmp_path, successes=3, total=5, landing_error=0.42)
        records = list(iter_result_records(path))
        loaded = json.loads(path.read_text(encoding="utf-8").splitlines()[1])
        assert loaded["landing_error"] == pytest.approx(0.42)
        nan_errors = [r.landing_error for r in records if not r.landed]
        assert all(math.isnan(value) for value in nan_errors)


class TestSummarizeCache:
    def test_unchanged_dir_is_a_cache_hit_and_byte_identical(self, tmp_path, capsys):
        write_campaign(tmp_path, total=6)
        first = tmp_path / "r1.md"
        assert main(["summarize", str(tmp_path), "--cache", "--out", str(first)]) == 0
        assert "report cache miss" in capsys.readouterr().err
        second = tmp_path / "r2.md"
        assert main(["summarize", str(tmp_path), "--cache", "--out", str(second)]) == 0
        assert "report cache hit" in capsys.readouterr().err
        assert second.read_bytes() == first.read_bytes()
        # The memoized output equals the uncached path byte for byte.
        plain = tmp_path / "r3.md"
        assert main(["summarize", str(tmp_path), "--out", str(plain)]) == 0
        assert plain.read_bytes() == first.read_bytes()

    def test_appended_records_move_the_key_and_prune_the_old_entry(
        self, tmp_path, capsys
    ):
        write_campaign(tmp_path, total=4)
        assert main(["summarize", str(tmp_path), "--cache"]) == 0
        capsys.readouterr()
        write_campaign(tmp_path, total=2)  # appends to the same file
        assert main(["summarize", str(tmp_path), "--cache"]) == 0
        assert "report cache miss" in capsys.readouterr().err
        cache_dir = tmp_path / ".report-cache"
        # One live entry per report kind: the superseded key was pruned.
        assert len(list(cache_dir.glob("summary-*.md"))) == 1

    def test_analysis_params_are_part_of_the_key(self, tmp_path, capsys):
        write_campaign(tmp_path, total=4)
        assert main(["summarize", str(tmp_path), "--cache"]) == 0
        first_err = capsys.readouterr().err
        assert main(["summarize", str(tmp_path), "--cache", "--seed", "9"]) == 0
        second_err = capsys.readouterr().err
        assert "report cache miss" in first_err
        assert "report cache miss" in second_err

    def test_cache_flag_on_a_single_file_uses_plain_path(self, tmp_path, capsys):
        path = write_campaign(tmp_path, total=4)
        assert main(["summarize", str(path), "--cache"]) == 0
        out = capsys.readouterr()
        assert "# Campaign analytics summary" in out.out
        assert "report cache" not in out.err  # file sources skip the memo
