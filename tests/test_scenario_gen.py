"""Tests for the procedural scenario-generation subsystem."""

import json
import subprocess
import sys

import pytest

from repro.world.map_generator import MapStyle
from repro.world.scenario import Scenario
from repro.world.scenario_gen import (
    PRESET_NAMES,
    STRESS_AXES,
    SUITE_PRESETS,
    ScenarioSpec,
    SuiteSpec,
    Uniform,
    axis_coverage,
    generate_suite,
    suite_preset,
)
from repro.world.scenario_suite import ScenarioSuite
from repro.world.weather import Weather, WeatherCondition


class TestUniform:
    def test_sample_within_bounds(self):
        import numpy as np

        rng = np.random.default_rng(0)
        u = Uniform(2.0, 5.0)
        assert all(2.0 <= u.sample(rng) <= 5.0 for _ in range(100))

    def test_fixed_returns_value(self):
        import numpy as np

        assert Uniform.fixed(3.0).sample(np.random.default_rng(0)) == 3.0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 2.0)


class TestScenarioExtensions:
    def test_effective_weather_daylight_is_identity(self):
        s = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=1)
        assert s.effective_weather == s.weather

    def test_low_light_degrades_imaging(self):
        base = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=1)
        from dataclasses import replace

        dark = replace(base, lighting=0.3)
        effective = dark.effective_weather
        assert effective.visibility < base.weather.visibility
        assert effective.image_noise > base.weather.image_noise

    def test_obstacle_density_scales_map(self):
        from dataclasses import replace

        base = Scenario.generate("s", MapStyle.URBAN, 5, adverse_weather=False, seed=2)
        dense = replace(base, obstacle_density=2.0)
        sparse = replace(base, obstacle_density=0.3)
        assert len(dense.build_world().obstacles) > len(base.build_world().obstacles)
        assert len(sparse.build_world().obstacles) < len(base.build_world().obstacles)

    def test_target_occlusion_override_applied(self):
        from dataclasses import replace

        base = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=3)
        occluded = replace(base, target_occlusion=0.42)
        assert occluded.build_world().target_marker.occlusion == 0.42

    def test_legacy_scenarios_build_identically(self):
        # The new fields default to no-ops: same seed, same world as before.
        a = Scenario.generate("s", MapStyle.SUBURBAN, 2, adverse_weather=True, seed=11)
        world_a = a.build_world()
        world_b = a.build_world()
        assert len(world_a.obstacles) == len(world_b.obstacles)
        assert world_a.target_marker.occlusion == world_b.target_marker.occlusion

    def test_validation(self):
        base = Scenario.generate("s", MapStyle.RURAL, 1, adverse_weather=False, seed=1)
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(base, lighting=0.0)
        with pytest.raises(ValueError):
            replace(base, obstacle_density=-1.0)
        with pytest.raises(ValueError):
            replace(base, target_occlusion=1.0)

    def test_to_dict_round_trip(self):
        from dataclasses import replace

        s = replace(
            Scenario.generate("s", MapStyle.URBAN, 9, adverse_weather=True, seed=21),
            lighting=0.5,
            obstacle_density=1.7,
            target_occlusion=0.2,
        )
        restored = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert restored == s

    def test_weather_round_trip(self):
        w = Weather.preset(WeatherCondition.STORM, 0.8)
        assert Weather.from_dict(json.loads(json.dumps(w.to_dict()))) == w


class TestSuiteGeneration:
    def test_same_seed_identical(self):
        a = generate_suite("stress", count=20, seed=7)
        b = generate_suite("stress", count=20, seed=7)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_different_seeds_distinct(self):
        a = generate_suite("stress", count=20, seed=7)
        b = generate_suite("stress", count=20, seed=8)
        assert [s.to_dict() for s in a] != [s.to_dict() for s in b]

    def test_count_prefix_stability(self):
        # Scenario i draws from its own seed stream, so growing the suite
        # never changes the scenarios already generated.
        small = generate_suite("stress", count=5, seed=7)
        large = generate_suite("stress", count=25, seed=7)
        assert [s.to_dict() for s in small] == [s.to_dict() for s in large][:5]

    def test_byte_identical_across_processes(self, tmp_path):
        local = generate_suite("stress", count=12, seed=42).to_jsonl(tmp_path / "local.jsonl")
        script = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.world.scenario_gen import generate_suite;"
            "generate_suite('stress', count=12, seed=42).to_jsonl({out!r})"
        ).format(src=str(__import__("pathlib").Path(__file__).parent.parent / "src"),
                 out=str(tmp_path / "subprocess.jsonl"))
        subprocess.run([sys.executable, "-c", script], check=True)
        assert local.read_bytes() == (tmp_path / "subprocess.jsonl").read_bytes()

    def test_scenario_ids_unique(self):
        suite = generate_suite("stress", count=50, seed=1)
        ids = [s.scenario_id for s in suite]
        assert len(set(ids)) == len(ids)

    def test_every_generated_scenario_builds(self):
        suite = generate_suite("stress", count=20, seed=3)
        for scenario in suite:
            world = scenario.build_world()
            assert world.target_marker is not None
            assert world.is_valid_landing_point(scenario.marker_position)

    def test_stress_preset_spans_all_axes(self):
        coverage = axis_coverage(generate_suite("stress", count=60, seed=7))
        assert set(coverage) == set(STRESS_AXES)
        assert all(hits > 0 for hits in coverage.values())

    def test_suite_spec_overrides(self):
        spec = SUITE_PRESETS["windy"]
        suite = spec.with_overrides(count=7, seed=9, repetitions=4).generate()
        assert len(suite) == 7
        assert suite.repetitions == 4

    def test_custom_spec(self):
        spec = SuiteSpec(
            name="mini",
            count=4,
            seed=5,
            scenario=ScenarioSpec(
                map_styles=(MapStyle.URBAN,),
                adverse_probability=1.0,
                lighting=Uniform(0.3, 0.5),
            ),
        )
        suite = spec.generate()
        assert all(s.map_style is MapStyle.URBAN for s in suite)
        assert all(s.is_adverse_weather for s in suite)
        assert all(0.3 <= s.lighting <= 0.5 for s in suite)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SuiteSpec(count=0)
        with pytest.raises(ValueError):
            ScenarioSpec(map_styles=())
        with pytest.raises(ValueError):
            ScenarioSpec(adverse_probability=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(decoy_count=(3, 1))


class TestPresets:
    def test_paper_preset_is_the_evaluation_suite(self):
        suite = suite_preset("paper")
        assert len(suite) == 100
        assert suite.adverse_count == 50
        assert suite.name == "paper"

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            suite_preset("no-such-preset")

    def test_paper_preset_rejects_oversized_count(self):
        # The paper suite is fixed at 100 scenarios; asking for more must
        # error, not silently cap.
        with pytest.raises(ValueError, match="fixed at 100"):
            suite_preset("paper", count=500)

    def test_all_presets_generate(self):
        for name in PRESET_NAMES:
            suite = generate_suite(name, count=3, seed=1)
            assert len(suite) == 3, name

    def test_axis_floor_never_reduces_weather(self):
        # A storm's own wind must survive a mild wind-axis floor.
        import numpy as np

        spec = ScenarioSpec(adverse_probability=1.0, wind_speed=Uniform(0.0, 0.1))
        for index in range(20):
            weather = spec.sample_weather(np.random.default_rng(index))
            if weather.condition in (WeatherCondition.WIND, WeatherCondition.STORM):
                assert weather.wind_speed >= 3.0


class TestSuiteSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        suite = generate_suite("stress", count=10, seed=7)
        path = suite.to_jsonl(tmp_path / "suite.jsonl")
        restored = ScenarioSuite.from_jsonl(path)
        assert [s.to_dict() for s in restored] == [s.to_dict() for s in suite]
        assert restored.repetitions == suite.repetitions
        assert restored.name == suite.name

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "campaign-result", "system": "X"}\n')
        with pytest.raises(ValueError):
            ScenarioSuite.from_jsonl(path)

    def test_rejects_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "scenario-suite", "schema": 99, "name": "x"}\n')
        with pytest.raises(ValueError, match="schema 99"):
            ScenarioSuite.from_jsonl(path)

    def test_rejects_truncated_file(self, tmp_path):
        suite = generate_suite("stress", count=5, seed=7)
        path = suite.to_jsonl(tmp_path / "suite.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError):
            ScenarioSuite.from_jsonl(path)


class TestSpecSerialization:
    def test_suite_spec_json_round_trip(self):
        for name, spec in SUITE_PRESETS.items():
            payload = json.loads(json.dumps(spec.to_dict()))
            restored = SuiteSpec.from_dict(payload)
            assert restored == spec, name
            # A restored spec generates the identical suite.
            assert [s.to_dict() for s in restored.generate()] == [
                s.to_dict() for s in spec.generate()
            ], name

    def test_partial_scenario_spec_accepted(self):
        spec = ScenarioSpec.from_dict({"wind_speed": [2.0, 8.0], "lighting": 0.4})
        assert spec.wind_speed == Uniform(2.0, 8.0)
        assert spec.lighting == Uniform.fixed(0.4)
        assert spec.adverse_probability == 0.5  # default preserved

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown SuiteSpec keys"):
            SuiteSpec.from_dict({"countt": 5})
        with pytest.raises(ValueError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_dict({"wind": [0, 1]})

    def test_uniform_from_value_rejects_junk(self):
        with pytest.raises(ValueError, match="as a Uniform range"):
            Uniform.from_value("windy")
