"""Dense local voxel grid (the EGO-Planner-style map used by MLS-V2).

A fixed-size boolean grid centred on (and re-centred with) the vehicle.
Access is O(1), but two limitations drive the paper's move to OctoMap:

* **Locality** — only a window around the vehicle is represented; obstacle
  information observed earlier but now outside the window is forgotten, which
  is what lets the local planner route "through" geometry it saw a moment ago.
* **Memory** — the dense array grows with the cube of the window size, so the
  window must stay small (granularity and memory "were mutually exclusive",
  §III.B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec3
from repro.sensors.depth import PointCloud


@dataclass(frozen=True)
class VoxelGridConfig:
    """Size and resolution of the local window."""

    resolution: float = 0.5
    window_size: float = 24.0   # edge length of the cubic window, metres
    height: float = 20.0        # vertical extent, metres

    @property
    def cells_xy(self) -> int:
        return max(1, int(round(self.window_size / self.resolution)))

    @property
    def cells_z(self) -> int:
        return max(1, int(round(self.height / self.resolution)))


class VoxelGrid:
    """Sliding-window dense occupancy grid."""

    def __init__(self, config: VoxelGridConfig | None = None) -> None:
        self.config = config or VoxelGridConfig()
        self.resolution = self.config.resolution
        cfg = self.config
        self._occupied = np.zeros((cfg.cells_xy, cfg.cells_xy, cfg.cells_z), dtype=bool)
        self._known = np.zeros_like(self._occupied)
        self._center = Vec3.zero()
        self._integrations = 0

    # ------------------------------------------------------------------ #
    # window management
    # ------------------------------------------------------------------ #
    @property
    def center(self) -> Vec3:
        """World position of the window centre (x, y); z is always ground-based."""
        return self._center

    def recenter(self, position: Vec3) -> None:
        """Move the window to follow the vehicle, discarding data that falls outside.

        A real implementation would shift the retained overlap; keeping only
        the freshly observed data is a conservative model of the same
        locality limitation and is what produces the V2 failure modes.
        """
        shift = position.with_z(0.0) - self._center.with_z(0.0)
        if shift.horizontal_norm() < self.config.window_size * 0.25:
            return
        self._center = position.with_z(0.0)
        self._occupied[...] = False
        self._known[...] = False

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def _to_index(self, point: Vec3) -> tuple[int, int, int] | None:
        cfg = self.config
        half = cfg.window_size / 2.0
        ix = int((point.x - (self._center.x - half)) / cfg.resolution)
        iy = int((point.y - (self._center.y - half)) / cfg.resolution)
        iz = int(point.z / cfg.resolution)
        if 0 <= ix < cfg.cells_xy and 0 <= iy < cfg.cells_xy and 0 <= iz < cfg.cells_z:
            return ix, iy, iz
        return None

    def voxel_center(self, index: tuple[int, int, int]) -> Vec3:
        cfg = self.config
        half = cfg.window_size / 2.0
        return Vec3(
            self._center.x - half + (index[0] + 0.5) * cfg.resolution,
            self._center.y - half + (index[1] + 0.5) * cfg.resolution,
            (index[2] + 0.5) * cfg.resolution,
        )

    # ------------------------------------------------------------------ #
    # OccupancyMap interface
    # ------------------------------------------------------------------ #
    def integrate_cloud(self, cloud: PointCloud) -> None:
        """Mark the voxels containing returned points as occupied and known."""
        self._integrations += 1
        for point in cloud.points:
            index = self._to_index(point)
            if index is None:
                continue
            self._occupied[index] = True
            self._known[index] = True

    def mark_free(self, point: Vec3) -> None:
        """Explicitly mark a voxel free (used by tests and the planners)."""
        index = self._to_index(point)
        if index is not None:
            self._occupied[index] = False
            self._known[index] = True

    def is_occupied(self, point: Vec3) -> bool:
        index = self._to_index(point)
        if index is None:
            return False  # outside the window nothing is known, hence "free"
        return bool(self._occupied[index])

    def is_known(self, point: Vec3) -> bool:
        index = self._to_index(point)
        if index is None:
            return False
        return bool(self._known[index])

    def occupied_voxel_count(self) -> int:
        return int(self._occupied.sum())

    def memory_bytes(self) -> int:
        """Dense storage cost: one byte per voxel per array."""
        return int(self._occupied.nbytes + self._known.nbytes)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    @property
    def integration_count(self) -> int:
        return self._integrations

    def occupied_points(self) -> list[Vec3]:
        """World positions of all occupied voxels (used by plotting/benchmarks)."""
        indices = np.argwhere(self._occupied)
        return [self.voxel_center(tuple(index)) for index in indices]
