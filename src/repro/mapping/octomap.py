"""Probabilistic octree occupancy map (the OctoMap substitute used by MLS-V3).

The tree hierarchically partitions a cubic region of space; leaves carry a
log-odds occupancy value updated by ray insertion (occupied hit at the end of
the ray, free space carved along it).  Homogeneous children are pruned into
their parent, which is what gives OctoMap its memory advantage over a dense
grid.  Unlike the dense window, the octree is **global**: every observation
ever made stays in the map, so the RRT* planner can account for "the complete
environmental structure" (§III.C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Vec3
from repro.geometry.ray import bresenham_voxels
from repro.sensors.depth import PointCloud

#: Log-odds increments, straight from the OctoMap defaults.
LOG_ODDS_HIT = 0.85
LOG_ODDS_MISS = -0.4
LOG_ODDS_MIN = -2.0
LOG_ODDS_MAX = 3.5
OCCUPANCY_THRESHOLD = 0.0  # log-odds > 0  <=>  P(occupied) > 0.5


@dataclass
class OcTreeNode:
    """One node of the octree; internal nodes have children, leaves a value."""

    log_odds: float = 0.0
    observed: bool = False
    children: list["OcTreeNode | None"] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def expand(self) -> None:
        """Split a leaf into eight children inheriting its value."""
        if self.children is not None:
            return
        self.children = [
            OcTreeNode(log_odds=self.log_odds, observed=self.observed) for _ in range(8)
        ]

    def try_prune(self) -> bool:
        """Collapse children that all agree (all leaves, same occupancy state)."""
        if self.children is None:
            return False
        first = self.children[0]
        if first is None or not first.is_leaf:
            return False
        state = first.log_odds > OCCUPANCY_THRESHOLD
        observed = first.observed
        for child in self.children:
            if child is None or not child.is_leaf or child.observed != observed:
                return False
            if (child.log_odds > OCCUPANCY_THRESHOLD) != state:
                return False
        # Collapse: parent takes the extreme value of the agreeing children.
        self.log_odds = max(c.log_odds for c in self.children) if state else min(
            c.log_odds for c in self.children
        )
        self.observed = observed
        self.children = None
        return True


@dataclass(frozen=True)
class OcTreeConfig:
    """Extent and resolution of the octree."""

    resolution: float = 0.5
    size: float = 256.0          # edge length of the root cube, metres
    origin: Vec3 = Vec3(-128.0, -128.0, -64.0)
    max_insert_range: float = 18.0


class OcTree:
    """OctoMap-style probabilistic occupancy octree."""

    def __init__(self, config: OcTreeConfig | None = None) -> None:
        self.config = config or OcTreeConfig()
        self.resolution = self.config.resolution
        # Depth such that a leaf at max depth has edge <= resolution.
        depth = 0
        size = self.config.size
        while size > self.config.resolution * (1 + 1e-9):
            size /= 2.0
            depth += 1
        self.max_depth = depth
        self.root = OcTreeNode()
        self._integrations = 0
        # Query accelerators: voxel keys (at map resolution) of observed and
        # occupied leaves.  Pruning collapses only same-state children, so the
        # sets stay consistent with the tree.
        self._occupied_keys: set[tuple[int, int, int]] = set()
        self._known_keys: set[tuple[int, int, int]] = set()

    # ------------------------------------------------------------------ #
    # coordinate helpers
    # ------------------------------------------------------------------ #
    def _contains(self, point: Vec3) -> bool:
        o = self.config.origin
        s = self.config.size
        return (
            o.x <= point.x < o.x + s
            and o.y <= point.y < o.y + s
            and o.z <= point.z < o.z + s
        )

    def _leaf_for(self, point: Vec3, create: bool) -> OcTreeNode | None:
        """Descend to the max-depth leaf containing ``point``.

        With ``create`` the path is expanded as needed; otherwise descent
        stops at the deepest existing node (which may be a pruned ancestor).
        """
        if not self._contains(point):
            return None
        node = self.root
        center = self.config.origin + Vec3(1, 1, 1) * (self.config.size / 2.0)
        half = self.config.size / 2.0
        for _ in range(self.max_depth):
            if node.is_leaf:
                if not create:
                    return node
                node.expand()
            octant = (
                (1 if point.x >= center.x else 0)
                | (2 if point.y >= center.y else 0)
                | (4 if point.z >= center.z else 0)
            )
            assert node.children is not None
            child = node.children[octant]
            if child is None:
                child = OcTreeNode()
                node.children[octant] = child
            node = child
            quarter = half / 2.0
            center = Vec3(
                center.x + (quarter if point.x >= center.x else -quarter),
                center.y + (quarter if point.y >= center.y else -quarter),
                center.z + (quarter if point.z >= center.z else -quarter),
            )
            half = quarter
        return node

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def _voxel_key(self, point: Vec3) -> tuple[int, int, int]:
        resolution = self.config.resolution
        return (
            int(point.x // resolution),
            int(point.y // resolution),
            int(point.z // resolution),
        )

    def update_voxel(self, point: Vec3, hit: bool) -> None:
        """Apply a single log-odds update to the voxel containing ``point``."""
        leaf = self._leaf_for(point, create=True)
        if leaf is None:
            return
        delta = LOG_ODDS_HIT if hit else LOG_ODDS_MISS
        leaf.log_odds = min(LOG_ODDS_MAX, max(LOG_ODDS_MIN, leaf.log_odds + delta))
        leaf.observed = True
        key = self._voxel_key(point)
        self._known_keys.add(key)
        if leaf.log_odds > OCCUPANCY_THRESHOLD:
            self._occupied_keys.add(key)
        else:
            self._occupied_keys.discard(key)

    def insert_ray(self, origin: Vec3, end: Vec3) -> None:
        """Carve free space along a ray and mark the endpoint occupied."""
        direction = end - origin
        length = direction.norm()
        if length > self.config.max_insert_range:
            end = origin + direction * (self.config.max_insert_range / length)
            truncated = True
        else:
            truncated = False
        resolution = self.config.resolution
        voxels = list(bresenham_voxels(origin, end, resolution))
        for key in voxels[:-1]:
            center = Vec3(
                (key[0] + 0.5) * resolution,
                (key[1] + 0.5) * resolution,
                (key[2] + 0.5) * resolution,
            )
            self.update_voxel(center, hit=False)
        if not truncated:
            self.update_voxel(end, hit=True)

    def integrate_cloud(self, cloud: PointCloud) -> None:
        """Insert the points of a depth cloud as rays from the sensor.

        Endpoint hits are inserted for every return; free-space carving along
        the ray is done for every other return (a standard OctoMap speed-up
        that preserves the free/occupied structure at a fraction of the cost),
        and pruning runs every few clouds.
        """
        self._integrations += 1
        for index, point in enumerate(cloud.points):
            if index % 2 == 0:
                self.insert_ray(cloud.sensor_position, point)
            else:
                self.update_voxel(point, hit=True)
        if self._integrations % 4 == 0:
            self.prune()

    # ------------------------------------------------------------------ #
    # queries (OccupancyMap interface)
    # ------------------------------------------------------------------ #
    def is_occupied(self, point: Vec3) -> bool:
        if not self._contains(point):
            return False
        return self._voxel_key(point) in self._occupied_keys

    def is_known(self, point: Vec3) -> bool:
        if not self._contains(point):
            return False
        return self._voxel_key(point) in self._known_keys

    def occupancy_probability(self, point: Vec3) -> float:
        """P(occupied) of the voxel containing ``point`` (0.5 when unknown)."""
        import math

        leaf = self._leaf_for(point, create=False)
        if leaf is None or not leaf.observed:
            return 0.5
        return 1.0 / (1.0 + math.exp(-leaf.log_odds))

    def occupied_voxel_count(self) -> int:
        return len(self._occupied_keys)

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if node.children is not None:
                stack.extend(child for child in node.children if child is not None)
        return count

    def memory_bytes(self) -> int:
        """Approximate footprint: ~64 bytes per allocated node."""
        return self.node_count() * 64

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def prune(self) -> int:
        """Bottom-up pruning of homogeneous subtrees; returns nodes pruned."""
        pruned = 0

        def recurse(node: OcTreeNode) -> None:
            nonlocal pruned
            if node.children is None:
                return
            for child in node.children:
                if child is not None:
                    recurse(child)
            if node.try_prune():
                pruned += 8

        recurse(self.root)
        return pruned

    @property
    def integration_count(self) -> int:
        return self._integrations
