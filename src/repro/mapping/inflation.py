"""Obstacle inflation for clearance-aware collision checking.

The planners do not plan against raw voxels: each occupied voxel is inflated
by the vehicle radius plus a safety margin, so any point whose distance to an
occupied voxel is below the inflation radius counts as "in collision".  This
is the "inflated bounding box" of Fig. 6 — and also the source of one of the
MLS-V3 failure modes, because a drone that drifts *inside* the inflated
boundary before replanning finishes can no longer find any valid escape path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec3
from repro.mapping.interface import OccupancyMap


@dataclass(frozen=True)
class InflationConfig:
    """Inflation radii."""

    vehicle_radius: float = 0.35
    safety_margin: float = 0.5

    @property
    def total_radius(self) -> float:
        return self.vehicle_radius + self.safety_margin


class InflatedMap:
    """Wraps an occupancy map and answers clearance-aware collision queries.

    The wrapped map is queried on a small spherical neighbourhood (sampled at
    the map resolution) around the query point; if any sample is occupied the
    point is considered in collision.
    """

    def __init__(self, base_map: OccupancyMap, config: InflationConfig | None = None) -> None:
        self.base_map = base_map
        self.config = config or InflationConfig()
        self._offsets = self._build_offsets()

    def _build_offsets(self) -> list[Vec3]:
        """Sample offsets covering a sphere of the inflation radius."""
        radius = self.config.total_radius
        step = max(self.base_map.resolution, 0.25)
        offsets = [Vec3.zero()]
        steps = int(np.ceil(radius / step))
        for ix in range(-steps, steps + 1):
            for iy in range(-steps, steps + 1):
                for iz in range(-steps, steps + 1):
                    if ix == 0 and iy == 0 and iz == 0:
                        continue
                    offset = Vec3(ix * step, iy * step, iz * step)
                    if offset.norm() <= radius:
                        offsets.append(offset)
        return offsets

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def inflation_radius(self) -> float:
        return self.config.total_radius

    def is_colliding(self, point: Vec3) -> bool:
        """True if ``point`` is within the inflation radius of occupied space."""
        for offset in self._offsets:
            if self.base_map.is_occupied(point + offset):
                return True
        return False

    def segment_colliding(self, start: Vec3, end: Vec3, step: float | None = None) -> bool:
        """Check a straight segment by sampling at (half-)resolution steps."""
        step = step or max(self.base_map.resolution * 0.5, 0.2)
        length = start.distance_to(end)
        if length < 1e-9:
            return self.is_colliding(start)
        samples = max(2, int(np.ceil(length / step)) + 1)
        for i in range(samples):
            t = i / (samples - 1)
            if self.is_colliding(start.lerp(end, t)):
                return True
        return False

    def path_colliding(self, waypoints: list[Vec3]) -> bool:
        """Check a polyline of waypoints."""
        for a, b in zip(waypoints, waypoints[1:]):
            if self.segment_colliding(a, b):
                return True
        return False

    def clearance_at(self, point: Vec3, max_radius: float = 3.0) -> float:
        """Approximate distance to the nearest occupied voxel, capped at ``max_radius``."""
        step = max(self.base_map.resolution, 0.25)
        radius = step
        while radius <= max_radius:
            samples = max(6, int(2 * np.pi * radius / step))
            for i in range(samples):
                angle = 2 * np.pi * i / samples
                for dz in (-radius / 2, 0.0, radius / 2):
                    probe = point + Vec3(radius * np.cos(angle), radius * np.sin(angle), dz)
                    if self.base_map.is_occupied(probe):
                        return radius
            radius += step
        return max_radius
