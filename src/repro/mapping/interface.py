"""The occupancy-map protocol shared by the planners.

Both map implementations (dense grid and octree) expose the same small query
surface so the planners are representation-agnostic — swapping the mapper is
exactly the upgrade the paper made between MLS-V2 and MLS-V3.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.geometry import Vec3
from repro.sensors.depth import PointCloud


@runtime_checkable
class OccupancyMap(Protocol):
    """Minimal interface required by collision checking and planning."""

    #: edge length of a voxel, metres
    resolution: float

    def integrate_cloud(self, cloud: PointCloud) -> None:
        """Fuse one depth point cloud (origin = sensor position)."""
        ...

    def is_occupied(self, point: Vec3) -> bool:
        """Whether the voxel containing ``point`` is believed occupied."""
        ...

    def is_known(self, point: Vec3) -> bool:
        """Whether the voxel containing ``point`` has ever been observed."""
        ...

    def occupied_voxel_count(self) -> int:
        """Number of voxels currently marked occupied (diagnostics / memory)."""
        ...

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the representation."""
        ...
