"""Occupancy mapping (the EGO-Planner grid and OctoMap substitutes).

Two map representations, matching the paper's two generations:

* :class:`~repro.mapping.voxel_grid.VoxelGrid` — a dense, fixed-size 3D
  boolean grid like the one EGO-Planner uses (MLS-V2).  Fast access, but
  memory grows with the cube of the mapped volume and it only covers a local
  window around the vehicle.
* :class:`~repro.mapping.octomap.OcTree` — a probabilistic octree in the
  style of OctoMap (MLS-V3).  Hierarchical, prunes homogeneous regions,
  supports log-odds updates from ray insertion, and covers the whole
  environment.

Both implement the same :class:`~repro.mapping.interface.OccupancyMap`
protocol the planners consume, and :mod:`repro.mapping.inflation` provides
the obstacle inflation used for clearance-aware collision checking
(the "inflated bounding box" of Fig. 6).
"""

from repro.mapping.interface import OccupancyMap
from repro.mapping.voxel_grid import VoxelGrid
from repro.mapping.octomap import OcTree
from repro.mapping.inflation import InflatedMap

__all__ = ["OccupancyMap", "VoxelGrid", "OcTree", "InflatedMap"]
