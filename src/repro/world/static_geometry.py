"""Cached static-world geometry with batched numpy query kernels.

The mission loop hits the same static obstacle set thousands of times per
run: every depth capture raycasts a grid of rays against every obstacle,
every physics tick checks the vehicle position for collision, and every
camera frame slab-tests each obstacle against the full pixel-ray bundle.
:class:`WorldGeometry` snapshots a world's obstacles and markers into flat
numpy arrays once and answers those queries in single batched passes.

Every kernel replicates the scalar arithmetic of the reference
implementations (:meth:`repro.geometry.AABB.ray_intersection`,
:meth:`repro.world.world.World.raycast`, ``Obstacle.contains``) operation
for operation, so results are bit-identical to the per-object code paths —
the campaign/dispatch byte-identity contract depends on it.

Geometries are memoised two ways: per :class:`~repro.world.world.World`
instance (invalidated when the obstacle/marker counts change), and in a
small process-level cache keyed on ``Scenario.fingerprint()`` so repeated
runs of the same scenario (campaign repetitions, parallel workers) skip the
rebuild entirely.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.geometry import Vec3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.world.obstacles import Obstacle
    from repro.world.world import World

#: Safety margin (m) added to analytic reach tests before declaring a frame
#: render provably empty; absorbs any conservative slack in the frustum bound.
REACH_MARGIN = 0.25

_FINGERPRINT_CACHE: dict[tuple, "WorldGeometry"] = {}
_FINGERPRINT_CACHE_LIMIT = 64


def geometry_for_world(world: "World") -> "WorldGeometry":
    """The (possibly cached) :class:`WorldGeometry` for ``world``."""
    signature = (len(world.obstacles), len(world.markers))
    cached = getattr(world, "_geometry_cache", None)
    if cached is not None and cached.signature == signature:
        return cached

    key = None
    fingerprint = getattr(world, "geometry_key", None)
    if fingerprint:
        key = (fingerprint, signature)
        cached = _FINGERPRINT_CACHE.get(key)
        if cached is not None:
            world._geometry_cache = cached
            return cached

    geometry = WorldGeometry(world)
    world._geometry_cache = geometry
    if key is not None:
        if len(_FINGERPRINT_CACHE) >= _FINGERPRINT_CACHE_LIMIT:
            _FINGERPRINT_CACHE.pop(next(iter(_FINGERPRINT_CACHE)))
        _FINGERPRINT_CACHE[key] = geometry
    return geometry


class WorldGeometry:
    """Flat numpy snapshot of a world's static obstacles and markers."""

    def __init__(self, world: "World") -> None:
        self.signature = (len(world.obstacles), len(world.markers))
        hazards = [o for o in world.obstacles if o.is_collision_hazard]
        self.hazards: list["Obstacle"] = hazards
        count = len(hazards)
        self.hazard_lo = np.empty((count, 3), dtype=float)
        self.hazard_hi = np.empty((count, 3), dtype=float)
        self.late_range = np.full(count, np.inf, dtype=float)
        for i, obstacle in enumerate(hazards):
            box = obstacle.bounds
            self.hazard_lo[i] = (box.minimum.x, box.minimum.y, box.minimum.z)
            self.hazard_hi[i] = (box.maximum.x, box.maximum.y, box.maximum.z)
            if obstacle.late_visibility_range is not None:
                self.late_range[i] = obstacle.late_visibility_range

        markers = world.markers
        self.marker_xy = np.empty((len(markers), 2), dtype=float)
        self.marker_reach = np.empty(len(markers), dtype=float)
        for i, marker in enumerate(markers):
            self.marker_xy[i] = (marker.position.x, marker.position.y)
            # Farthest a rendered marker pixel can sit from the marker centre:
            # half the diagonal of its (rotated) square footprint.
            self.marker_reach[i] = (marker.size / 2.0) * math.sqrt(2.0)

        self._contains_cache: tuple[float, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # ray casting
    # ------------------------------------------------------------------ #
    def raycast_batch(
        self,
        origin: Vec3,
        directions: np.ndarray,
        max_range: float,
        ground_altitude: float,
        reference: Vec3,
    ) -> np.ndarray:
        """Batched equivalent of :meth:`World.raycast` over ``(N, 3)`` rays.

        Returns an ``(N,)`` array of hit distances with NaN where the scalar
        raycast would return ``None``.  Arithmetic replicates the scalar path
        exactly: directions are re-normalised with the same operations, slab
        tests fold per-axis in the same order, and the nearest candidate is
        selected by value.
        """
        dx = directions[:, 0]
        dy = directions[:, 1]
        dz = directions[:, 2]
        norms = np.sqrt((dx * dx + dy * dy) + dz * dz)
        if np.any(norms < 1e-12):
            raise ValueError("raycast direction must be non-zero")
        units = directions / norms[:, None]

        origin_arr = np.array([origin.x, origin.y, origin.z], dtype=float)
        uz = units[:, 2]
        down = uz < -1e-9
        with np.errstate(divide="ignore", invalid="ignore"):
            t_ground = (ground_altitude - origin_arr[2]) / uz
        ground_ok = down & (t_ground >= 0.0) & (t_ground <= max_range)
        best = np.where(ground_ok, t_ground, np.nan)

        if not self.hazards:
            return best

        # Late-visibility gating, replicating Obstacle.visible_from /
        # AABB.distance_to_point component order.
        ref = np.array([reference.x, reference.y, reference.z], dtype=float)
        closest = np.minimum(np.maximum(ref, self.hazard_lo), self.hazard_hi)
        delta = closest - ref
        ref_dist = np.sqrt(
            (delta[:, 0] * delta[:, 0] + delta[:, 1] * delta[:, 1])
            + delta[:, 2] * delta[:, 2]
        )
        visible = ref_dist <= self.late_range

        # Range cull: a ray's slab entry distance can never undercut the
        # euclidean distance from the origin to the box, so hazards beyond
        # max_range (with a margin dwarfing float rounding) cannot hit.
        odelta = (
            np.minimum(np.maximum(origin_arr, self.hazard_lo), self.hazard_hi)
            - origin_arr
        )
        origin_dist = np.sqrt(
            (odelta[:, 0] * odelta[:, 0] + odelta[:, 1] * odelta[:, 1])
            + odelta[:, 2] * odelta[:, 2]
        )
        active = visible & (origin_dist <= max_range * (1.0 + 1e-9) + 1e-9)
        if not np.any(active):
            return best
        hazard_lo = self.hazard_lo[active]
        hazard_hi = self.hazard_hi[active]

        degenerate = np.abs(units) < 1e-12  # (N, 3)
        safe = np.where(degenerate, 1.0, units)
        inv = 1.0 / safe
        t1 = (hazard_lo[None, :, :] - origin_arr) * inv[:, None, :]
        t2 = (hazard_hi[None, :, :] - origin_arr) * inv[:, None, :]
        t_low = np.minimum(t1, t2)
        t_high = np.maximum(t1, t2)
        deg3 = degenerate[:, None, :]
        t_low = np.where(deg3, -np.inf, t_low)
        t_high = np.where(deg3, np.inf, t_high)
        t_min = np.maximum(
            np.maximum(t_low[..., 0], t_low[..., 1]), t_low[..., 2]
        )
        t_min = np.maximum(t_min, 0.0)
        t_max = np.minimum(
            np.minimum(t_high[..., 0], t_high[..., 1]), t_high[..., 2]
        )
        t_max = np.minimum(t_max, max_range)
        # A degenerate ray axis misses outright when the origin sits outside
        # that slab (the scalar code returns None before touching t_min/t_max).
        outside = (origin_arr < hazard_lo) | (origin_arr > hazard_hi)
        degenerate_miss = np.any(deg3 & outside[None, :, :], axis=-1)
        hit = (t_min <= t_max) & ~degenerate_miss
        distances = np.where(hit, t_min, np.inf)
        nearest = distances.min(axis=1)
        return np.fmin(best, np.where(np.isinf(nearest), np.nan, nearest))

    # ------------------------------------------------------------------ #
    # point collision
    # ------------------------------------------------------------------ #
    def colliding_obstacle(self, point: Vec3, margin: float = 0.0):
        """Batched equivalent of :meth:`World.colliding_obstacle`."""
        if not self.hazards:
            return None
        cached = self._contains_cache
        if cached is None or cached[0] != margin:
            cached = (margin, self.hazard_lo - margin, self.hazard_hi + margin)
            self._contains_cache = cached
        _, lo, hi = cached
        inside = (
            (lo[:, 0] <= point.x)
            & (point.x <= hi[:, 0])
            & (lo[:, 1] <= point.y)
            & (point.y <= hi[:, 1])
            & (lo[:, 2] <= point.z)
            & (point.z <= hi[:, 2])
        )
        index = int(np.argmax(inside))
        if not inside[index]:
            return None
        return self.hazards[index]

    # ------------------------------------------------------------------ #
    # camera-frustum culling and fast-path reach tests
    # ------------------------------------------------------------------ #
    def hull_obstacle_indices(
        self, hull_lo: np.ndarray, hull_hi: np.ndarray, camera_height: float
    ) -> np.ndarray:
        """Indices of hazards whose AABB intersects the view hull.

        Conservative: every ray segment from the camera origin to its ground
        hit lies inside the hull box, so obstacles that do not touch it
        cannot block any pixel.  Obstacles entirely at or above the camera
        are excluded exactly as the renderer's own guard does.
        """
        overlap = np.all(
            (self.hazard_lo <= hull_hi) & (self.hazard_hi >= hull_lo), axis=1
        )
        overlap &= self.hazard_lo[:, 2] < camera_height
        return np.nonzero(overlap)[0]

    def frame_render_clear(self, origin: Vec3, reach: float) -> bool:
        """True when provably no marker or obstacle pixel can render.

        ``reach`` is the analytic frustum ground-footprint radius around the
        camera's nadir point; anything farther than ``reach`` plus its own
        footprint radius (plus :data:`REACH_MARGIN`) cannot appear in frame.
        """
        if len(self.marker_xy):
            dx = self.marker_xy[:, 0] - origin.x
            dy = self.marker_xy[:, 1] - origin.y
            dist = np.sqrt(dx * dx + dy * dy)
            if np.any(dist <= reach + self.marker_reach + REACH_MARGIN):
                return False
        if self.hazards:
            cx = np.minimum(np.maximum(origin.x, self.hazard_lo[:, 0]), self.hazard_hi[:, 0])
            cy = np.minimum(np.maximum(origin.y, self.hazard_lo[:, 1]), self.hazard_hi[:, 1])
            ex = cx - origin.x
            ey = cy - origin.y
            dist = np.sqrt(ex * ex + ey * ey)
            in_reach = (dist <= reach + REACH_MARGIN) & (
                self.hazard_lo[:, 2] < origin.z
            )
            if np.any(in_reach):
                return False
        return True

    def min_hazard_distance(self, point: Vec3) -> float:
        """Smallest 3D distance from ``point`` to any hazard AABB (inf if none)."""
        if not self.hazards:
            return math.inf
        closest = np.minimum(
            np.maximum((point.x, point.y, point.z), self.hazard_lo), self.hazard_hi
        )
        ex = closest[:, 0] - point.x
        ey = closest[:, 1] - point.y
        ez = closest[:, 2] - point.z
        return float(np.min(np.sqrt((ex * ex + ey * ey) + ez * ez)))
