"""Weather model.

The paper evaluates half of its scenarios under adverse weather and reports
the concrete effects that matter to the landing pipeline: reduced image
quality (fog, rain, glare), GPS drift "likely caused by poor weather", and
wind during the final descent.  The :class:`Weather` dataclass captures those
effects as scalar severities that the sensor, vehicle and real-world modules
consume.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass

import numpy as np


class WeatherCondition(enum.Enum):
    """Named weather presets used by the scenario generator."""

    CLEAR = "clear"
    OVERCAST = "overcast"
    FOG = "fog"
    RAIN = "rain"
    SUN_GLARE = "sun_glare"
    WIND = "wind"
    STORM = "storm"

    @property
    def is_adverse(self) -> bool:
        return self not in (WeatherCondition.CLEAR, WeatherCondition.OVERCAST)


@dataclass(frozen=True)
class Weather:
    """Environmental conditions affecting sensing and flight.

    All severities are in [0, 1]; zero means no effect.

    Attributes:
        condition: the named preset this instance was derived from.
        visibility: image contrast multiplier in (0, 1]; fog and rain lower it.
        glare: probability-like severity of saturated bright patches in the
            camera image (sun glare on the marker).
        image_noise: standard deviation of additive pixel noise (0-1 scale).
        wind_speed: mean horizontal wind in m/s.
        gust_intensity: multiplier for turbulent gusts on top of the mean wind.
        gps_degradation: severity of GPS drift / multipath; drives the
            real-world GPS drift model and HDOP/VDOP inflation.
        precipitation: rain intensity, which adds depth-sensor speckle noise.
    """

    condition: WeatherCondition = WeatherCondition.CLEAR
    visibility: float = 1.0
    glare: float = 0.0
    image_noise: float = 0.01
    wind_speed: float = 0.0
    gust_intensity: float = 0.0
    gps_degradation: float = 0.0
    precipitation: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.visibility <= 1.0:
            raise ValueError("visibility must be in (0, 1]")
        for name in ("glare", "gust_intensity", "gps_degradation", "precipitation"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.wind_speed < 0:
            raise ValueError("wind_speed must be non-negative")
        if self.image_noise < 0:
            raise ValueError("image_noise must be non-negative")

    @property
    def is_adverse(self) -> bool:
        return self.condition.is_adverse

    @staticmethod
    def clear() -> "Weather":
        return Weather(condition=WeatherCondition.CLEAR)

    def to_dict(self) -> dict:
        """A JSON-compatible dict representation (see :meth:`from_dict`)."""
        data = asdict(self)
        data["condition"] = self.condition.value
        return data

    @staticmethod
    def from_dict(data: dict) -> "Weather":
        """Rebuild a weather instance from :meth:`to_dict` output."""
        data = dict(data)
        data["condition"] = WeatherCondition(data["condition"])
        return Weather(**data)

    @staticmethod
    def preset(condition: WeatherCondition, severity: float = 1.0) -> "Weather":
        """Build a weather instance from a named preset scaled by ``severity``.

        ``severity`` in [0, 1] linearly scales the adverse effects, allowing the
        scenario generator to draw "mild fog" as well as "dense fog".
        """
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        s = severity
        if condition is WeatherCondition.CLEAR:
            return Weather(condition=condition)
        if condition is WeatherCondition.OVERCAST:
            return Weather(
                condition=condition,
                visibility=1.0 - 0.1 * s,
                image_noise=0.015,
                gps_degradation=0.05 * s,
            )
        if condition is WeatherCondition.FOG:
            return Weather(
                condition=condition,
                visibility=max(0.25, 1.0 - 0.6 * s),
                image_noise=0.02 + 0.03 * s,
                gps_degradation=0.2 * s,
            )
        if condition is WeatherCondition.RAIN:
            return Weather(
                condition=condition,
                visibility=max(0.35, 1.0 - 0.45 * s),
                image_noise=0.02 + 0.05 * s,
                wind_speed=2.0 * s,
                gust_intensity=0.3 * s,
                gps_degradation=0.35 * s,
                precipitation=s,
            )
        if condition is WeatherCondition.SUN_GLARE:
            return Weather(
                condition=condition,
                visibility=1.0,
                glare=0.4 + 0.5 * s,
                image_noise=0.015,
            )
        if condition is WeatherCondition.WIND:
            return Weather(
                condition=condition,
                visibility=1.0 - 0.05 * s,
                wind_speed=3.0 + 5.0 * s,
                gust_intensity=0.5 * s,
                image_noise=0.015,
                gps_degradation=0.1 * s,
            )
        if condition is WeatherCondition.STORM:
            return Weather(
                condition=condition,
                visibility=max(0.3, 1.0 - 0.55 * s),
                glare=0.0,
                image_noise=0.03 + 0.05 * s,
                wind_speed=4.0 + 6.0 * s,
                gust_intensity=0.6 * s,
                gps_degradation=0.3 + 0.5 * s,
                precipitation=s,
            )
        raise ValueError(f"unhandled weather condition {condition}")

    @staticmethod
    def sample_adverse(rng: np.random.Generator, severity_range: tuple[float, float] = (0.5, 1.0)) -> "Weather":
        """Draw a random adverse-weather preset, as the scenario generator does."""
        adverse = [c for c in WeatherCondition if c.is_adverse]
        condition = adverse[int(rng.integers(len(adverse)))]
        severity = float(rng.uniform(*severity_range))
        return Weather.preset(condition, severity)

    @staticmethod
    def sample_normal(rng: np.random.Generator) -> "Weather":
        """Draw a random benign-weather preset."""
        condition = WeatherCondition.CLEAR if rng.random() < 0.6 else WeatherCondition.OVERCAST
        return Weather.preset(condition, float(rng.uniform(0.0, 1.0)))
