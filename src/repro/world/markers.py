"""Landing markers placed in the world.

Each marker is a square ArUco-style fiducial lying flat on the ground.  The
scenario generator places one *target* marker near the GPS goal plus several
*decoy* (false-positive) markers with different IDs, reproducing the paper's
experiment setup ("The target marker, along with false positive markers, was
placed within a defined radius of the target").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Vec3


@dataclass(frozen=True)
class Marker:
    """A square fiducial marker lying flat on the ground.

    Attributes:
        marker_id: the ID encoded in the marker's bit pattern.
        position: centre of the marker on the ground plane.
        size: side length in metres (the paper uses pads of roughly 0.5-1 m).
        yaw: in-plane rotation of the marker, radians.
        is_target: True for the genuine landing pad, False for decoys.
        occlusion: fraction of the marker surface covered by debris or shadow
            edges, in [0, 1).  Drawn by the scenario generator; high values
            make classical detection fail first.
    """

    marker_id: int
    position: Vec3
    size: float = 0.8
    yaw: float = 0.0
    is_target: bool = False
    occlusion: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("marker size must be positive")
        if not 0.0 <= self.occlusion < 1.0:
            raise ValueError("occlusion must be in [0, 1)")

    @property
    def corners(self) -> list[Vec3]:
        """The four corners of the marker square in world coordinates."""
        import math

        half = self.size / 2.0
        cos_y, sin_y = math.cos(self.yaw), math.sin(self.yaw)
        local = [(-half, -half), (half, -half), (half, half), (-half, half)]
        return [
            Vec3(
                self.position.x + cos_y * lx - sin_y * ly,
                self.position.y + sin_y * lx + cos_y * ly,
                self.position.z,
            )
            for lx, ly in local
        ]

    def horizontal_distance_to(self, point: Vec3) -> float:
        return self.position.horizontal_distance_to(point)
