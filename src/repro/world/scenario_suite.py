"""The paper's evaluation suite: 10 maps x 10 scenarios, half adverse weather.

"We created 10 simulation maps [...] encompassing both rural, suburban and
urban areas.  For each map, we generated 10 distinct test scenarios, equally
divided between normal and adverse weather conditions." (§IV.B.1)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.jsonl import read_jsonl_frame
from repro.world.map_generator import MapStyle
from repro.world.scenario import Scenario

#: Schema version stamped into suite JSONL headers.
SUITE_SCHEMA_VERSION = 1

#: Style of each of the ten evaluation maps.  Mirrors the paper's mix of
#: rural, suburban and urban areas.
DEFAULT_MAP_STYLES: tuple[MapStyle, ...] = (
    MapStyle.RURAL,
    MapStyle.RURAL,
    MapStyle.RURAL,
    MapStyle.SUBURBAN,
    MapStyle.SUBURBAN,
    MapStyle.SUBURBAN,
    MapStyle.SUBURBAN,
    MapStyle.URBAN,
    MapStyle.URBAN,
    MapStyle.URBAN,
)


@dataclass
class ScenarioSuite:
    """An ordered collection of scenarios plus the repetition count."""

    scenarios: list[Scenario] = field(default_factory=list)
    repetitions: int = 3
    name: str = ""

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    @property
    def total_runs(self) -> int:
        return len(self.scenarios) * self.repetitions

    @property
    def adverse_count(self) -> int:
        return sum(1 for s in self.scenarios if s.is_adverse_weather)

    def subset(self, count: int) -> "ScenarioSuite":
        """A smaller suite keeping the normal/adverse interleaving.

        Used by the test suite and the quick benchmark presets, which cannot
        afford the full 100-scenario campaign.
        """
        if count <= 0:
            raise ValueError("subset count must be positive")
        step = max(1, len(self.scenarios) // count)
        picked = self.scenarios[::step][:count]
        return ScenarioSuite(scenarios=picked, repetitions=self.repetitions, name=self.name)

    def slice(self, start: int, stop: int) -> "ScenarioSuite":
        """The contiguous sub-suite covering scenarios ``[start, stop)``.

        Unlike :meth:`subset` (which strides to keep the normal/adverse
        interleaving) this preserves suite order exactly, which is what the
        dispatch shard planner needs: concatenating every shard's slice in
        shard order reproduces the full suite.
        """
        if not 0 <= start < stop <= len(self.scenarios):
            raise ValueError(
                f"invalid slice [{start}, {stop}) of a {len(self.scenarios)}-scenario suite"
            )
        return ScenarioSuite(
            scenarios=self.scenarios[start:stop],
            repetitions=self.repetitions,
            name=self.name,
        )

    # ------------------------------------------------------------------ #
    # persistence (JSON Lines: one header line, then one scenario per line)
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | Path) -> Path:
        """Write the suite as JSONL and return the path.

        The serialization is canonical (sorted keys, fixed separators), so a
        deterministic generator produces byte-identical files for the same
        seed — which is what makes suites diffable across machines and CI
        runs.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "scenario-suite",
            "schema": SUITE_SCHEMA_VERSION,
            "name": self.name,
            "repetitions": self.repetitions,
            "count": len(self.scenarios),
        }
        with path.open("w", encoding="utf-8") as handle:
            for record in [header] + [s.to_dict() for s in self.scenarios]:
                handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
                handle.write("\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ScenarioSuite":
        """Load a suite written by :meth:`to_jsonl`."""
        path = Path(path)
        header, payload = read_jsonl_frame(path, "scenario-suite", SUITE_SCHEMA_VERSION)
        scenarios = [Scenario.from_dict(json.loads(line)) for line in payload]
        if header.get("count") is not None and header["count"] != len(scenarios):
            raise ValueError(
                f"{path} header claims {header['count']} scenarios, found {len(scenarios)}"
            )
        return cls(
            scenarios=scenarios,
            repetitions=int(header.get("repetitions", 1)),
            name=str(header.get("name", "")),
        )


def build_evaluation_suite(
    map_count: int = 10,
    scenarios_per_map: int = 10,
    repetitions: int = 3,
    base_seed: int = 2025,
    map_styles: tuple[MapStyle, ...] = DEFAULT_MAP_STYLES,
) -> ScenarioSuite:
    """Build the 10x10 evaluation suite (100 scenarios, 300 runs by default).

    Scenario seeds are derived deterministically from ``base_seed`` so the
    whole campaign is reproducible.  Within each map the first half of the
    scenarios uses normal weather and the second half adverse weather.
    """
    if map_count <= 0 or scenarios_per_map <= 0:
        raise ValueError("map_count and scenarios_per_map must be positive")

    scenarios: list[Scenario] = []
    for map_index in range(map_count):
        style = map_styles[map_index % len(map_styles)]
        map_seed = base_seed + map_index
        for scenario_index in range(scenarios_per_map):
            adverse = scenario_index >= scenarios_per_map / 2
            seed = base_seed * 1000 + map_index * 100 + scenario_index
            scenario_id = f"map{map_index:02d}-s{scenario_index:02d}"
            scenarios.append(
                Scenario.generate(
                    scenario_id=scenario_id,
                    map_style=style,
                    map_seed=map_seed,
                    adverse_weather=adverse,
                    seed=seed,
                )
            )
    return ScenarioSuite(scenarios=scenarios, repetitions=repetitions, name="paper")
