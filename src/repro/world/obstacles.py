"""Static obstacles populating the simulated maps.

Obstacles come in a handful of kinds that matter differently to the landing
system:

* ``BUILDING`` — large solid boxes; the obstacle class that defeats the
  local A* planner in the paper (its search pool cannot route around them).
* ``TREE`` — a trunk plus a *canopy* whose occupancy is only discovered when
  the depth sensor gets close; this reproduces the "trapped in foliage"
  failure of EGO-Planner described in §II.B.
* ``POLE`` — thin vertical obstacles (light posts, antennas) that stress the
  map resolution.
* ``WATER`` — zero-height regions that are not collision hazards for flight
  but make any landing inside them a failure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import AABB, Vec3


class ObstacleKind(enum.Enum):
    """Category of a static obstacle."""

    BUILDING = "building"
    TREE = "tree"
    POLE = "pole"
    WALL = "wall"
    WATER = "water"


@dataclass(frozen=True)
class Obstacle:
    """A static obstacle occupying an axis-aligned volume.

    Attributes:
        kind: the obstacle category.
        bounds: the solid volume of the obstacle.
        name: human-readable identifier used in logs and failure reports.
        late_visibility_range: distance (m) at which a depth sensor first
            perceives this obstacle.  ``None`` means it is visible at the
            sensor's full range.  Tree canopies use a short range to model the
            paper's "at-the-time unseen obstacles" that trap the local planner.
    """

    kind: ObstacleKind
    bounds: AABB
    name: str = ""
    late_visibility_range: float | None = None

    @property
    def height(self) -> float:
        return self.bounds.maximum.z

    @property
    def is_collision_hazard(self) -> bool:
        """Water is a landing hazard but not a flight-collision hazard."""
        return self.kind is not ObstacleKind.WATER

    def contains(self, point: Vec3, margin: float = 0.0) -> bool:
        return self.bounds.contains(point, tol=margin)

    def visible_from(self, sensor_position: Vec3) -> bool:
        """Whether a depth sensor at ``sensor_position`` can perceive this obstacle.

        Late-visibility obstacles (tree canopies) only appear once the sensor is
        within ``late_visibility_range`` of the obstacle surface.
        """
        if self.late_visibility_range is None:
            return True
        return self.bounds.distance_to_point(sensor_position) <= self.late_visibility_range


def building(
    center_x: float,
    center_y: float,
    width: float,
    depth: float,
    height: float,
    name: str = "building",
) -> Obstacle:
    """A solid rectangular building resting on the ground."""
    return Obstacle(
        kind=ObstacleKind.BUILDING,
        bounds=AABB.from_ground_footprint(center_x, center_y, width, depth, height),
        name=name,
    )


def tree(
    center_x: float,
    center_y: float,
    canopy_radius: float,
    height: float,
    name: str = "tree",
    canopy_visibility_range: float = 6.0,
) -> list[Obstacle]:
    """A tree: a thin always-visible trunk plus a late-visibility canopy.

    The canopy starts at 40% of the tree height, matching the geometry that
    lets a drone fly *over* foliage it has not yet mapped and then descend
    into it — the EGO-Planner failure mode reported in the paper.
    """
    trunk = Obstacle(
        kind=ObstacleKind.TREE,
        bounds=AABB.from_ground_footprint(center_x, center_y, 0.6, 0.6, height * 0.5),
        name=f"{name}-trunk",
    )
    canopy_base = height * 0.4
    canopy = Obstacle(
        kind=ObstacleKind.TREE,
        bounds=AABB(
            Vec3(center_x - canopy_radius, center_y - canopy_radius, canopy_base),
            Vec3(center_x + canopy_radius, center_y + canopy_radius, height),
        ),
        name=f"{name}-canopy",
        late_visibility_range=canopy_visibility_range,
    )
    return [trunk, canopy]


def pole(center_x: float, center_y: float, height: float, name: str = "pole") -> Obstacle:
    """A thin vertical pole (light post / antenna)."""
    return Obstacle(
        kind=ObstacleKind.POLE,
        bounds=AABB.from_ground_footprint(center_x, center_y, 0.4, 0.4, height),
        name=name,
    )


def wall(
    start_x: float,
    start_y: float,
    end_x: float,
    end_y: float,
    height: float,
    thickness: float = 0.5,
    name: str = "wall",
) -> Obstacle:
    """A straight wall segment between two ground points."""
    lo_x, hi_x = sorted((start_x, end_x))
    lo_y, hi_y = sorted((start_y, end_y))
    # Give the thin axis at least the requested thickness.
    if hi_x - lo_x < thickness:
        mid = (lo_x + hi_x) / 2
        lo_x, hi_x = mid - thickness / 2, mid + thickness / 2
    if hi_y - lo_y < thickness:
        mid = (lo_y + hi_y) / 2
        lo_y, hi_y = mid - thickness / 2, mid + thickness / 2
    return Obstacle(
        kind=ObstacleKind.WALL,
        bounds=AABB(Vec3(lo_x, lo_y, 0.0), Vec3(hi_x, hi_y, height)),
        name=name,
    )


def water(
    center_x: float, center_y: float, width: float, depth: float, name: str = "water"
) -> Obstacle:
    """A water body: flat, not a flight hazard, but an invalid landing surface."""
    return Obstacle(
        kind=ObstacleKind.WATER,
        bounds=AABB.from_ground_footprint(center_x, center_y, width, depth, 0.05),
        name=name,
    )
