"""The queryable simulated world.

A :class:`World` holds the static geometry (obstacles, markers, terrain
bounds) and the ambient weather.  Sensors, the collision monitor and the
mission runner query it; nothing in the landing system reads it directly —
the system only sees sensor products, exactly as the real system only sees
camera frames and point clouds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry import AABB, Vec3
from repro.world.markers import Marker
from repro.world.obstacles import Obstacle, ObstacleKind
from repro.world.weather import Weather


@dataclass
class World:
    """A static 3D environment with markers and weather.

    Attributes:
        name: map identifier (e.g. ``urban-03``).
        bounds: the playable volume; the drone must stay inside it.
        obstacles: static obstacles.
        markers: landing markers (one target plus decoys).
        weather: ambient weather for the scenario being run.
        ground_altitude: z of flat ground (always 0 in the generated maps).
        geometry_key: optional content key (``Scenario.fingerprint()``) that
            lets :meth:`geometry` reuse one cached snapshot across repeated
            builds of the same scenario.
    """

    name: str
    bounds: AABB
    obstacles: list[Obstacle] = field(default_factory=list)
    markers: list[Marker] = field(default_factory=list)
    weather: Weather = field(default_factory=Weather.clear)
    ground_altitude: float = 0.0
    geometry_key: str | None = None

    def geometry(self):
        """Batched numpy snapshot of the static geometry (cached).

        See :mod:`repro.world.static_geometry`; the snapshot is rebuilt when
        the obstacle or marker counts change.
        """
        from repro.world.static_geometry import geometry_for_world

        return geometry_for_world(self)

    # ------------------------------------------------------------------ #
    # markers
    # ------------------------------------------------------------------ #
    @property
    def target_marker(self) -> Optional[Marker]:
        """The genuine landing pad, if the scenario defines one."""
        for marker in self.markers:
            if marker.is_target:
                return marker
        return None

    def markers_within(self, center: Vec3, radius: float) -> list[Marker]:
        """All markers whose centres are within ``radius`` horizontally."""
        return [m for m in self.markers if m.horizontal_distance_to(center) <= radius]

    # ------------------------------------------------------------------ #
    # collision queries (used by the ground-truth collision monitor)
    # ------------------------------------------------------------------ #
    def collision_obstacles(self) -> list[Obstacle]:
        return [o for o in self.obstacles if o.is_collision_hazard]

    def point_in_collision(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` (plus margin) is inside any solid obstacle."""
        if point.z <= self.ground_altitude - 1e-6:
            return True
        return self.geometry().colliding_obstacle(point, margin) is not None

    def colliding_obstacle(self, point: Vec3, margin: float = 0.0) -> Optional[Obstacle]:
        """The first obstacle in collision with ``point``, or ``None``."""
        return self.geometry().colliding_obstacle(point, margin)

    def segment_in_collision(self, start: Vec3, end: Vec3, margin: float = 0.0) -> bool:
        """True if the straight segment intersects any solid obstacle."""
        for obstacle in self.obstacles:
            if not obstacle.is_collision_hazard:
                continue
            box = obstacle.bounds.inflated(margin) if margin > 0 else obstacle.bounds
            if box.segment_intersects(start, end):
                return True
        return False

    def clearance(self, point: Vec3) -> float:
        """Distance from ``point`` to the nearest solid obstacle surface (or ground)."""
        best = max(0.0, point.z - self.ground_altitude)
        for obstacle in self.collision_obstacles():
            best = min(best, obstacle.bounds.distance_to_point(point))
        return best

    # ------------------------------------------------------------------ #
    # ray casting (used by the depth sensor and rangefinder)
    # ------------------------------------------------------------------ #
    def raycast(
        self,
        origin: Vec3,
        direction: Vec3,
        max_range: float,
        visible_only_from: Optional[Vec3] = None,
    ) -> Optional[float]:
        """Distance to the first surface hit along a ray, or ``None``.

        Args:
            origin: ray origin in world coordinates.
            direction: ray direction (normalised internally).
            max_range: sensor range limit.
            visible_only_from: if given, obstacles with restricted visibility
                (tree canopies) are only hit when this position is within
                their ``late_visibility_range`` — this is how the depth sensor
                models geometry that has not yet been perceived.
        """
        norm = direction.norm()
        if norm < 1e-12:
            raise ValueError("raycast direction must be non-zero")
        unit = direction / norm

        best: Optional[float] = None

        # Ground plane intersection.
        if unit.z < -1e-9:
            t_ground = (self.ground_altitude - origin.z) / unit.z
            if 0.0 <= t_ground <= max_range:
                best = t_ground

        reference = visible_only_from if visible_only_from is not None else origin
        for obstacle in self.obstacles:
            if not obstacle.is_collision_hazard:
                continue
            if not obstacle.visible_from(reference):
                continue
            hit = obstacle.bounds.ray_intersection(origin, unit, max_range)
            if hit is not None and (best is None or hit < best):
                best = hit
        return best

    def raycast_batch(
        self,
        origin: Vec3,
        directions,
        max_range: float,
        visible_only_from: Optional[Vec3] = None,
    ):
        """Batched :meth:`raycast` over an ``(N, 3)`` direction array.

        Returns an ``(N,)`` float array with NaN where a scalar raycast would
        return ``None``; results are bit-identical to calling :meth:`raycast`
        per row (see :mod:`repro.world.static_geometry`).
        """
        reference = visible_only_from if visible_only_from is not None else origin
        return self.geometry().raycast_batch(
            origin, directions, max_range, self.ground_altitude, reference
        )

    # ------------------------------------------------------------------ #
    # landing surface queries
    # ------------------------------------------------------------------ #
    def is_valid_landing_point(self, point: Vec3, clearance_radius: float = 0.5) -> bool:
        """True if a drone can touch down at ``point`` without hazard.

        The point must lie inside the map bounds, not inside or on top of an
        obstacle, and not on water.
        """
        if not self.bounds.contains(point.with_z(max(point.z, self.ground_altitude)), tol=1e-6):
            return False
        probe = point.with_z(self.ground_altitude + 0.1)
        for obstacle in self.obstacles:
            box = obstacle.bounds.inflated(clearance_radius)
            if obstacle.kind is ObstacleKind.WATER:
                # Water: only horizontal containment matters.
                if (
                    box.minimum.x <= point.x <= box.maximum.x
                    and box.minimum.y <= point.y <= box.maximum.y
                ):
                    return False
            elif box.contains(probe):
                return False
        return True

    def contains(self, point: Vec3) -> bool:
        return self.bounds.contains(point)
