"""Simulated 3D environments (the AirSim / Unreal Engine substitute).

The paper generates its evaluation scenarios from ten AirSim maps covering
rural, suburban and urban areas, each with a landing marker, false-positive
markers and varying weather.  This package builds the equivalent synthetic
worlds:

* :mod:`repro.world.obstacles` — buildings, trees, poles and water bodies.
* :mod:`repro.world.markers` — ArUco-style landing pads and decoys.
* :mod:`repro.world.weather` — fog, rain, glare, wind and GPS-degradation.
* :mod:`repro.world.world` — the queryable :class:`World` container.
* :mod:`repro.world.map_generator` — procedural rural / suburban / urban maps.
* :mod:`repro.world.scenario` — a single test scenario (map + marker layout +
  weather + start / target positions).
* :mod:`repro.world.scenario_suite` — the 10-map x 10-scenario evaluation
  suite used by the benchmark harness.
* :mod:`repro.world.scenario_gen` — declarative scenario generation over the
  stress axes (wind, weather, GPS drift, sensor faults, obstacle density,
  low light, marker stress).
"""

from repro.world.obstacles import Obstacle, ObstacleKind
from repro.world.markers import Marker
from repro.world.weather import Weather, WeatherCondition
from repro.world.world import World
from repro.world.map_generator import MapStyle, generate_map
from repro.world.scenario import Scenario
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite
from repro.world.scenario_gen import (
    STRESS_AXES,
    SUITE_PRESETS,
    ScenarioSpec,
    SuiteSpec,
    Uniform,
    axis_coverage,
    generate_suite,
    suite_preset,
)

__all__ = [
    "Obstacle",
    "ObstacleKind",
    "Marker",
    "Weather",
    "WeatherCondition",
    "World",
    "MapStyle",
    "generate_map",
    "Scenario",
    "ScenarioSuite",
    "build_evaluation_suite",
    "STRESS_AXES",
    "SUITE_PRESETS",
    "ScenarioSpec",
    "SuiteSpec",
    "Uniform",
    "axis_coverage",
    "generate_suite",
    "suite_preset",
]
