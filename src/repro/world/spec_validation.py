"""Structured validation for suite-spec (and fault-axis) submissions.

``SuiteSpec.from_dict`` / ``FaultSpec.from_dict`` raise on the *first*
problem with a bare ``ValueError``, which is the right contract for trusted
internal callers but a poor one for submission surfaces: a CLI user or an
HTTP client wants *every* problem, each tied to the field that caused it.

This module walks a submitted payload field by field, collecting
:class:`SpecIssue` objects (``field`` in dotted/indexed path form, plus a
``reason``), and raises one :class:`SpecValidationError` carrying them all.
It is shared by:

* the campaign service's ``POST /jobs`` endpoint (400 responses carry the
  issue list as JSON),
* ``python -m repro.dispatch plan/run --spec`` and
* ``python -m repro.scenarios --spec``,

so the three submission surfaces agree on what a valid spec is — the final
authority is still ``SuiteSpec.from_dict`` itself, which is always invoked
last so the validator can never *accept* something the constructor refuses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.faults.spec import FAULT_PRESETS, FaultSpec, resolve_faults
from repro.world.scenario_gen import ScenarioSpec, SuiteSpec, Uniform


@dataclass(frozen=True)
class SpecIssue:
    """One field-level problem with a submitted spec."""

    field: str
    reason: str

    def to_dict(self) -> dict[str, str]:
        return {"field": self.field, "reason": self.reason}


class SpecValidationError(ValueError):
    """A submission failed validation; ``issues`` lists every problem.

    Subclasses ``ValueError`` so existing CLI error handlers (which catch
    ``ValueError`` and exit 2) keep working; ``str()`` renders one line per
    issue, and :meth:`to_payload` is the HTTP 400 body shape.
    """

    def __init__(self, issues: list[SpecIssue], *, subject: str = "suite spec") -> None:
        self.issues = list(issues)
        self.subject = subject
        lines = [f"invalid {subject}: {len(self.issues)} problem(s)"]
        lines.extend(f"  - {issue.field}: {issue.reason}" for issue in self.issues)
        super().__init__("\n".join(lines))

    def to_payload(self) -> dict[str, Any]:
        return {
            "error": f"invalid {self.subject}",
            "issues": [issue.to_dict() for issue in self.issues],
        }


# ---------------------------------------------------------------------- #
# field-level checks
# ---------------------------------------------------------------------- #
_RANGE_FIELDS = {
    "weather_severity", "wind_speed", "gust_intensity", "gps_degradation",
    "image_noise", "precipitation", "obstacle_density", "lighting",
    "target_occlusion", "gps_error", "target_distance", "marker_size",
}

_INT_FIELDS = {"count", "seed", "repetitions", "map_pool"}


def _check_scenario_spec(data: Any, issues: list[SpecIssue], prefix: str) -> None:
    if not isinstance(data, dict):
        issues.append(
            SpecIssue(prefix, f"expected a ScenarioSpec object, got {type(data).__name__}")
        )
        return
    known = {f.name for f in fields(ScenarioSpec)}
    for key in sorted(set(data) - known):
        issues.append(SpecIssue(f"{prefix}.{key}", "unknown ScenarioSpec field"))
    for key in sorted(_RANGE_FIELDS & set(data)):
        value = data[key]
        if value is None:
            continue
        try:
            Uniform.from_value(value)
        except (ValueError, KeyError, TypeError) as error:
            issues.append(SpecIssue(f"{prefix}.{key}", str(error)))
    if issues:
        return
    try:
        ScenarioSpec.from_dict(data)
    except (ValueError, KeyError, TypeError) as error:
        issues.append(SpecIssue(prefix, str(error)))


def validate_fault_axis(
    value: Any, *, allow_paths: bool = True, field: str = "faults"
) -> tuple[FaultSpec, ...]:
    """Validate a submitted fault axis; structured errors, optional no-path mode.

    ``allow_paths=False`` is the submission-surface mode: a string must be a
    fault *preset* name — never a server-side file path — and spec objects
    must be inline dicts.  Raises :class:`SpecValidationError`.
    """
    issues: list[SpecIssue] = []
    if value is None:
        return ()
    if isinstance(value, str) and not allow_paths:
        key = value.strip().lower()
        if key not in FAULT_PRESETS:
            raise SpecValidationError(
                [SpecIssue(field, f"unknown fault preset {value!r}; expected one of "
                                  f"{sorted(FAULT_PRESETS)} (file paths are not "
                                  f"accepted on this surface)")],
                subject="fault axis",
            )
        return FAULT_PRESETS[key]
    if isinstance(value, list):
        specs: list[FaultSpec] = []
        for index, item in enumerate(value):
            if not isinstance(item, (dict, FaultSpec)):
                issues.append(
                    SpecIssue(f"{field}[{index}]",
                              f"expected a FaultSpec object, got {type(item).__name__}")
                )
                continue
            try:
                specs.append(
                    item if isinstance(item, FaultSpec) else FaultSpec.from_dict(item)
                )
            except (ValueError, KeyError, TypeError) as error:
                issues.append(SpecIssue(f"{field}[{index}]", str(error)))
        if issues:
            raise SpecValidationError(issues, subject="fault axis")
        return tuple(specs)
    try:
        return resolve_faults(value)
    except (ValueError, TypeError, OSError) as error:
        raise SpecValidationError(
            [SpecIssue(field, str(error))], subject="fault axis"
        ) from error


def validate_suite_spec(data: Any, *, allow_fault_paths: bool = True) -> SuiteSpec:
    """Validate a submitted SuiteSpec payload; returns the constructed spec.

    Raises :class:`SpecValidationError` carrying one :class:`SpecIssue` per
    problem instead of ``SuiteSpec.from_dict``'s first-error ``ValueError``.
    """
    issues: list[SpecIssue] = []
    if not isinstance(data, dict):
        raise SpecValidationError(
            [SpecIssue("", f"expected a SuiteSpec object, got {type(data).__name__}")]
        )
    known = {f.name for f in fields(SuiteSpec)}
    for key in sorted(set(data) - known):
        issues.append(SpecIssue(key, "unknown SuiteSpec field"))
    for key in sorted(_INT_FIELDS & set(data)):
        value = data[key]
        if isinstance(value, bool) or not isinstance(value, int):
            issues.append(
                SpecIssue(key, f"expected an integer, got {type(value).__name__}")
            )
        elif key != "seed" and value <= 0:
            issues.append(SpecIssue(key, f"must be positive, got {value}"))
    if "name" in data and not isinstance(data["name"], str):
        issues.append(
            SpecIssue("name", f"expected a string, got {type(data['name']).__name__}")
        )
    if "scenario" in data and not isinstance(data["scenario"], ScenarioSpec):
        _check_scenario_spec(data["scenario"], issues, "scenario")
    faults: tuple[FaultSpec, ...] | None = None
    if "faults" in data and data["faults"] is not None:
        try:
            faults = validate_fault_axis(
                data["faults"], allow_paths=allow_fault_paths
            )
        except SpecValidationError as error:
            issues.extend(error.issues)
    if issues:
        raise SpecValidationError(issues)
    if faults is not None:
        data = {**data, "faults": faults}
    try:
        return SuiteSpec.from_dict(data)
    except (ValueError, KeyError, TypeError) as error:
        # The validator's per-field checks missed something the constructor
        # enforces; surface it structurally all the same.
        raise SpecValidationError([SpecIssue("", str(error))]) from error


#: Keys an inline ``"suite"`` submission object may carry (mirrors the
#: scenario-suite JSONL header plus the scenario list itself).
_INLINE_SUITE_FIELDS = {"name", "repetitions", "scenarios"}


def validate_inline_suite(data: Any, *, field: str = "suite"):
    """Validate an inline scenario-suite submission; returns a ScenarioSuite.

    The submission-surface twin of ``ScenarioSuite.from_jsonl``: instead of
    generating scenarios from a spec server-side, the client ships concrete
    ``Scenario.to_dict()`` objects (the fault-space search engine submits
    probe sub-suites this way).  Raises :class:`SpecValidationError` with
    one issue per problem.
    """
    from repro.world.scenario import Scenario
    from repro.world.scenario_suite import ScenarioSuite

    issues: list[SpecIssue] = []
    if not isinstance(data, dict):
        raise SpecValidationError(
            [SpecIssue(field, f"expected a suite object, got {type(data).__name__}")],
            subject="inline suite",
        )
    for key in sorted(set(data) - _INLINE_SUITE_FIELDS):
        issues.append(SpecIssue(f"{field}.{key}", "unknown suite field"))
    name = data.get("name", "")
    if not isinstance(name, str):
        issues.append(
            SpecIssue(f"{field}.name", f"expected a string, got {type(name).__name__}")
        )
        name = ""
    repetitions = data.get("repetitions", 1)
    if isinstance(repetitions, bool) or not isinstance(repetitions, int):
        issues.append(
            SpecIssue(
                f"{field}.repetitions",
                f"expected an integer, got {type(repetitions).__name__}",
            )
        )
        repetitions = 1
    elif repetitions <= 0:
        issues.append(
            SpecIssue(f"{field}.repetitions", f"must be positive, got {repetitions}")
        )
        repetitions = 1
    raw_scenarios = data.get("scenarios")
    scenarios: list[Any] = []
    if not isinstance(raw_scenarios, list) or not raw_scenarios:
        issues.append(
            SpecIssue(f"{field}.scenarios", "expected a non-empty list of scenarios")
        )
    else:
        for index, item in enumerate(raw_scenarios):
            if not isinstance(item, dict):
                issues.append(
                    SpecIssue(
                        f"{field}.scenarios[{index}]",
                        f"expected a Scenario object, got {type(item).__name__}",
                    )
                )
                continue
            try:
                scenarios.append(Scenario.from_dict(item))
            except (ValueError, KeyError, TypeError) as error:
                issues.append(SpecIssue(f"{field}.scenarios[{index}]", str(error)))
        ids = [scenario.scenario_id for scenario in scenarios]
        duplicates = sorted({sid for sid in ids if ids.count(sid) > 1})
        if duplicates:
            issues.append(
                SpecIssue(f"{field}.scenarios", f"duplicate scenario ids {duplicates}")
            )
    if issues:
        raise SpecValidationError(issues, subject="inline suite")
    return ScenarioSuite(scenarios=scenarios, repetitions=repetitions, name=name)


def load_suite_spec(path: str | Path) -> SuiteSpec:
    """Read and validate a SuiteSpec JSON file (the ``--spec`` file format)."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise FileNotFoundError(f"cannot read suite spec {path}: {error}") from error
    except ValueError as error:
        raise SpecValidationError(
            [SpecIssue("", f"{path} is not valid JSON: {error}")]
        ) from error
    return validate_suite_spec(data)
