"""Procedural generation of rural, suburban and urban maps.

The paper builds ten AirSim maps "encompassing both rural, suburban and urban
areas".  This module generates statistically comparable synthetic maps: the
urban maps are dense with tall buildings (the obstacle class that defeats the
local planner), suburban maps mix houses, walls and trees, and rural maps are
mostly open with scattered trees and the occasional water body.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.geometry import AABB, Vec3
from repro.world.obstacles import Obstacle, building, pole, tree, wall, water
from repro.world.world import World


class MapStyle(enum.Enum):
    """The three environment classes used in the evaluation."""

    RURAL = "rural"
    SUBURBAN = "suburban"
    URBAN = "urban"


@dataclass(frozen=True)
class MapSpec:
    """Parameters controlling procedural map generation."""

    style: MapStyle
    side_length: float = 120.0
    max_altitude: float = 60.0
    building_count: int = 0
    tree_count: int = 0
    pole_count: int = 0
    wall_count: int = 0
    water_count: int = 0

    @staticmethod
    def for_style(style: MapStyle) -> "MapSpec":
        if style is MapStyle.RURAL:
            return MapSpec(style=style, building_count=1, tree_count=14, pole_count=2, water_count=2)
        if style is MapStyle.SUBURBAN:
            return MapSpec(style=style, building_count=6, tree_count=8, pole_count=5, wall_count=3, water_count=1)
        return MapSpec(style=style, building_count=12, tree_count=3, pole_count=8, wall_count=2, water_count=0)


# Region around the origin kept clear of obstacles so the drone always has a
# safe take-off column, and region around the scenario target kept clear so a
# landing is always physically possible (the paper's scenarios are all
# completable; failures come from the system, not from impossible maps).
_SPAWN_CLEARANCE = 8.0


def _sample_position(
    rng: np.random.Generator, spec: MapSpec, keep_clear: list[Vec3], clearance: float
) -> tuple[float, float]:
    """Draw an (x, y) inside the map, away from the keep-clear points."""
    half = spec.side_length / 2.0 - 5.0
    for _ in range(200):
        x = float(rng.uniform(-half, half))
        y = float(rng.uniform(-half, half))
        candidate = Vec3(x, y, 0.0)
        if all(candidate.horizontal_distance_to(p) > clearance for p in keep_clear):
            return x, y
    # Degenerate spec (tiny map, huge clearance): fall back to the edge.
    return half, half


def generate_map(
    style: MapStyle,
    seed: int,
    name: str | None = None,
    spec: MapSpec | None = None,
    keep_clear: list[Vec3] | None = None,
) -> World:
    """Generate a procedural map of the given style.

    Args:
        style: rural / suburban / urban.
        seed: deterministic seed; the same (style, seed) always yields the
            same map.
        name: optional map name; defaults to ``"{style}-{seed}"``.
        spec: override the default obstacle counts.
        keep_clear: world positions that must stay obstacle-free (the take-off
            point and the scenario's landing target).

    Returns:
        A fully populated :class:`World` with clear weather (the scenario
        applies weather afterwards).
    """
    spec = spec or MapSpec.for_style(style)
    rng = np.random.default_rng(seed)
    keep_clear = list(keep_clear or []) + [Vec3.zero()]

    half = spec.side_length / 2.0
    bounds = AABB(
        Vec3(-half, -half, 0.0), Vec3(half, half, spec.max_altitude)
    )
    obstacles: list[Obstacle] = []

    for i in range(spec.building_count):
        x, y = _sample_position(rng, spec, keep_clear, _SPAWN_CLEARANCE + 6.0)
        width = float(rng.uniform(8.0, 22.0)) if style is MapStyle.URBAN else float(rng.uniform(6.0, 14.0))
        depth = float(rng.uniform(8.0, 22.0)) if style is MapStyle.URBAN else float(rng.uniform(6.0, 14.0))
        if style is MapStyle.URBAN:
            height = float(rng.uniform(12.0, 35.0))
        elif style is MapStyle.SUBURBAN:
            height = float(rng.uniform(5.0, 12.0))
        else:
            height = float(rng.uniform(3.0, 6.0))
        obstacles.append(building(x, y, width, depth, height, name=f"building-{i}"))

    for i in range(spec.tree_count):
        x, y = _sample_position(rng, spec, keep_clear, _SPAWN_CLEARANCE)
        radius = float(rng.uniform(2.0, 5.0))
        height = float(rng.uniform(6.0, 14.0))
        obstacles.extend(tree(x, y, radius, height, name=f"tree-{i}"))

    for i in range(spec.pole_count):
        x, y = _sample_position(rng, spec, keep_clear, _SPAWN_CLEARANCE)
        obstacles.append(pole(x, y, float(rng.uniform(4.0, 10.0)), name=f"pole-{i}"))

    for i in range(spec.wall_count):
        x, y = _sample_position(rng, spec, keep_clear, _SPAWN_CLEARANCE)
        length = float(rng.uniform(8.0, 20.0))
        if rng.random() < 0.5:
            obstacles.append(wall(x, y, x + length, y, float(rng.uniform(2.0, 4.0)), name=f"wall-{i}"))
        else:
            obstacles.append(wall(x, y, x, y + length, float(rng.uniform(2.0, 4.0)), name=f"wall-{i}"))

    for i in range(spec.water_count):
        x, y = _sample_position(rng, spec, keep_clear, _SPAWN_CLEARANCE + 4.0)
        obstacles.append(
            water(x, y, float(rng.uniform(8.0, 20.0)), float(rng.uniform(8.0, 20.0)), name=f"water-{i}")
        )

    return World(
        name=name or f"{style.value}-{seed}",
        bounds=bounds,
        obstacles=obstacles,
    )


def prune_obstacles_near(world: World, point: Vec3, radius: float) -> None:
    """Remove obstacles whose footprint encroaches on a keep-clear point.

    The scenario generator calls this after choosing the target-marker
    position so that the landing pad itself is always reachable.
    """
    kept: list[Obstacle] = []
    for obstacle in world.obstacles:
        closest = obstacle.bounds.closest_point(point.with_z(0.5))
        if closest.horizontal_distance_to(point) >= radius:
            kept.append(obstacle)
    world.obstacles = kept
