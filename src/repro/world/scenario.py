"""A single evaluation scenario.

A scenario fixes everything that varies between runs in the paper's
experiments: the map, the weather, the initial GPS estimate of the landing
site, the true target-marker position (offset from that estimate), and the
decoy markers placed within a radius of the target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Vec3
from repro.world.map_generator import MapStyle, generate_map, prune_obstacles_near
from repro.world.markers import Marker
from repro.world.weather import Weather
from repro.world.world import World

#: ArUco IDs used for the genuine landing pad and for decoys.  The target ID
#: is fixed (the mission briefs the drone with it); decoys draw from the rest
#: of the dictionary.
TARGET_MARKER_ID = 7
DECOY_MARKER_IDS = (3, 11, 19, 23, 29, 35, 41)


@dataclass
class Scenario:
    """A fully specified landing test case.

    Attributes:
        scenario_id: unique identifier within the evaluation suite.
        map_name: name of the underlying map.
        map_style: rural / suburban / urban.
        map_seed: seed used to generate the map geometry.
        weather: weather applied for this run.
        start_position: where the drone is initialised (map origin in the paper).
        gps_target: the briefed GPS estimate of the landing site.
        marker_position: the true position of the target marker (the GPS
            estimate is deliberately offset from it).
        decoy_count: number of false-positive markers placed near the target.
        cruise_altitude: altitude for the transit and search phases.
        seed: scenario-level seed for sensor noise and decoy placement.
    """

    scenario_id: str
    map_style: MapStyle
    map_seed: int
    weather: Weather
    gps_target: Vec3
    marker_position: Vec3
    start_position: Vec3 = field(default_factory=Vec3.zero)
    decoy_count: int = 2
    cruise_altitude: float = 15.0
    marker_size: float = 0.8
    seed: int = 0
    map_name: str = ""

    def __post_init__(self) -> None:
        if not self.map_name:
            self.map_name = f"{self.map_style.value}-{self.map_seed}"

    @property
    def is_adverse_weather(self) -> bool:
        return self.weather.is_adverse

    def build_world(self) -> World:
        """Instantiate the world for this scenario (map + markers + weather)."""
        rng = np.random.default_rng(self.seed)
        world = generate_map(
            self.map_style,
            self.map_seed,
            name=self.map_name,
            keep_clear=[self.start_position, self.marker_position],
        )
        prune_obstacles_near(world, self.marker_position, radius=4.0)
        world.weather = self.weather

        occlusion_target = 0.0
        if self.weather.is_adverse:
            # Adverse weather scenarios also tend to have partially obscured
            # pads (shadows, debris) — the conditions §III.A calls out.
            occlusion_target = float(rng.uniform(0.0, 0.3))

        markers = [
            Marker(
                marker_id=TARGET_MARKER_ID,
                position=self.marker_position,
                size=self.marker_size,
                yaw=float(rng.uniform(0, 2 * math.pi)),
                is_target=True,
                occlusion=occlusion_target,
            )
        ]
        for i in range(self.decoy_count):
            angle = float(rng.uniform(0, 2 * math.pi))
            distance = float(rng.uniform(6.0, 18.0))
            candidate = Vec3(
                self.marker_position.x + distance * math.cos(angle),
                self.marker_position.y + distance * math.sin(angle),
                0.0,
            )
            if not world.bounds.contains(candidate.with_z(0.1)):
                continue
            markers.append(
                Marker(
                    marker_id=DECOY_MARKER_IDS[i % len(DECOY_MARKER_IDS)],
                    position=candidate,
                    size=self.marker_size,
                    yaw=float(rng.uniform(0, 2 * math.pi)),
                    is_target=False,
                    occlusion=float(rng.uniform(0.0, 0.2)),
                )
            )
        world.markers = markers
        return world

    @staticmethod
    def generate(
        scenario_id: str,
        map_style: MapStyle,
        map_seed: int,
        adverse_weather: bool,
        seed: int,
        gps_error_range: tuple[float, float] = (1.0, 5.0),
        target_distance_range: tuple[float, float] = (25.0, 45.0),
    ) -> "Scenario":
        """Randomly draw one scenario as the paper's generator does.

        The marker is placed at a random bearing and distance from the start,
        and the briefed GPS target is offset from the true marker position by
        a bounded error, so the drone must *search* for the pad on arrival.
        """
        rng = np.random.default_rng(seed)
        bearing = float(rng.uniform(0, 2 * math.pi))
        distance = float(rng.uniform(*target_distance_range))
        marker_position = Vec3(
            distance * math.cos(bearing), distance * math.sin(bearing), 0.0
        )
        gps_error = float(rng.uniform(*gps_error_range))
        gps_bearing = float(rng.uniform(0, 2 * math.pi))
        gps_target = Vec3(
            marker_position.x + gps_error * math.cos(gps_bearing),
            marker_position.y + gps_error * math.sin(gps_bearing),
            0.0,
        )
        weather = (
            Weather.sample_adverse(rng) if adverse_weather else Weather.sample_normal(rng)
        )
        return Scenario(
            scenario_id=scenario_id,
            map_style=map_style,
            map_seed=map_seed,
            weather=weather,
            gps_target=gps_target,
            marker_position=marker_position,
            decoy_count=int(rng.integers(1, 4)),
            seed=seed,
        )
