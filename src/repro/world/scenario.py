"""A single evaluation scenario.

A scenario fixes everything that varies between runs in the paper's
experiments: the map, the weather, the initial GPS estimate of the landing
site, the true target-marker position (offset from that estimate), and the
decoy markers placed within a radius of the target.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.geometry import Vec3
from repro.world.map_generator import MapSpec, MapStyle, generate_map, prune_obstacles_near
from repro.world.markers import Marker
from repro.world.weather import Weather
from repro.world.world import World

#: ArUco IDs used for the genuine landing pad and for decoys.  The target ID
#: is fixed (the mission briefs the drone with it); decoys draw from the rest
#: of the dictionary.
TARGET_MARKER_ID = 7
DECOY_MARKER_IDS = (3, 11, 19, 23, 29, 35, 41)


def sample_marker_placement(
    rng: np.random.Generator,
    target_distance_range: tuple[float, float],
    gps_error_range: tuple[float, float],
) -> tuple[Vec3, Vec3]:
    """Draw the true marker position and the (offset) briefed GPS target.

    The marker lands at a random bearing and distance from the start and the
    GPS estimate is displaced from it by a bounded error, so the drone must
    *search* for the pad on arrival.  Shared by :meth:`Scenario.generate`
    (the paper's generator) and the declarative spec sampler in
    :mod:`repro.world.scenario_gen`; the draw order (bearing, distance,
    error, error bearing) is part of the determinism contract.
    """
    bearing = float(rng.uniform(0, 2 * math.pi))
    distance = float(rng.uniform(*target_distance_range))
    marker_position = Vec3(
        distance * math.cos(bearing), distance * math.sin(bearing), 0.0
    )
    gps_error = float(rng.uniform(*gps_error_range))
    gps_bearing = float(rng.uniform(0, 2 * math.pi))
    gps_target = Vec3(
        marker_position.x + gps_error * math.cos(gps_bearing),
        marker_position.y + gps_error * math.sin(gps_bearing),
        0.0,
    )
    return marker_position, gps_target


@dataclass
class Scenario:
    """A fully specified landing test case.

    Attributes:
        scenario_id: unique identifier within the evaluation suite.
        map_name: name of the underlying map.
        map_style: rural / suburban / urban.
        map_seed: seed used to generate the map geometry.
        weather: weather applied for this run.
        start_position: where the drone is initialised (map origin in the paper).
        gps_target: the briefed GPS estimate of the landing site.
        marker_position: the true position of the target marker (the GPS
            estimate is deliberately offset from it).
        decoy_count: number of false-positive markers placed near the target.
        cruise_altitude: altitude for the transit and search phases.
        seed: scenario-level seed for sensor noise and decoy placement.
    """

    scenario_id: str
    map_style: MapStyle
    map_seed: int
    weather: Weather
    gps_target: Vec3
    marker_position: Vec3
    start_position: Vec3 = field(default_factory=Vec3.zero)
    decoy_count: int = 2
    cruise_altitude: float = 15.0
    marker_size: float = 0.8
    seed: int = 0
    map_name: str = ""
    obstacle_density: float = 1.0
    lighting: float = 1.0
    target_occlusion: float | None = None

    def __post_init__(self) -> None:
        if not self.map_name:
            self.map_name = f"{self.map_style.value}-{self.map_seed}"
        if self.obstacle_density < 0:
            raise ValueError("obstacle_density must be non-negative")
        if not 0.0 < self.lighting <= 1.0:
            raise ValueError("lighting must be in (0, 1]")
        if self.target_occlusion is not None and not 0.0 <= self.target_occlusion < 1.0:
            raise ValueError("target_occlusion must be in [0, 1)")

    @property
    def is_adverse_weather(self) -> bool:
        return self.weather.is_adverse

    @property
    def effective_weather(self) -> Weather:
        """The weather the sensors actually see, after the lighting axis.

        Low light (dusk/night imaging) degrades the camera exactly the way
        fog does — contrast loss plus extra pixel noise — and suppresses sun
        glare, so it composes with any base weather through the same
        :class:`Weather` fields the sensor models already consume.
        """
        if self.lighting >= 1.0:
            return self.weather
        dim = 1.0 - self.lighting
        return replace(
            self.weather,
            visibility=max(0.2, self.weather.visibility * (1.0 - 0.55 * dim)),
            image_noise=self.weather.image_noise + 0.06 * dim,
            glare=self.weather.glare * self.lighting,
        )

    @property
    def active_stress_axes(self) -> tuple[str, ...]:
        """Names of the stress axes this scenario meaningfully exercises.

        The thresholds mirror where the simulation surface starts reacting:
        e.g. :class:`repro.vehicle.wind.WindModel.is_calm` treats < 0.5 m/s as
        calm, and the GPS drift model is negligible below ~0.1 degradation.
        """
        axes: list[str] = []
        w = self.weather
        if w.wind_speed >= 1.0 or w.gust_intensity >= 0.15:
            axes.append("wind")
        if w.is_adverse:
            axes.append("adverse-weather")
        if w.gps_degradation >= 0.1:
            axes.append("gps-drift")
        if w.image_noise >= 0.05 or w.precipitation >= 0.25:
            axes.append("sensor-faults")
        if self.obstacle_density >= 1.3:
            axes.append("obstacle-density")
        if self.lighting <= 0.7:
            axes.append("low-light")
        occlusion = self.target_occlusion if self.target_occlusion is not None else 0.0
        if occlusion >= 0.1 or self.decoy_count >= 4:
            axes.append("marker-stress")
        return tuple(axes)

    def build_world(self) -> World:
        """Instantiate the world for this scenario (map + markers + weather)."""
        rng = np.random.default_rng(self.seed)
        spec = None
        if self.obstacle_density != 1.0:
            base = MapSpec.for_style(self.map_style)
            spec = replace(
                base,
                building_count=round(base.building_count * self.obstacle_density),
                tree_count=round(base.tree_count * self.obstacle_density),
                pole_count=round(base.pole_count * self.obstacle_density),
                wall_count=round(base.wall_count * self.obstacle_density),
                water_count=round(base.water_count * self.obstacle_density),
            )
        world = generate_map(
            self.map_style,
            self.map_seed,
            name=self.map_name,
            spec=spec,
            keep_clear=[self.start_position, self.marker_position],
        )
        prune_obstacles_near(world, self.marker_position, radius=4.0)
        world.weather = self.effective_weather

        if self.target_occlusion is not None:
            occlusion_target = self.target_occlusion
        elif self.weather.is_adverse:
            # Adverse weather scenarios also tend to have partially obscured
            # pads (shadows, debris) — the conditions §III.A calls out.
            occlusion_target = float(rng.uniform(0.0, 0.3))
        else:
            occlusion_target = 0.0

        markers = [
            Marker(
                marker_id=TARGET_MARKER_ID,
                position=self.marker_position,
                size=self.marker_size,
                yaw=float(rng.uniform(0, 2 * math.pi)),
                is_target=True,
                occlusion=occlusion_target,
            )
        ]
        for i in range(self.decoy_count):
            angle = float(rng.uniform(0, 2 * math.pi))
            distance = float(rng.uniform(6.0, 18.0))
            candidate = Vec3(
                self.marker_position.x + distance * math.cos(angle),
                self.marker_position.y + distance * math.sin(angle),
                0.0,
            )
            if not world.bounds.contains(candidate.with_z(0.1)):
                continue
            markers.append(
                Marker(
                    marker_id=DECOY_MARKER_IDS[i % len(DECOY_MARKER_IDS)],
                    position=candidate,
                    size=self.marker_size,
                    yaw=float(rng.uniform(0, 2 * math.pi)),
                    is_target=False,
                    occlusion=float(rng.uniform(0.0, 0.2)),
                )
            )
        world.markers = markers
        # Repeated builds of the same scenario (campaign repetitions, systems
        # sharing a suite) produce identical worlds; keying the geometry
        # snapshot on the content fingerprint lets them share one.
        world.geometry_key = self.fingerprint()
        return world

    @staticmethod
    def generate(
        scenario_id: str,
        map_style: MapStyle,
        map_seed: int,
        adverse_weather: bool,
        seed: int,
        gps_error_range: tuple[float, float] = (1.0, 5.0),
        target_distance_range: tuple[float, float] = (25.0, 45.0),
    ) -> "Scenario":
        """Randomly draw one scenario as the paper's generator does.

        The marker is placed at a random bearing and distance from the start,
        and the briefed GPS target is offset from the true marker position by
        a bounded error, so the drone must *search* for the pad on arrival.
        """
        rng = np.random.default_rng(seed)
        marker_position, gps_target = sample_marker_placement(
            rng, target_distance_range, gps_error_range
        )
        weather = (
            Weather.sample_adverse(rng) if adverse_weather else Weather.sample_normal(rng)
        )
        return Scenario(
            scenario_id=scenario_id,
            map_style=map_style,
            map_seed=map_seed,
            weather=weather,
            gps_target=gps_target,
            marker_position=marker_position,
            decoy_count=int(rng.integers(1, 4)),
            seed=seed,
        )

    def fingerprint(self) -> str:
        """16-hex-char content hash of this scenario's :meth:`to_dict` form.

        Stored with every persisted run record (see
        ``RunRecord.scenario_fingerprint``) and used by the analytics layer to
        join records back to scenario factors without trusting scenario ids
        across differently-seeded suites.
        """
        encoded = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # serialization (JSON-compatible round trip, used by suite persistence)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible dict representation (see :meth:`from_dict`)."""
        return {
            "scenario_id": self.scenario_id,
            "map_style": self.map_style.value,
            "map_seed": self.map_seed,
            "map_name": self.map_name,
            "weather": self.weather.to_dict(),
            "gps_target": list(self.gps_target.to_tuple()),
            "marker_position": list(self.marker_position.to_tuple()),
            "start_position": list(self.start_position.to_tuple()),
            "decoy_count": self.decoy_count,
            "cruise_altitude": self.cruise_altitude,
            "marker_size": self.marker_size,
            "seed": self.seed,
            "obstacle_density": self.obstacle_density,
            "lighting": self.lighting,
            "target_occlusion": self.target_occlusion,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        data = dict(data)
        data["map_style"] = MapStyle(data["map_style"])
        data["weather"] = Weather.from_dict(data["weather"])
        for key in ("gps_target", "marker_position", "start_position"):
            if key in data:
                data[key] = Vec3.from_array(data[key])
        return cls(**data)
