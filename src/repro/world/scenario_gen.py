"""Procedural scenario generation: declarative specs over stress axes.

The paper evaluates on a fixed 10-map x 10-scenario suite, half adverse
weather (§IV.B.1).  This module generalises that generator into a declarative
layer: a :class:`ScenarioSpec` describes *distributions* over map style,
marker placement / occlusion and the simulation's stress axes, and a
:class:`SuiteSpec` samples an arbitrarily large :class:`ScenarioSuite` from
it — deterministically, so the same seed always yields a byte-identical
suite (see :meth:`ScenarioSuite.to_jsonl`).

Stress axes (all drawn from the existing simulation surface):

========================  ====================================================
axis                      simulation hook
========================  ====================================================
``wind``                  ``Weather.wind_speed`` / ``gust_intensity`` →
                          :class:`repro.vehicle.wind.WindModel`
``adverse-weather``       fog / rain / glare / storm presets
                          (:mod:`repro.world.weather`)
``gps-drift``             ``Weather.gps_degradation`` →
                          :class:`repro.sensors.gps.GpsSensor`,
                          :mod:`repro.realworld.gps_drift`
``sensor-faults``         ``Weather.image_noise`` / ``precipitation`` →
                          camera noise and depth-cloud speckle
                          (:mod:`repro.realworld.sensor_faults`)
``obstacle-density``      ``Scenario.obstacle_density`` scaling the
                          :class:`repro.world.map_generator.MapSpec` counts
``low-light``             ``Scenario.lighting`` → degraded imaging via
                          ``Scenario.effective_weather``
``marker-stress``         target occlusion and decoy pressure
                          (:mod:`repro.world.markers`)
========================  ====================================================

Determinism contract: scenario ``index`` of a suite draws from its own
``default_rng([suite_seed, index])`` stream, so generation is independent of
``count`` — the first N scenarios of a 500-scenario suite equal the
N-scenario suite with the same seed, and re-generating with the same seed is
byte-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Iterable

import numpy as np

from repro.faults.spec import FaultSpec
from repro.world.map_generator import MapStyle
from repro.world.scenario import Scenario, sample_marker_placement
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite
from repro.world.weather import Weather

#: The stress axes a generated scenario can exercise, with the module that
#: implements each effect.  ``Scenario.active_stress_axes`` reports against
#: these names; the CLI's ``describe`` prints per-axis coverage.
STRESS_AXES: dict[str, str] = {
    "wind": "mean wind + Dryden-like gusts (repro.vehicle.wind)",
    "adverse-weather": "fog / rain / glare / storm presets (repro.world.weather)",
    "gps-drift": "weather-driven GPS random-walk drift (repro.realworld.gps_drift)",
    "sensor-faults": "camera noise + depth-cloud speckle (repro.realworld.sensor_faults)",
    "obstacle-density": "scaled procedural obstacle counts (repro.world.map_generator)",
    "low-light": "dusk/night imaging degradation (Scenario.effective_weather)",
    "marker-stress": "target occlusion + decoy pressure (repro.world.markers)",
}


@dataclass(frozen=True)
class Uniform:
    """A closed uniform range ``[low, high]`` sampled per scenario."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty range: [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    @staticmethod
    def fixed(value: float) -> "Uniform":
        return Uniform(value, value)

    @classmethod
    def from_value(cls, value: Any) -> "Uniform":
        """Coerce a JSON-ish value: ``{"low","high"}``, ``[low, high]`` or a number."""
        if isinstance(value, Uniform):
            return value
        if isinstance(value, dict):
            return cls(float(value["low"]), float(value["high"]))
        if isinstance(value, (list, tuple)) and len(value) == 2:
            return cls(float(value[0]), float(value[1]))
        if isinstance(value, (int, float)):
            return cls.fixed(float(value))
        raise ValueError(f"cannot interpret {value!r} as a Uniform range")


def _clamp(value: float, low: float, high: float) -> float:
    return min(high, max(low, value))


@dataclass(frozen=True)
class ScenarioSpec:
    """Distributions from which one scenario is drawn.

    ``None`` for an optional axis means "leave whatever the sampled weather
    preset produced"; a :class:`Uniform` engages the axis and acts as a floor
    on the corresponding weather field (so e.g. a storm's own wind is never
    *reduced* by a mild wind axis).
    """

    map_styles: tuple[MapStyle, ...] = (MapStyle.RURAL, MapStyle.SUBURBAN, MapStyle.URBAN)
    adverse_probability: float = 0.5
    weather_severity: Uniform = field(default_factory=lambda: Uniform(0.3, 1.0))
    wind_speed: Uniform | None = None
    gust_intensity: Uniform | None = None
    gps_degradation: Uniform | None = None
    image_noise: Uniform | None = None
    precipitation: Uniform | None = None
    obstacle_density: Uniform = field(default_factory=lambda: Uniform.fixed(1.0))
    lighting: Uniform = field(default_factory=lambda: Uniform.fixed(1.0))
    target_occlusion: Uniform | None = None
    decoy_count: tuple[int, int] = (1, 3)
    gps_error: Uniform = field(default_factory=lambda: Uniform(1.0, 5.0))
    target_distance: Uniform = field(default_factory=lambda: Uniform(25.0, 45.0))
    marker_size: Uniform = field(default_factory=lambda: Uniform.fixed(0.8))
    cruise_altitude: float = 15.0

    def __post_init__(self) -> None:
        if not self.map_styles:
            raise ValueError("map_styles must not be empty")
        if not 0.0 <= self.adverse_probability <= 1.0:
            raise ValueError("adverse_probability must be in [0, 1]")
        if self.decoy_count[1] < self.decoy_count[0] or self.decoy_count[0] < 0:
            raise ValueError(f"invalid decoy_count range {self.decoy_count}")

    # ------------------------------------------------------------------ #
    def sample_weather(self, rng: np.random.Generator) -> Weather:
        """Draw a base weather preset, then apply the axis floors."""
        if rng.random() < self.adverse_probability:
            weather = Weather.sample_adverse(
                rng,
                severity_range=(
                    _clamp(self.weather_severity.low, 0.0, 1.0),
                    _clamp(self.weather_severity.high, 0.0, 1.0),
                ),
            )
        else:
            weather = Weather.sample_normal(rng)

        overrides: dict[str, float] = {}
        if self.wind_speed is not None:
            overrides["wind_speed"] = max(weather.wind_speed, self.wind_speed.sample(rng))
        if self.gust_intensity is not None:
            overrides["gust_intensity"] = _clamp(
                max(weather.gust_intensity, self.gust_intensity.sample(rng)), 0.0, 1.0
            )
        if self.gps_degradation is not None:
            overrides["gps_degradation"] = _clamp(
                max(weather.gps_degradation, self.gps_degradation.sample(rng)), 0.0, 1.0
            )
        if self.image_noise is not None:
            overrides["image_noise"] = max(weather.image_noise, self.image_noise.sample(rng))
        if self.precipitation is not None:
            overrides["precipitation"] = _clamp(
                max(weather.precipitation, self.precipitation.sample(rng)), 0.0, 1.0
            )
        return replace(weather, **overrides) if overrides else weather

    def sample(
        self,
        rng: np.random.Generator,
        scenario_id: str,
        map_style: MapStyle,
        map_seed: int,
        seed: int,
    ) -> Scenario:
        """Draw one fully specified scenario from this spec."""
        marker_position, gps_target = sample_marker_placement(
            rng,
            target_distance_range=(self.target_distance.low, self.target_distance.high),
            gps_error_range=(self.gps_error.low, self.gps_error.high),
        )
        weather = self.sample_weather(rng)
        occlusion = (
            _clamp(self.target_occlusion.sample(rng), 0.0, 0.95)
            if self.target_occlusion is not None
            else None
        )
        return Scenario(
            scenario_id=scenario_id,
            map_style=map_style,
            map_seed=map_seed,
            weather=weather,
            gps_target=gps_target,
            marker_position=marker_position,
            decoy_count=int(rng.integers(self.decoy_count[0], self.decoy_count[1] + 1)),
            cruise_altitude=self.cruise_altitude,
            marker_size=self.marker_size.sample(rng),
            seed=seed,
            obstacle_density=max(0.0, self.obstacle_density.sample(rng)),
            lighting=_clamp(self.lighting.sample(rng), 0.05, 1.0),
            target_occlusion=occlusion,
        )

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible description (for the CLI and suite headers)."""
        data = asdict(self)
        data["map_styles"] = [style.value for style in self.map_styles]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact round trip).

        Missing keys fall back to defaults, so hand-written partial dicts
        (e.g. a ``--spec`` JSON file for ``python -m repro.dispatch``) are
        accepted too.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        range_fields = {
            "weather_severity", "wind_speed", "gust_intensity", "gps_degradation",
            "image_noise", "precipitation", "obstacle_density", "lighting",
            "target_occlusion", "gps_error", "target_distance", "marker_size",
        }
        kwargs: dict[str, Any] = {}
        for key, value in data.items():
            if key == "map_styles":
                kwargs[key] = tuple(MapStyle(style) for style in value)
            elif key == "decoy_count":
                kwargs[key] = (int(value[0]), int(value[1]))
            elif key in range_fields and value is not None:
                kwargs[key] = Uniform.from_value(value)
            else:
                kwargs[key] = value
        return cls(**kwargs)


@dataclass(frozen=True)
class SuiteSpec:
    """A reproducible population of scenarios drawn from a :class:`ScenarioSpec`.

    Attributes:
        name: suite label; prefixes every scenario id.
        count: number of scenarios to generate.
        seed: master seed; scenario ``index`` draws from the independent
            ``default_rng([seed, index])`` stream.
        repetitions: repetitions per scenario when run as a campaign.
        map_pool: number of distinct maps the scenarios cycle through.
        scenario: the per-scenario distributions.
        faults: the suite's fault axis — :class:`~repro.faults.FaultSpec`
            objects injected into every run when the suite spec is handed to
            ``Campaign.suite(...)`` (an explicit ``Campaign.faults(...)``
            call overrides them).  Scenario generation itself is unaffected,
            so a spec with and without faults samples identical scenarios.
    """

    name: str = "custom"
    count: int = 50
    seed: int = 0
    repetitions: int = 1
    map_pool: int = 10
    scenario: ScenarioSpec = field(default_factory=ScenarioSpec)
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.repetitions <= 0:
            raise ValueError("repetitions must be positive")
        if self.map_pool <= 0:
            raise ValueError("map_pool must be positive")

    def generate(self) -> ScenarioSuite:
        """Sample the suite (same spec → byte-identical result)."""
        scenarios: list[Scenario] = []
        styles = self.scenario.map_styles
        for index in range(self.count):
            rng = np.random.default_rng([self.seed, index])
            map_index = index % self.map_pool
            scenario_seed = int(
                np.random.SeedSequence((self.seed, index)).generate_state(1)[0]
            )
            scenarios.append(
                self.scenario.sample(
                    rng,
                    scenario_id=f"{self.name}-{self.seed}-{index:04d}",
                    map_style=styles[map_index % len(styles)],
                    map_seed=self.seed * 1000 + map_index,
                    seed=scenario_seed,
                )
            )
        return ScenarioSuite(
            scenarios=scenarios, repetitions=self.repetitions, name=self.name
        )

    def with_overrides(
        self,
        count: int | None = None,
        seed: int | None = None,
        repetitions: int | None = None,
    ) -> "SuiteSpec":
        """Copy with the CLI-exposed knobs overridden."""
        updates: dict[str, Any] = {}
        if count is not None:
            updates["count"] = count
        if seed is not None:
            updates["seed"] = seed
        if repetitions is not None:
            updates["repetitions"] = repetitions
        return replace(self, **updates) if updates else self

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["scenario"] = self.scenario.to_dict()
        # The fault axis is only written when declared, so fault-free spec
        # files are byte-identical to those of earlier versions.
        if self.faults:
            data["faults"] = [spec.to_dict() for spec in self.faults]
        else:
            data.pop("faults", None)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SuiteSpec":
        """Rebuild a suite spec from :meth:`to_dict` output.

        The inverse that makes specs a file format: a spec exported (or
        hand-written) as JSON can drive ``generate_suite`` and the dispatch
        planner's ``--spec`` option on any machine.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SuiteSpec keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs: dict[str, Any] = dict(data)
        scenario = kwargs.pop("scenario", None)
        if scenario is not None and not isinstance(scenario, ScenarioSpec):
            scenario = ScenarioSpec.from_dict(scenario)
        if scenario is not None:
            kwargs["scenario"] = scenario
        faults = kwargs.pop("faults", None)
        if faults is not None:
            kwargs["faults"] = tuple(
                spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
                for spec in faults
            )
        return cls(**kwargs)


# ---------------------------------------------------------------------- #
# presets
# ---------------------------------------------------------------------- #
def _stress_spec() -> ScenarioSpec:
    """Every axis engaged over a broad range (the default generator)."""
    return ScenarioSpec(
        adverse_probability=0.5,
        wind_speed=Uniform(0.0, 9.0),
        gust_intensity=Uniform(0.0, 0.8),
        gps_degradation=Uniform(0.0, 0.8),
        image_noise=Uniform(0.01, 0.09),
        precipitation=Uniform(0.0, 0.8),
        obstacle_density=Uniform(0.6, 2.0),
        lighting=Uniform(0.35, 1.0),
        target_occlusion=Uniform(0.0, 0.45),
        decoy_count=(1, 6),
    )


#: Named suite presets accepted by :func:`suite_preset` and the CLI.  The
#: paper's fixed 10x10 suite is the special-cased ``"paper"`` entry.
SUITE_PRESETS: dict[str, SuiteSpec] = {
    "stress": SuiteSpec(name="stress", count=100, scenario=_stress_spec()),
    "nominal": SuiteSpec(
        name="nominal",
        count=50,
        scenario=ScenarioSpec(adverse_probability=0.0, decoy_count=(0, 2)),
    ),
    "windy": SuiteSpec(
        name="windy",
        count=50,
        scenario=ScenarioSpec(
            adverse_probability=0.3,
            wind_speed=Uniform(4.0, 11.0),
            gust_intensity=Uniform(0.3, 0.9),
        ),
    ),
    "gps-denied": SuiteSpec(
        name="gps-denied",
        count=50,
        scenario=ScenarioSpec(
            adverse_probability=0.4, gps_degradation=Uniform(0.5, 1.0)
        ),
    ),
    "night": SuiteSpec(
        name="night",
        count=50,
        scenario=ScenarioSpec(
            adverse_probability=0.3,
            lighting=Uniform(0.2, 0.55),
            image_noise=Uniform(0.02, 0.06),
        ),
    ),
    "cluttered": SuiteSpec(
        name="cluttered",
        count=50,
        map_pool=6,
        scenario=ScenarioSpec(
            map_styles=(MapStyle.SUBURBAN, MapStyle.URBAN),
            obstacle_density=Uniform(1.5, 2.5),
            decoy_count=(2, 6),
        ),
    ),
    "marker-hostile": SuiteSpec(
        name="marker-hostile",
        count=50,
        scenario=ScenarioSpec(
            target_occlusion=Uniform(0.2, 0.6),
            decoy_count=(4, 7),
            gps_error=Uniform(3.0, 8.0),
        ),
    ),
    "smoke": SuiteSpec(
        name="smoke",
        count=2,
        map_pool=2,
        scenario=ScenarioSpec(adverse_probability=0.5, decoy_count=(1, 2)),
    ),
}

#: Presets resolvable by :func:`suite_preset` (includes the paper suite).
PRESET_NAMES: tuple[str, ...] = ("paper",) + tuple(SUITE_PRESETS)


def suite_preset(
    name: str,
    count: int | None = None,
    seed: int | None = None,
    repetitions: int | None = None,
) -> ScenarioSuite:
    """Build a named suite preset, optionally overriding its size/seed.

    ``"paper"`` reproduces the 10-map x 10-scenario evaluation suite through
    :func:`build_evaluation_suite`; every other name is a :class:`SuiteSpec`
    from :data:`SUITE_PRESETS`.
    """
    key = name.strip().lower()
    if key == "paper":
        suite = build_evaluation_suite(base_seed=2025 if seed is None else seed)
        if count is not None:
            if count > len(suite):
                raise ValueError(
                    f"the paper suite is fixed at {len(suite)} scenarios; "
                    f"count={count} is not available (use a generated preset "
                    f"such as 'stress' for larger populations)"
                )
            suite = suite.subset(count)
        if repetitions is not None:
            suite.repetitions = repetitions
        suite.name = "paper"
        return suite
    if key not in SUITE_PRESETS:
        raise ValueError(
            f"unknown suite preset {name!r}; expected one of {sorted(PRESET_NAMES)}"
        )
    return SUITE_PRESETS[key].with_overrides(count, seed, repetitions).generate()


def generate_suite(
    spec: SuiteSpec | str = "stress",
    count: int | None = None,
    seed: int | None = None,
    repetitions: int | None = None,
) -> ScenarioSuite:
    """Generate a suite from a :class:`SuiteSpec` or a preset name."""
    if isinstance(spec, str):
        return suite_preset(spec, count, seed, repetitions)
    return spec.with_overrides(count, seed, repetitions).generate()


# ---------------------------------------------------------------------- #
# introspection
# ---------------------------------------------------------------------- #
def axis_coverage(scenarios: Iterable[Scenario]) -> dict[str, int]:
    """How many scenarios exercise each stress axis (all axes always listed)."""
    coverage = {axis: 0 for axis in STRESS_AXES}
    for scenario in scenarios:
        for axis in scenario.active_stress_axes:
            coverage[axis] += 1
    return coverage
