"""Campaign analytics: streaming statistics over run-record streams.

The layer that turns persisted campaign results (or live
``Campaign.run()`` output) into statistically defensible answers:

* :mod:`repro.analysis.stats` — Wilson intervals, seeded bootstrap CIs, the
  two-proportion z-test, and the streaming per-system accumulator;
* :mod:`repro.analysis.io` — incremental record streams over JSONL files,
  directories or in-memory results;
* :mod:`repro.analysis.slicing` — factor-based grouping (stress axis, wind
  band, lighting, obstacle density, map, platform) via the scenario join;
* :mod:`repro.analysis.compare` — campaign diffing, paper comparison and
  regression detection;
* :mod:`repro.analysis.report` — deterministic, byte-stable markdown;
* :mod:`repro.analysis.engine` — :class:`CampaignAnalysis`, the session
  object behind both ``Campaign(...).analyze()`` and the
  ``python -m repro.analysis`` CLI (``summarize`` / ``slice`` / ``compare``
  / ``gate``).
"""

from repro.analysis.compare import (
    CampaignComparison,
    MetricDelta,
    PaperDelta,
    RateDelta,
    compare_campaigns,
    compare_summaries,
    compare_to_paper,
)
from repro.analysis.engine import CampaignAnalysis
from repro.analysis.io import (
    RecordContext,
    iter_contexts,
    iter_records,
    resolve_result_files,
)
from repro.analysis.memo import CachedReport, cached_report, report_cache_key
from repro.analysis.report import (
    render_comparison_report,
    render_slice_report,
    render_summary_report,
)
from repro.analysis.slicing import (
    FACTOR_NAMES,
    FACTORS,
    ScenarioIndex,
    slice_records,
)
from repro.analysis.stats import (
    MetricEstimate,
    RateEstimate,
    SystemSummary,
    bootstrap_mean_ci,
    summarize_records,
    two_proportion_test,
    wilson_interval,
)

__all__ = [
    "CachedReport",
    "CampaignAnalysis",
    "CampaignComparison",
    "FACTORS",
    "FACTOR_NAMES",
    "MetricDelta",
    "MetricEstimate",
    "PaperDelta",
    "RateDelta",
    "RateEstimate",
    "RecordContext",
    "ScenarioIndex",
    "SystemSummary",
    "bootstrap_mean_ci",
    "cached_report",
    "compare_campaigns",
    "compare_summaries",
    "compare_to_paper",
    "iter_contexts",
    "iter_records",
    "render_comparison_report",
    "render_slice_report",
    "render_summary_report",
    "report_cache_key",
    "resolve_result_files",
    "slice_records",
    "summarize_records",
    "two_proportion_test",
    "wilson_interval",
]
