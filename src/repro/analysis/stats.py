"""Streaming statistics for campaign analytics.

The paper's claims are *rate* comparisons (Table I SIL, Table III HIL) and
*accuracy* comparisons (§V.C), so this module provides exactly the estimators
those claims need, computed incrementally over a :class:`RunRecord` stream:

* Wilson score intervals for outcome rates (well-behaved at the small run
  counts of a smoke campaign and at rates near 0 or 1, unlike the normal
  approximation);
* seeded deterministic bootstrap confidence intervals for continuous metrics
  (landing error, detection deviation, mission duration) — the same records
  and seed always produce byte-identical intervals;
* a pooled two-proportion z-test used by campaign diffing to decide whether a
  rate moved *significantly* between two campaigns.

:class:`SystemSummary` is the streaming accumulator: it consumes records one
at a time and keeps only counters plus flat ``float`` sample buffers, never
the record objects themselves.  Memory is therefore bounded by one float per
retained sample — per-run landing errors and mission times, plus the
frame-level detection deviations (the dominant term on long missions) —
which the bootstrap estimators genuinely need, not by the full record
payloads.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from statistics import NormalDist
from typing import Iterable

import numpy as np

from repro.core.metrics import RunOutcome, RunRecord

#: Default confidence level for every interval in this package.
DEFAULT_CONFIDENCE = 0.95
#: Default bootstrap resample count (deterministic given the seed).
DEFAULT_RESAMPLES = 2000

#: Names of the rate estimates a :class:`SystemSummary` produces, in report
#: order.  ``higher_is_better`` drives the regression direction in
#: :mod:`repro.analysis.compare`.
RATE_METRICS: dict[str, bool] = {
    "success": True,
    "collision": False,
    "poor-landing": False,
    "detection-fn": False,
}

#: Continuous metrics and their regression direction (``None`` = informational
#: only, never gated — e.g. mission duration is neither good nor bad per se).
CONTINUOUS_METRICS: dict[str, bool | None] = {
    "landing-error-m": False,
    "detection-deviation-m": False,
    "mission-time-s": None,
}


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: int, total: int, confidence: float = DEFAULT_CONFIDENCE
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns the trivial ``(0, 1)`` interval when ``total`` is zero, so empty
    slices render as "no evidence" rather than raising.
    """
    if not 0 <= successes <= total:
        raise ValueError(f"need 0 <= successes <= total, got {successes}/{total}")
    if total == 0:
        return (0.0, 1.0)
    z = _z_value(confidence)
    p = successes / total
    z2 = z * z
    denominator = 1.0 + z2 / total
    centre = (p + z2 / (2.0 * total)) / denominator
    half_width = (z / denominator) * math.sqrt(
        p * (1.0 - p) / total + z2 / (4.0 * total * total)
    )
    return (max(0.0, centre - half_width), min(1.0, centre + half_width))


def metric_seed(base_seed: int, *labels: str) -> int:
    """A stable per-metric bootstrap seed derived from ``base_seed`` + labels.

    Hash-derived (not ``hash()``, which is salted per process) so that the
    same campaign summarised twice — or on two machines — draws the same
    resamples for every metric regardless of how many metrics exist.
    """
    payload = "\x1f".join((str(base_seed), *labels)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def bootstrap_mean_ci(
    samples: Iterable[float],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``samples`` (deterministic).

    Resampling is batched so the index matrix never exceeds a few dozen
    megabytes however large the sample buffer is; the batch size depends only
    on the sample count, so the draw sequence (and therefore the interval) is
    reproducible for a given ``(samples, seed)``.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        return (float("nan"), float("nan"))
    if values.size == 1:
        return (float(values[0]), float(values[0]))
    rng = np.random.default_rng(seed)
    n = int(values.size)
    means = np.empty(resamples, dtype=float)
    batch = max(1, min(resamples, 2_000_000 // n))
    done = 0
    while done < resamples:
        take = min(batch, resamples - done)
        indices = rng.integers(0, n, size=(take, n))
        means[done : done + take] = values[indices].mean(axis=1)
        done += take
    alpha = 1.0 - confidence
    low, high = np.quantile(means, [alpha / 2.0, 1.0 - alpha / 2.0])
    return (float(low), float(high))


def bootstrap_diff_ci(
    baseline: Iterable[float],
    current: Iterable[float],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI for ``mean(current) - mean(baseline)`` (deterministic).

    Both campaigns are resampled independently from the same seeded stream;
    a CI excluding zero means the difference is significant at the chosen
    confidence.  NaN bounds when either side is empty.
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(current), dtype=float)
    if a.size == 0 or b.size == 0:
        return (float("nan"), float("nan"))
    rng = np.random.default_rng(seed)
    diffs = np.empty(resamples, dtype=float)
    per_row = a.size + b.size
    batch = max(1, min(resamples, 2_000_000 // per_row))
    done = 0
    while done < resamples:
        take = min(batch, resamples - done)
        idx_a = rng.integers(0, a.size, size=(take, a.size))
        idx_b = rng.integers(0, b.size, size=(take, b.size))
        diffs[done : done + take] = b[idx_b].mean(axis=1) - a[idx_a].mean(axis=1)
        done += take
    alpha = 1.0 - confidence
    low, high = np.quantile(diffs, [alpha / 2.0, 1.0 - alpha / 2.0])
    return (float(low), float(high))


@dataclass(frozen=True)
class ProportionTest:
    """Result of a pooled two-proportion z-test."""

    z: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def two_proportion_test(
    baseline_successes: int,
    baseline_total: int,
    current_successes: int,
    current_total: int,
) -> ProportionTest:
    """Pooled two-proportion z-test for ``current`` vs ``baseline``.

    Degenerate inputs (an empty campaign, or both rates pinned at the same
    0/1 extreme) return the null result ``z=0, p=1`` instead of dividing by
    zero — no evidence is never evidence of a change.
    """
    if baseline_total == 0 or current_total == 0:
        return ProportionTest(z=0.0, p_value=1.0)
    p_baseline = baseline_successes / baseline_total
    p_current = current_successes / current_total
    pooled = (baseline_successes + current_successes) / (baseline_total + current_total)
    variance = pooled * (1.0 - pooled) * (1.0 / baseline_total + 1.0 / current_total)
    if variance <= 0.0:
        return ProportionTest(z=0.0, p_value=1.0)
    z = (p_current - p_baseline) / math.sqrt(variance)
    p_value = 2.0 * (1.0 - NormalDist().cdf(abs(z)))
    return ProportionTest(z=z, p_value=p_value)


# ---------------------------------------------------------------------- #
# estimates
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RateEstimate:
    """A binomial rate with its Wilson interval."""

    successes: int
    total: int
    rate: float
    low: float
    high: float
    confidence: float

    @classmethod
    def from_counts(
        cls, successes: int, total: int, confidence: float = DEFAULT_CONFIDENCE
    ) -> "RateEstimate":
        low, high = wilson_interval(successes, total, confidence)
        rate = successes / total if total else float("nan")
        return cls(
            successes=successes,
            total=total,
            rate=rate,
            low=low,
            high=high,
            confidence=confidence,
        )

    def contains(self, rate: float) -> bool:
        """Whether ``rate`` (a fraction, not a percent) lies in the interval."""
        return self.low <= rate <= self.high


@dataclass(frozen=True)
class MetricEstimate:
    """A sample mean with its bootstrap interval."""

    count: int
    mean: float
    low: float
    high: float
    confidence: float


@dataclass
class MetricSamples:
    """A streaming buffer of finite scalar samples for one metric."""

    name: str
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        if math.isfinite(value):
            self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else float("nan")

    def estimate(
        self,
        *,
        seed: int = 0,
        confidence: float = DEFAULT_CONFIDENCE,
        resamples: int = DEFAULT_RESAMPLES,
    ) -> MetricEstimate:
        low, high = bootstrap_mean_ci(
            self.values, confidence=confidence, resamples=resamples, seed=seed
        )
        return MetricEstimate(
            count=len(self.values),
            mean=self.mean,
            low=low,
            high=high,
            confidence=confidence,
        )


# ---------------------------------------------------------------------- #
# the streaming per-system accumulator
# ---------------------------------------------------------------------- #
@dataclass
class SystemSummary:
    """Streaming aggregate of one system's run records.

    Only counters and scalar sample buffers are retained — records are
    dropped as they stream past, but the scalar samples the bootstrap needs
    (landing error and mission time per run, detection deviation per frame)
    are kept, so memory grows with the retained sample count, not with the
    full record payloads.
    """

    system_name: str
    runs: int = 0
    adverse_runs: int = 0
    outcome_counts: dict[RunOutcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in RunOutcome}
    )
    frames_with_visible_marker: int = 0
    frames_detected: int = 0
    false_positive_frames: int = 0
    landing_errors: MetricSamples = field(
        default_factory=lambda: MetricSamples("landing-error-m")
    )
    detection_deviations: MetricSamples = field(
        default_factory=lambda: MetricSamples("detection-deviation-m")
    )
    mission_times: MetricSamples = field(
        default_factory=lambda: MetricSamples("mission-time-s")
    )

    def add(self, record: RunRecord) -> None:
        if record.system_name != self.system_name:
            raise ValueError(
                f"record for {record.system_name} fed to summary of {self.system_name}"
            )
        self.runs += 1
        self.outcome_counts[record.outcome] += 1
        if record.adverse_weather:
            self.adverse_runs += 1
        detection = record.detection
        self.frames_with_visible_marker += detection.frames_with_visible_marker
        self.frames_detected += detection.frames_detected
        self.false_positive_frames += detection.false_positive_frames
        self.detection_deviations.extend(detection.deviation_samples)
        if record.landed:
            self.landing_errors.add(record.landing_error)
        self.mission_times.add(record.mission_time)

    def merge(self, other: "SystemSummary") -> None:
        if other.system_name != self.system_name:
            raise ValueError(
                f"summary for {other.system_name} merged into {self.system_name}"
            )
        self.runs += other.runs
        self.adverse_runs += other.adverse_runs
        for outcome, count in other.outcome_counts.items():
            self.outcome_counts[outcome] += count
        self.frames_with_visible_marker += other.frames_with_visible_marker
        self.frames_detected += other.frames_detected
        self.false_positive_frames += other.false_positive_frames
        self.landing_errors.values.extend(other.landing_errors.values)
        self.detection_deviations.values.extend(other.detection_deviations.values)
        self.mission_times.values.extend(other.mission_times.values)

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #
    def rate_counts(self, metric: str) -> tuple[int, int]:
        """(successes, total) for one of :data:`RATE_METRICS`."""
        if metric == "success":
            return self.outcome_counts[RunOutcome.SUCCESS], self.runs
        if metric == "collision":
            return self.outcome_counts[RunOutcome.COLLISION], self.runs
        if metric == "poor-landing":
            return self.outcome_counts[RunOutcome.POOR_LANDING], self.runs
        if metric == "detection-fn":
            misses = self.frames_with_visible_marker - self.frames_detected
            return misses, self.frames_with_visible_marker
        raise KeyError(f"unknown rate metric {metric!r}; expected one of {list(RATE_METRICS)}")

    def rates(self, confidence: float = DEFAULT_CONFIDENCE) -> dict[str, RateEstimate]:
        """Every rate in :data:`RATE_METRICS` with its Wilson interval."""
        return {
            metric: RateEstimate.from_counts(*self.rate_counts(metric), confidence)
            for metric in RATE_METRICS
        }

    def metric_samples(self, metric: str) -> MetricSamples:
        samples = {
            "landing-error-m": self.landing_errors,
            "detection-deviation-m": self.detection_deviations,
            "mission-time-s": self.mission_times,
        }
        if metric not in samples:
            raise KeyError(
                f"unknown continuous metric {metric!r}; expected one of {list(CONTINUOUS_METRICS)}"
            )
        return samples[metric]

    def metrics(
        self,
        *,
        seed: int = 0,
        confidence: float = DEFAULT_CONFIDENCE,
        resamples: int = DEFAULT_RESAMPLES,
    ) -> dict[str, MetricEstimate]:
        """Every continuous metric with its seeded bootstrap interval."""
        return {
            metric: self.metric_samples(metric).estimate(
                seed=metric_seed(seed, self.system_name, metric),
                confidence=confidence,
                resamples=resamples,
            )
            for metric in CONTINUOUS_METRICS
        }


def summarize_records(records: Iterable[RunRecord]) -> dict[str, SystemSummary]:
    """Fold a record stream into per-system summaries (single pass)."""
    summaries: dict[str, SystemSummary] = {}
    for record in records:
        summary = summaries.get(record.system_name)
        if summary is None:
            summary = summaries[record.system_name] = SystemSummary(record.system_name)
        summary.add(record)
    return summaries
