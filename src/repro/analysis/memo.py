"""Disk-memoized analysis reports, keyed by campaign content.

Rendering a summary/slice/coverage report over an unchanged campaign is
pure recomputation: the reports are deterministic functions of the record
files and the analysis parameters.  This module caches the rendered
markdown on disk under a key derived from

* each result file's identity — its campaign **context fingerprint** and
  platform (from the persisted header), plus its **record count** and byte
  size — and
* the analysis parameters (report kind, slice factor, seed, confidence,
  bootstrap resamples),

so a repeated request is a file read, while *any* change — a new shard's
records appended, a different fault plan, other bootstrap parameters —
changes the key and recomputes.  This is the memo behind the campaign
service's ``/report`` / ``/slice`` / ``/coverage`` endpoints (reports are
recomputed incrementally as shards complete, because the record count moves
the key) and behind ``python -m repro.analysis summarize --cache``.
"""

from __future__ import annotations

import os
import re
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.engine import CampaignAnalysis
from repro.analysis.io import read_result_header, resolve_result_files
from repro.analysis.slicing import FACTOR_NAMES
from repro.analysis.stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES
from repro.jsonl import sha16_of_json

#: Bumped when report rendering changes shape, so stale caches from older
#: versions can never be served as current output.
MEMO_SCHEMA_VERSION = 1

#: Directory name used for the default cache location inside a results dir.
CACHE_DIRNAME = ".report-cache"

#: Report kinds :func:`cached_report` can render.
REPORT_KINDS = ("summary", "coverage", "slice")


@dataclass
class CachedReport:
    """A rendered (or cache-served) report plus its cache coordinates."""

    text: str
    key: str
    hit: bool
    path: Path
    records: int


def _file_identity(path: Path) -> dict[str, Any]:
    """The cache-key-relevant identity of one result file.

    Reads the header and counts records (non-blank payload lines) without
    parsing them — a fraction of the cost of re-running the statistics.
    """
    header = read_result_header(path)
    records = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                records += 1
    return {
        "file": path.name,
        "system": header.get("system"),
        "campaign": header.get("campaign"),
        "platform": header.get("platform"),
        "schema": header.get("schema"),
        "records": max(0, records - 1),  # minus the header line
        "bytes": path.stat().st_size,
    }


def report_cache_key(
    files: Sequence[Path],
    *,
    kind: str,
    factor: str | None = None,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
) -> tuple[str, int]:
    """``(cache key, total record count)`` for a set of result files."""
    identities = [_file_identity(path) for path in sorted(files)]
    key = sha16_of_json(
        {
            "memo": MEMO_SCHEMA_VERSION,
            "kind": kind,
            "factor": factor,
            "seed": seed,
            "confidence": confidence,
            "resamples": resamples,
            "files": identities,
        }
    )
    return key, sum(identity["records"] for identity in identities)


def _render(
    source: Any,
    kind: str,
    factor: str | None,
    suites: Iterable[Any],
    seed: int,
    confidence: float,
    resamples: int,
) -> str:
    analysis = CampaignAnalysis(
        source, suites=suites, seed=seed, confidence=confidence, resamples=resamples
    )
    if kind == "summary":
        return analysis.report()
    if kind == "coverage":
        from repro.faults.coverage import render_coverage_report

        return render_coverage_report(analysis.coverage())
    assert kind == "slice" and factor is not None
    return analysis.slice_report(factor)


def cached_report(
    source: str | Path | Sequence[Path],
    *,
    kind: str = "summary",
    factor: str | None = None,
    cache_dir: str | Path | None = None,
    suites: Iterable[Any] = (),
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
) -> CachedReport:
    """Render ``kind`` over ``source``, served from the on-disk memo when fresh.

    Args:
        source: a campaign results directory (dispatch directories resolve
            to their ``merged/`` files) or an explicit sequence of result
            file paths.
        kind: ``"summary"``, ``"coverage"`` or ``"slice"``.
        factor: the slice factor (required when ``kind="slice"``).
        cache_dir: where cache files live; defaults to
            ``<source>/.report-cache`` for directory sources (required for
            explicit file lists).
        suites: extra scenario sources for the slice join (directory sources
            auto-join suite files found inside them).
        seed / confidence / resamples: the analysis parameters; part of the
            cache key.

    Raises ``ValueError`` for an unknown kind/factor, a record-less source,
    or a file-list source without ``cache_dir``.
    """
    if kind not in REPORT_KINDS:
        raise ValueError(f"unknown report kind {kind!r}; expected one of {REPORT_KINDS}")
    if kind == "slice":
        if factor is None:
            raise ValueError("kind='slice' requires a factor")
        if factor not in FACTOR_NAMES:
            raise ValueError(
                f"unknown slice factor {factor!r}; expected one of {sorted(FACTOR_NAMES)}"
            )
    elif factor is not None:
        raise ValueError(f"factor={factor!r} only applies to kind='slice'")

    if isinstance(source, (str, Path)):
        directory = Path(source)
        files = resolve_result_files(directory)
        analysis_source: Any = directory
        if cache_dir is None:
            cache_dir = directory / CACHE_DIRNAME
    else:
        files = [Path(path) for path in source]
        analysis_source = files
        if cache_dir is None:
            raise ValueError("cache_dir is required for explicit file-list sources")

    key, records = report_cache_key(
        files, kind=kind, factor=factor, seed=seed,
        confidence=confidence, resamples=resamples,
    )
    if records == 0:
        raise ValueError(f"no run records found in {[str(f) for f in files]}")

    prefix = kind if factor is None else f"{kind}-{factor}"
    cache_dir = Path(cache_dir)
    path = cache_dir / f"{prefix}-{key}.md"
    try:
        text = path.read_text(encoding="utf-8")
        return CachedReport(text=text, key=key, hit=True, path=path, records=records)
    except FileNotFoundError:
        pass

    text = _render(analysis_source, kind, factor, suites, seed, confidence, resamples)
    cache_dir.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp-{uuid.uuid4().hex[:8]}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)
    # One live entry per report kind: superseded keys (earlier record
    # counts, older parameters) are pruned so a long-running service's
    # cache stays bounded by the number of report kinds, not fetches.
    # The remainder must be exactly a key, so a factor that prefixes
    # another ("map" / "map-style") can never prune its sibling's entries.
    for stale in cache_dir.glob(f"{prefix}-*.md"):
        remainder = stale.name[len(prefix) + 1:]
        if stale.name != path.name and re.fullmatch(r"[0-9a-f]{16}\.md", remainder):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass
    return CachedReport(text=text, key=key, hit=False, path=path, records=records)
