"""Streaming access to campaign results, live or persisted.

The analytics engine never materialises a whole campaign: persisted JSONL
files are read one line at a time and each :class:`RunRecord` is handed to
the streaming accumulators (:mod:`repro.analysis.stats`) as soon as it is
parsed, then dropped.  The same iterator protocol wraps live
:class:`CampaignResult` objects, so every downstream consumer — summaries,
slicing, diffing, reports — is written once against
:func:`iter_contexts`.

A *source* is any of:

* a ``CampaignResult`` or a mapping of them (what ``Campaign.run`` returns);
* a path to one campaign-result ``.jsonl`` file;
* a path to a directory, whose campaign-result ``*.jsonl`` files are read in
  sorted order (files of other kinds — e.g. an exported scenario suite living
  next to the results, as the CI smoke job lays them out — are skipped);
* an iterable mixing any of the above.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.core.metrics import (
    RESULT_SCHEMA_VERSION,
    CampaignResult,
    RunRecord,
)
from repro.jsonl import validate_frame_header
from repro.world.scenario import Scenario

#: ``kind`` values of the repo's two JSONL formats.
RESULT_KIND = "campaign-result"
SUITE_KIND = "scenario-suite"

#: Sources accepted by :func:`iter_contexts`.
RecordSource = Any


@dataclass
class RecordContext:
    """One run record plus the join context the record itself cannot carry.

    ``platform`` comes from the persisted file's header (or ``""`` for live
    results); ``scenario`` is joined lazily by the slicing layer.
    """

    record: RunRecord
    platform: str = ""
    source: str = ""
    scenario: Scenario | None = None


def read_result_header(path: str | Path) -> dict[str, Any]:
    """The header object of a campaign-result JSONL file (first line only)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                return json.loads(line)
    raise ValueError(f"{path} is empty")


def _validate_header(path: Path, header: dict[str, Any]) -> None:
    validate_frame_header(path, header, RESULT_KIND, RESULT_SCHEMA_VERSION)


def iter_result_records(
    path: str | Path, *, validated: bool = False
) -> Iterator[RunRecord]:
    """Yield a persisted file's records one at a time (constant memory).

    Mirrors :func:`repro.core.metrics.read_campaign_jsonl`'s torn-tail
    policy without its list materialisation: a malformed *final* line — the
    leftover of a campaign killed mid-append — is dropped with a warning,
    while a malformed line anywhere earlier raises.  The look-ahead works by
    holding each parse failure until the next non-blank line proves it was
    not the tail.

    ``validated=True`` skips re-parsing the header line for callers that
    already read it (the header is still consumed, never yielded).
    """
    path = Path(path)
    pending_error: Exception | None = None
    pending_line = ""
    with path.open("r", encoding="utf-8") as handle:
        header_seen = False
        for line in handle:
            if not line.strip():
                continue
            if not header_seen:
                if not validated:
                    _validate_header(path, json.loads(line))
                header_seen = True
                continue
            if pending_error is not None:
                raise ValueError(
                    f"{path}: malformed run record {pending_line!r}: {pending_error}"
                ) from pending_error
            try:
                yield RunRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as error:
                pending_error = error
                pending_line = line.strip()[:80]
        if not header_seen:
            raise ValueError(f"{path} is empty")
    if pending_error is not None:
        warnings.warn(
            f"dropping torn trailing record in {path} "
            f"(campaign killed mid-append?): {pending_error}",
            RuntimeWarning,
            stacklevel=2,
        )


def discover_result_files(directory: str | Path) -> tuple[list[Path], list[Path]]:
    """Split a directory's ``*.jsonl`` files into (result files, suite files).

    Files of any other kind (or unreadable ones) are skipped with a warning;
    both lists are sorted by name so downstream iteration order — and with it
    every report byte — is stable.
    """
    directory = Path(directory)
    results: list[Path] = []
    suites: list[Path] = []
    for path in sorted(directory.glob("*.jsonl")):
        try:
            kind = read_result_header(path).get("kind")
        except (ValueError, OSError) as error:
            warnings.warn(
                f"skipping unreadable JSONL file {path}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if kind == RESULT_KIND:
            results.append(path)
        elif kind == SUITE_KIND:
            suites.append(path)
        else:
            warnings.warn(
                f"skipping {path}: unknown JSONL kind {kind!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return results, suites


def _iter_path_contexts(path: Path) -> Iterator[RecordContext]:
    if path.is_dir():
        result_files, _ = discover_result_files(path)
        if not result_files:
            raise ValueError(f"{path} contains no {RESULT_KIND} JSONL files")
        for file in result_files:
            yield from _iter_path_contexts(file)
        return
    header = read_result_header(path)
    _validate_header(path, header)
    platform = str(header.get("platform", "") or "")
    for record in iter_result_records(path, validated=True):
        yield RecordContext(record=record, platform=platform, source=str(path))


def iter_contexts(source: RecordSource) -> Iterator[RecordContext]:
    """Stream :class:`RecordContext` objects from any supported source."""
    if isinstance(source, CampaignResult):
        for record in source.records:
            yield RecordContext(record=record, source=source.system_name)
        return
    if isinstance(source, RunRecord):
        yield RecordContext(record=source)
        return
    if isinstance(source, Mapping):
        for key in source:
            yield from iter_contexts(source[key])
        return
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise FileNotFoundError(f"campaign results not found: {path}")
        yield from _iter_path_contexts(path)
        return
    if isinstance(source, Iterable):
        for item in source:
            yield from iter_contexts(item)
        return
    raise TypeError(
        f"unsupported record source {type(source).__name__}; expected a "
        f"CampaignResult, a mapping of them, a JSONL file/directory path, or "
        f"an iterable of those"
    )


def iter_records(source: RecordSource) -> Iterator[RunRecord]:
    """Like :func:`iter_contexts`, yielding the bare records."""
    for context in iter_contexts(source):
        yield context.record
