"""Streaming access to campaign results, live or persisted.

The analytics engine never materialises a whole campaign: persisted JSONL
files are read one line at a time and each :class:`RunRecord` is handed to
the streaming accumulators (:mod:`repro.analysis.stats`) as soon as it is
parsed, then dropped.  The same iterator protocol wraps live
:class:`CampaignResult` objects, so every downstream consumer — summaries,
slicing, diffing, reports — is written once against
:func:`iter_contexts`.

A *source* is any of:

* a ``CampaignResult`` or a mapping of them (what ``Campaign.run`` returns);
* a path to one campaign-result ``.jsonl`` file;
* a path to a directory, whose campaign-result ``*.jsonl`` files are read in
  sorted order (files of other kinds — e.g. an exported scenario suite living
  next to the results, as the CI smoke job lays them out — are skipped);
* an iterable mixing any of the above.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.core.metrics import (
    RESULT_SCHEMA_VERSION,
    CampaignResult,
    RunRecord,
    parse_record_line,
)
from repro.jsonl import iter_frame_records, read_frame_header, validate_frame_header
from repro.world.scenario import Scenario

#: ``kind`` values of the repo's two JSONL formats.
RESULT_KIND = "campaign-result"
SUITE_KIND = "scenario-suite"

#: Sources accepted by :func:`iter_contexts`.
RecordSource = Any


@dataclass
class RecordContext:
    """One run record plus the join context the record itself cannot carry.

    ``platform`` comes from the persisted file's header (or ``""`` for live
    results); ``scenario`` is joined lazily by the slicing layer.
    """

    record: RunRecord
    platform: str = ""
    source: str = ""
    scenario: Scenario | None = None


def read_result_header(path: str | Path) -> dict[str, Any]:
    """The header object of a campaign-result JSONL file (first line only)."""
    return read_frame_header(path)


def _validate_header(path: Path, header: dict[str, Any]) -> None:
    validate_frame_header(path, header, RESULT_KIND, RESULT_SCHEMA_VERSION)


def iter_result_records(
    path: str | Path, *, validated: bool = False
) -> Iterator[RunRecord]:
    """Yield a persisted file's records one at a time (constant memory).

    A thin wrapper over the shared torn-tail-tolerant line-stream reader
    (:func:`repro.jsonl.iter_frame_records`), so its policy — drop a
    malformed *final* line with a warning, raise on a malformed line
    anywhere earlier — is exactly :func:`read_campaign_jsonl`'s.

    ``validated=True`` skips re-parsing the header line for callers that
    already read it (the header is still consumed, never yielded).
    """
    yield from iter_frame_records(
        path,
        RESULT_KIND,
        RESULT_SCHEMA_VERSION,
        parse_record_line,
        description="run record",
        skip_header_validation=validated,
    )


def discover_result_files(directory: str | Path) -> tuple[list[Path], list[Path]]:
    """Split a directory's ``*.jsonl`` files into (result files, suite files).

    Files of any other kind (or unreadable ones) are skipped with a warning;
    both lists are sorted by name so downstream iteration order — and with it
    every report byte — is stable.
    """
    directory = Path(directory)
    results: list[Path] = []
    suites: list[Path] = []
    for path in sorted(directory.glob("*.jsonl")):
        try:
            kind = read_result_header(path).get("kind")
        except (ValueError, OSError) as error:
            warnings.warn(
                f"skipping unreadable JSONL file {path}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        if kind == RESULT_KIND:
            results.append(path)
        elif kind == SUITE_KIND:
            suites.append(path)
        else:
            warnings.warn(
                f"skipping {path}: unknown JSONL kind {kind!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return results, suites


def resolve_result_files(directory: str | Path) -> list[Path]:
    """The result files a directory source resolves to, in streaming order.

    Owns the dispatch-directory fallback: a directory with no result files
    of its own but a populated ``merged/`` subdirectory (the
    :mod:`repro.dispatch` layout) resolves to the merged files, which is
    what lets ``repro.analysis summarize <dispatch-dir>`` work directly.
    Shared by the streaming iterator below and the report memo cache
    (:mod:`repro.analysis.memo`), so the two agree on what "the campaign's
    files" means.  Raises ``ValueError`` when nothing resolves.
    """
    directory = Path(directory)
    result_files, _ = discover_result_files(directory)
    if not result_files:
        merged = directory / "merged"
        if merged.is_dir():
            result_files = discover_result_files(merged)[0]
        if not result_files:
            raise ValueError(f"{directory} contains no {RESULT_KIND} JSONL files")
    return result_files


def _iter_path_contexts(path: Path) -> Iterator[RecordContext]:
    if path.is_dir():
        for file in resolve_result_files(path):
            yield from _iter_path_contexts(file)
        return
    header = read_result_header(path)
    _validate_header(path, header)
    platform = str(header.get("platform", "") or "")
    for record in iter_result_records(path, validated=True):
        yield RecordContext(record=record, platform=platform, source=str(path))


def iter_contexts(source: RecordSource) -> Iterator[RecordContext]:
    """Stream :class:`RecordContext` objects from any supported source."""
    if isinstance(source, CampaignResult):
        for record in source.records:
            yield RecordContext(record=record, source=source.system_name)
        return
    if isinstance(source, RunRecord):
        yield RecordContext(record=source)
        return
    if isinstance(source, Mapping):
        for key in source:
            yield from iter_contexts(source[key])
        return
    if isinstance(source, (str, Path)):
        path = Path(source)
        if not path.exists():
            raise FileNotFoundError(f"campaign results not found: {path}")
        yield from _iter_path_contexts(path)
        return
    if isinstance(source, Iterable):
        for item in source:
            yield from iter_contexts(item)
        return
    raise TypeError(
        f"unsupported record source {type(source).__name__}; expected a "
        f"CampaignResult, a mapping of them, a JSONL file/directory path, or "
        f"an iterable of those"
    )


def iter_records(source: RecordSource) -> Iterator[RunRecord]:
    """Like :func:`iter_contexts`, yielding the bare records."""
    for context in iter_contexts(source):
        yield context.record
