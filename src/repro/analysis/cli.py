"""Campaign analytics CLI: ``python -m repro.analysis``.

Subcommands:

* ``summarize`` — per-system rates with Wilson CIs, continuous metrics with
  bootstrap CIs, and the paper side-by-side, as deterministic markdown.
* ``slice`` — the same rates grouped by a scenario factor (stress axis,
  wind band, lighting band, obstacle density, map, platform, ...).
* ``compare`` — statistical diff of two campaigns (two-proportion z-tests
  for rates, bootstrap difference CIs for metrics).
* ``gate`` — ``compare`` that exits non-zero when the current campaign has
  a significant regression vs the baseline; made for CI.

Results arguments are persisted-campaign sources: a ``*.jsonl`` file written
by ``Campaign.out(...)`` / ``CampaignResult.to_jsonl`` or a directory of
them (suite JSONL files found in a results directory are joined
automatically so scenario factors resolve).

Examples::

    python -m repro.analysis summarize results/ --out report.md
    python -m repro.analysis slice results/ --by stress-axis
    python -m repro.analysis compare results-a/ results-b/
    python -m repro.analysis gate results/ --baseline baselines/campaign-smoke
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.compare import DEFAULT_ALPHA
from repro.analysis.engine import CampaignAnalysis
from repro.analysis.report import render_comparison_report, render_slice_report
from repro.analysis.slicing import FACTOR_NAMES
from repro.analysis.stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES


def _emit(text: str, out: str | None) -> None:
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}")
    else:
        print(text)


def _analysis(args: argparse.Namespace, source: str) -> CampaignAnalysis:
    return CampaignAnalysis(
        source,
        suites=list(getattr(args, "suite", None) or ()),
        seed=args.seed,
        confidence=args.confidence,
        resamples=args.resamples,
    )


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0,
        help="bootstrap base seed (same data + seed -> byte-identical output)",
    )
    parser.add_argument(
        "--confidence", type=float, default=DEFAULT_CONFIDENCE,
        help="confidence level for all intervals (default: %(default)s)",
    )
    parser.add_argument(
        "--resamples", type=int, default=DEFAULT_RESAMPLES,
        help="bootstrap resample count (default: %(default)s)",
    )
    parser.add_argument("--out", default=None, help="write the markdown report here")


def _emit_cached(args: argparse.Namespace, kind: str, factor: str | None = None) -> int:
    """The ``--cache`` path: memoized rendering keyed by campaign content."""
    from repro.analysis.memo import cached_report

    result = cached_report(
        args.results,
        kind=kind,
        factor=factor,
        suites=list(getattr(args, "suite", None) or ()),
        seed=args.seed,
        confidence=args.confidence,
        resamples=args.resamples,
    )
    _emit(result.text, args.out)
    print(
        f"report cache {'hit' if result.hit else 'miss'} "
        f"(key {result.key}, {result.records} records)",
        file=sys.stderr,
    )
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    if args.cache and Path(args.results).is_dir():
        return _emit_cached(args, "summary")
    analysis = _analysis(args, args.results)
    if not analysis.summaries():
        print(f"no run records found under {args.results}", file=sys.stderr)
        return 2
    _emit(analysis.report(), args.out)
    return 0


def _cmd_slice(args: argparse.Namespace) -> int:
    if args.cache and Path(args.results).is_dir():
        return _emit_cached(args, "slice", args.by)
    analysis = _analysis(args, args.results)
    slices = analysis.slice(args.by)
    if not slices:
        print(f"no run records found under {args.results}", file=sys.stderr)
        return 2
    _emit(
        render_slice_report(args.by, slices, confidence=args.confidence), args.out
    )
    return 0


def _cmd_compare(args: argparse.Namespace, gate: bool = False) -> int:
    current_source = args.results
    baseline_source = args.baseline
    current = _analysis(args, current_source)
    comparison = current.compare_to(
        baseline_source,
        alpha=args.alpha,
        baseline_label=str(baseline_source),
        current_label=str(current_source),
    )
    if not comparison.rates and not (comparison.baseline_only or comparison.current_only):
        print("no overlapping systems to compare", file=sys.stderr)
        return 2
    _emit(render_comparison_report(comparison), args.out)
    if gate and comparison.has_regression:
        problems = [f"{d.system}/{d.metric}" for d in comparison.regressions]
        problems.extend(
            f"{name} missing from current results" for name in comparison.baseline_only
        )
        print(
            f"GATE FAILED vs {baseline_source}: {'; '.join(problems)}",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Statistical analysis of persisted campaign results.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="per-system rates and metrics with confidence intervals"
    )
    summarize.add_argument("results", help="campaign JSONL file or results directory")
    summarize.add_argument(
        "--cache", action="store_true",
        help="memoize the rendered report under <results>/.report-cache, "
        "keyed by campaign context fingerprint + record count: an "
        "unchanged campaign directory is a cache hit",
    )
    _add_common_args(summarize)

    slice_cmd = sub.add_parser("slice", help="group results by a scenario factor")
    slice_cmd.add_argument("results", help="campaign JSONL file or results directory")
    slice_cmd.add_argument(
        "--cache", action="store_true",
        help="memoize the rendered report (see summarize --cache)",
    )
    slice_cmd.add_argument(
        "--by", required=True, choices=list(FACTOR_NAMES),
        help="the factor to slice by",
    )
    slice_cmd.add_argument(
        "--suite", action="append", default=None,
        help="suite JSONL file or preset name for the scenario join (repeatable)",
    )
    _add_common_args(slice_cmd)

    compare = sub.add_parser("compare", help="statistically diff two campaigns")
    compare.add_argument("baseline", help="baseline campaign JSONL file or directory")
    compare.add_argument("results", help="current campaign JSONL file or directory")
    compare.add_argument(
        "--alpha", type=float, default=DEFAULT_ALPHA,
        help="significance level for the tests (default: %(default)s)",
    )
    _add_common_args(compare)

    gate = sub.add_parser(
        "gate", help="compare vs a baseline; exit 1 on significant regression"
    )
    gate.add_argument("results", help="current campaign JSONL file or directory")
    gate.add_argument(
        "--baseline", required=True,
        help="baseline campaign JSONL file or directory to gate against",
    )
    gate.add_argument(
        "--alpha", type=float, default=DEFAULT_ALPHA,
        help="significance level for the regression tests (default: %(default)s)",
    )
    _add_common_args(gate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "slice":
            return _cmd_slice(args)
        if args.command == "compare":
            return _cmd_compare(args)
        return _cmd_compare(args, gate=True)
    except (FileNotFoundError, ValueError) as error:
        # Missing/empty sources, wrong JSONL kinds, unknown presets: known
        # user-input failures get a diagnostic and exit 2, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
