"""Campaign diffing and regression detection.

Compares two campaigns — e.g. detector-grid variant A vs B, or the current
results vs a committed baseline JSONL directory — system by system:

* every rate in :data:`~repro.analysis.stats.RATE_METRICS` is tested with
  the pooled two-proportion z-test;
* every continuous metric gets a seeded bootstrap CI on the difference of
  means (significant when the CI excludes zero);
* a *regression* is a significant change in the harmful direction (success
  down; collision / poor-landing / false-negative / landing-error up), which
  is what ``python -m repro.analysis gate`` turns into a non-zero exit code
  for CI.

The paper comparison is deliberately softer: the reproduction runs on a
synthetic substrate, so :func:`compare_to_paper` only reports whether the
paper's value falls inside each reproduced Wilson interval — a drift
indicator, not a gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.bench import paper_values

from repro.analysis.io import iter_records
from repro.analysis.stats import (
    CONTINUOUS_METRICS,
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    RATE_METRICS,
    MetricEstimate,
    ProportionTest,
    RateEstimate,
    SystemSummary,
    bootstrap_diff_ci,
    metric_seed,
    summarize_records,
    two_proportion_test,
)

#: Default significance level for the regression gate.
DEFAULT_ALPHA = 0.05


@dataclass(frozen=True)
class RateDelta:
    """One rate compared across two campaigns."""

    system: str
    metric: str
    baseline: RateEstimate
    current: RateEstimate
    test: ProportionTest
    alpha: float
    higher_is_better: bool

    @property
    def delta(self) -> float:
        """Current minus baseline rate (fraction, not percent)."""
        return self.current.rate - self.baseline.rate

    @property
    def significant(self) -> bool:
        return self.test.significant(self.alpha)

    @property
    def worsened(self) -> bool:
        moved = self.delta < 0 if self.higher_is_better else self.delta > 0
        return moved

    @property
    def regression(self) -> bool:
        return self.significant and self.worsened

    @property
    def verdict(self) -> str:
        if not self.significant:
            return "no significant change"
        return "REGRESSION" if self.worsened else "improvement"


@dataclass(frozen=True)
class MetricDelta:
    """One continuous metric compared across two campaigns."""

    system: str
    metric: str
    baseline: MetricEstimate
    current: MetricEstimate
    diff_low: float
    diff_high: float
    alpha: float
    #: ``None`` marks an informational metric that never gates.
    higher_is_better: bool | None

    @property
    def delta(self) -> float:
        return self.current.mean - self.baseline.mean

    @property
    def significant(self) -> bool:
        """Whether the bootstrap CI of the difference excludes zero.

        Exclusion is tested against a relative noise floor rather than exact
        zero: two campaigns whose samples are *identical* still differ by
        ~1e-17 in the mean when their sample counts differ (float summation
        order), and a zero-width CI at that epsilon must not gate a build.
        """
        if math.isnan(self.diff_low) or math.isnan(self.diff_high):
            return False
        tolerance = 1e-9 * max(
            abs(self.baseline.mean), abs(self.current.mean), 1.0
        )
        return self.diff_low > tolerance or self.diff_high < -tolerance

    @property
    def worsened(self) -> bool:
        if self.higher_is_better is None:
            return False
        return self.delta < 0 if self.higher_is_better else self.delta > 0

    @property
    def regression(self) -> bool:
        return self.significant and self.worsened

    @property
    def verdict(self) -> str:
        if self.higher_is_better is None:
            return "informational"
        if not self.significant:
            return "no significant change"
        return "REGRESSION" if self.worsened else "improvement"


@dataclass
class CampaignComparison:
    """The full diff of two campaigns."""

    baseline_label: str
    current_label: str
    alpha: float
    rates: list[RateDelta] = field(default_factory=list)
    metrics: list[MetricDelta] = field(default_factory=list)
    #: Systems present on only one side (never compared, always reported).
    baseline_only: tuple[str, ...] = ()
    current_only: tuple[str, ...] = ()

    @property
    def regressions(self) -> list[RateDelta | MetricDelta]:
        flagged: list[RateDelta | MetricDelta] = []
        flagged.extend(delta for delta in self.rates if delta.regression)
        flagged.extend(delta for delta in self.metrics if delta.regression)
        return flagged

    @property
    def has_regression(self) -> bool:
        """Whether the gate should fail.

        A baseline system that produced *no* records in the current campaign
        is the worst regression of all (it crashed or was silently dropped),
        so ``baseline_only`` fails the gate alongside the statistical
        regressions.  New systems in the current campaign do not.
        """
        return bool(self.regressions) or bool(self.baseline_only)


def compare_summaries(
    baseline: Mapping[str, SystemSummary],
    current: Mapping[str, SystemSummary],
    *,
    alpha: float = DEFAULT_ALPHA,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> CampaignComparison:
    """Diff two summary sets (systems compared by name, sorted order)."""
    comparison = CampaignComparison(
        baseline_label=baseline_label,
        current_label=current_label,
        alpha=alpha,
        baseline_only=tuple(sorted(set(baseline) - set(current))),
        current_only=tuple(sorted(set(current) - set(baseline))),
    )
    for system in sorted(set(baseline) & set(current)):
        old, new = baseline[system], current[system]
        for metric, higher_is_better in RATE_METRICS.items():
            old_successes, old_total = old.rate_counts(metric)
            new_successes, new_total = new.rate_counts(metric)
            comparison.rates.append(
                RateDelta(
                    system=system,
                    metric=metric,
                    baseline=RateEstimate.from_counts(old_successes, old_total, confidence),
                    current=RateEstimate.from_counts(new_successes, new_total, confidence),
                    test=two_proportion_test(
                        old_successes, old_total, new_successes, new_total
                    ),
                    alpha=alpha,
                    higher_is_better=higher_is_better,
                )
            )
        for metric, higher_is_better in CONTINUOUS_METRICS.items():
            old_samples = old.metric_samples(metric)
            new_samples = new.metric_samples(metric)
            diff_low, diff_high = bootstrap_diff_ci(
                old_samples.values,
                new_samples.values,
                confidence=confidence,
                resamples=resamples,
                seed=metric_seed(seed, "diff", system, metric),
            )
            comparison.metrics.append(
                MetricDelta(
                    system=system,
                    metric=metric,
                    baseline=old_samples.estimate(
                        seed=metric_seed(seed, baseline_label, system, metric),
                        confidence=confidence,
                        resamples=resamples,
                    ),
                    current=new_samples.estimate(
                        seed=metric_seed(seed, current_label, system, metric),
                        confidence=confidence,
                        resamples=resamples,
                    ),
                    diff_low=diff_low,
                    diff_high=diff_high,
                    alpha=alpha,
                    higher_is_better=higher_is_better,
                )
            )
    return comparison


def compare_campaigns(
    baseline_source: Any,
    current_source: Any,
    *,
    alpha: float = DEFAULT_ALPHA,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    seed: int = 0,
    baseline_label: str = "baseline",
    current_label: str = "current",
) -> CampaignComparison:
    """Diff two record sources (live results, files, or directories)."""
    return compare_summaries(
        summarize_records(iter_records(baseline_source)),
        summarize_records(iter_records(current_source)),
        alpha=alpha,
        confidence=confidence,
        resamples=resamples,
        seed=seed,
        baseline_label=baseline_label,
        current_label=current_label,
    )


# ---------------------------------------------------------------------- #
# paper comparison (informational)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PaperDelta:
    """One reproduced rate next to the paper's reported value."""

    system: str
    metric: str
    paper_rate: float  # fraction
    reproduced: RateEstimate

    @property
    def paper_in_interval(self) -> bool:
        return self.reproduced.contains(self.paper_rate)


#: Paper table keys for each gated rate metric.
_PAPER_KEYS = {"success": "success", "collision": "collision", "poor-landing": "poor_landing"}


def compare_to_paper(
    summaries: Mapping[str, SystemSummary],
    paper: Mapping[str, Mapping[str, float]] | None = None,
    *,
    confidence: float = DEFAULT_CONFIDENCE,
) -> list[PaperDelta]:
    """Reproduced outcome rates vs the paper's Table I (or ``paper``) values."""
    paper = paper if paper is not None else paper_values.TABLE_1_SIL
    deltas: list[PaperDelta] = []
    for system in sorted(summaries):
        reference = paper.get(system)
        if not reference:
            continue
        for metric, key in _PAPER_KEYS.items():
            if key not in reference:
                continue
            successes, total = summaries[system].rate_counts(metric)
            deltas.append(
                PaperDelta(
                    system=system,
                    metric=metric,
                    paper_rate=reference[key] / 100.0,
                    reproduced=RateEstimate.from_counts(successes, total, confidence),
                )
            )
    return deltas
