"""The analysis session object: one source, every question.

:class:`CampaignAnalysis` binds a record source (live campaign results or
persisted JSONL) to the analysis parameters (seed, confidence, bootstrap
size) and answers summarise / slice / compare / gate questions against it.
It is both the return value of the fluent ``Campaign(...).analyze()``
terminal and the engine behind ``python -m repro.analysis``.

Sources are re-iterated per question (summaries are computed once and
cached), so persisted campaigns of any size stream instead of loading.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.analysis.compare import (
    DEFAULT_ALPHA,
    CampaignComparison,
    PaperDelta,
    compare_summaries,
    compare_to_paper,
)
from repro.analysis.io import RecordContext, discover_result_files, iter_contexts
from repro.analysis.report import render_slice_report, render_summary_report
from repro.analysis.slicing import ScenarioIndex, slice_contexts
from repro.analysis.stats import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    SystemSummary,
    summarize_records,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.coverage import CoverageReport


class CampaignAnalysis:
    """Analytics over one campaign's records.

    Args:
        source: anything :func:`repro.analysis.io.iter_contexts` accepts —
            the dict of :class:`CampaignResult` returned by ``Campaign.run``,
            a JSONL file, or a directory of persisted results.
        suites: scenario sources (suites, specs, preset names or suite JSONL
            paths) used to join records to their scenario factors for
            slicing.  When ``source`` is a directory, any suite JSONL files
            found inside it are joined automatically.
        seed: base seed for every bootstrap draw (reports are byte-stable
            for a fixed seed).
        confidence: confidence level for all intervals.
        resamples: bootstrap resample count.
    """

    def __init__(
        self,
        source: Any,
        *,
        suites: Iterable[Any] = (),
        seed: int = 0,
        confidence: float = DEFAULT_CONFIDENCE,
        resamples: int = DEFAULT_RESAMPLES,
    ) -> None:
        if isinstance(source, Iterator):
            # Every question (summaries, slices, comparisons) streams the
            # source afresh; a one-shot iterator would silently come up
            # empty on the second pass, so pin its items now.
            source = list(source)
        self._source = source
        self.seed = seed
        self.confidence = confidence
        self.resamples = resamples
        self._summaries: dict[str, SystemSummary] | None = None
        self._coverage: "CoverageReport | None" = None
        self._index = ScenarioIndex.from_sources(suites) if suites else ScenarioIndex()
        if isinstance(source, (str, Path)) and Path(source).is_dir():
            _, suite_files = discover_result_files(source)
            for path in suite_files:
                self._index.add_source(path)

    # ------------------------------------------------------------------ #
    def contexts(self) -> Iterable[RecordContext]:
        """A fresh streaming pass over the source's records."""
        return iter_contexts(self._source)

    def summaries(self) -> dict[str, SystemSummary]:
        """Per-system streaming summaries (computed once, then cached).

        Fault-coverage counters accumulate in the same pass, so a summary
        report over a persisted campaign reads each file exactly once.
        """
        if self._summaries is None:
            from repro.faults.coverage import CoverageReport

            coverage = CoverageReport()

            def stream():
                for context in self.contexts():
                    coverage.add(context.record)
                    yield context.record

            self._summaries = summarize_records(stream())
            self._coverage = coverage
        return self._summaries

    def paper_deltas(self) -> list[PaperDelta]:
        """Reproduced rates next to the paper's Table I values."""
        return compare_to_paper(self.summaries(), confidence=self.confidence)

    def coverage(self) -> "CoverageReport":
        """Fault-coverage accounting over the source's records.

        See :mod:`repro.faults.coverage`; meaningful when the campaign was
        flown with a fault axis (``Campaign.faults(...)``), and free —
        piggybacked on the :meth:`summaries` pass — when it was not.
        """
        if self._coverage is None:
            self.summaries()
        assert self._coverage is not None
        return self._coverage

    def report(self, title: str = "Campaign analytics summary") -> str:
        """The deterministic ``summarize`` markdown report.

        Campaigns flown with fault injection additionally get a
        fault-coverage section (per-fault detection/absorption accounting
        and the failure-mode breakdown).
        """
        rendered = render_summary_report(
            self.summaries(),
            seed=self.seed,
            confidence=self.confidence,
            resamples=self.resamples,
            paper_deltas=self.paper_deltas(),
            title=title,
        )
        coverage = self.coverage()
        if coverage.fault_runs:
            from repro.faults.coverage import render_coverage_section

            rendered = "\n".join(
                [rendered, "## Fault injection", "", render_coverage_section(coverage), ""]
            )
        return rendered

    # ------------------------------------------------------------------ #
    def slice(self, factor: str) -> dict[str, dict[str, SystemSummary]]:
        """Group records by a named factor (see ``FACTOR_NAMES``)."""
        return slice_contexts(self.contexts(), factor, self._index)

    def slice_report(self, factor: str) -> str:
        """The deterministic ``slice`` markdown report."""
        return render_slice_report(
            factor, self.slice(factor), confidence=self.confidence
        )

    # ------------------------------------------------------------------ #
    def compare_to(
        self,
        baseline: "CampaignAnalysis | Any",
        *,
        alpha: float = DEFAULT_ALPHA,
        baseline_label: str | None = None,
        current_label: str = "current",
    ) -> CampaignComparison:
        """Diff this campaign (current) against a baseline one."""
        if not isinstance(baseline, CampaignAnalysis):
            label = baseline_label or (
                str(baseline) if isinstance(baseline, (str, Path)) else "baseline"
            )
            baseline = CampaignAnalysis(
                baseline,
                seed=self.seed,
                confidence=self.confidence,
                resamples=self.resamples,
            )
        else:
            label = baseline_label or "baseline"
        return compare_summaries(
            baseline.summaries(),
            self.summaries(),
            alpha=alpha,
            confidence=self.confidence,
            resamples=self.resamples,
            seed=self.seed,
            baseline_label=label,
            current_label=current_label,
        )

    def gate(
        self, baseline: "CampaignAnalysis | Any", *, alpha: float = DEFAULT_ALPHA
    ) -> CampaignComparison:
        """Alias of :meth:`compare_to`, named for the CI use case.

        The caller turns ``result.has_regression`` into an exit code; the
        CLI's ``gate`` subcommand does exactly that.
        """
        return self.compare_to(baseline, alpha=alpha)
