"""Slice campaign records along scenario factors.

Run records carry only what the mission produced (outcome, errors, a
scenario id and a scenario fingerprint); the *conditions* a run was flown
under — wind, lighting, obstacle density, map, stress axes — live in the
scenario.  This module joins the two through a :class:`ScenarioIndex` and
groups records by any registered factor, producing one streaming
:class:`~repro.analysis.stats.SystemSummary` per (slice label, system).

Record-level factors come from :data:`repro.core.metrics.RECORD_FACTORS`;
this module adds the scenario-joined and context (file header) factors.  A
factor maps a record to a *tuple* of labels, so multi-label factors — a
scenario can exercise several stress axes at once — fan one record into
several slices.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.metrics import RECORD_FACTORS, RunRecord
from repro.faults.classifier import activated_faults, failure_mode_label
from repro.world.scenario import Scenario
from repro.world.scenario_gen import SuiteSpec
from repro.world.scenario_suite import ScenarioSuite

from repro.analysis.io import RecordContext, iter_contexts
from repro.analysis.stats import SystemSummary

#: Label used when a factor needs a scenario and the join found none.
UNJOINED = "(unjoined)"

#: A factor maps one joined record context to its slice labels.
FactorFn = Callable[[RecordContext], tuple[str, ...]]


# ---------------------------------------------------------------------- #
# banding helpers (shared thresholds with Scenario.active_stress_axes)
# ---------------------------------------------------------------------- #
def wind_band(wind_speed: float) -> str:
    """Coarse Beaufort-like banding of the mean wind speed."""
    if wind_speed < 1.0:
        return "calm (<1 m/s)"
    if wind_speed < 4.0:
        return "light (1-4 m/s)"
    if wind_speed < 8.0:
        return "moderate (4-8 m/s)"
    return "strong (>=8 m/s)"


def lighting_band(lighting: float) -> str:
    """Banding of the scenario lighting axis (1.0 = full daylight)."""
    if lighting >= 0.9:
        return "day (>=0.9)"
    if lighting > 0.55:
        return "dusk (0.55-0.9)"
    return "night (<=0.55)"


def obstacle_band(density: float) -> str:
    """Banding of the obstacle-density multiplier (1.0 = the paper's maps)."""
    if density < 0.8:
        return "sparse (<0.8)"
    if density < 1.3:
        return "nominal (0.8-1.3)"
    return "dense (>=1.3)"


def severity_band(severity: float) -> str:
    """Quartile banding of an injected fault's severity (0..1).

    Quartiles align with the default sweep ladders (dyadic rungs), so a
    severity sweep slices cleanly into the four bands.
    """
    if severity < 0.25:
        return "mild (<0.25)"
    if severity < 0.5:
        return "moderate (0.25-0.5)"
    if severity < 0.75:
        return "severe (0.5-0.75)"
    return "extreme (>=0.75)"


# ---------------------------------------------------------------------- #
# the scenario join
# ---------------------------------------------------------------------- #
class ScenarioIndex:
    """Scenario lookup keyed by id, guarded by content fingerprints.

    A record joins to a scenario when their ids match *and* — whenever both
    sides carry one — their fingerprints agree, so results from an old suite
    never silently inherit factors from a newer suite that reused its ids.
    """

    def __init__(self, scenarios: Iterable[Scenario] = ()) -> None:
        self._by_id: dict[str, Scenario] = {}
        self._fingerprints: dict[str, str] = {}
        self.mismatches = 0
        for scenario in scenarios:
            self.add(scenario)

    def __len__(self) -> int:
        return len(self._by_id)

    def add(self, scenario: Scenario) -> None:
        self._by_id[scenario.scenario_id] = scenario
        self._fingerprints[scenario.scenario_id] = scenario.fingerprint()

    def add_source(self, source: Any) -> None:
        """Fold in a ScenarioSuite, SuiteSpec, preset name or suite JSONL path.

        A string is treated as a file path when it *looks* like one (exists,
        ends in ``.jsonl``, or contains a path separator) and as a preset
        name otherwise — so a typo'd suite path fails with a file error
        instead of being silently reinterpreted as an unknown preset.
        """
        if isinstance(source, ScenarioSuite):
            for scenario in source:
                self.add(scenario)
        elif isinstance(source, SuiteSpec):
            self.add_source(source.generate())
        elif isinstance(source, Scenario):
            self.add(source)
        elif isinstance(source, Path):
            self.add_source(ScenarioSuite.from_jsonl(source))
        elif isinstance(source, str):
            looks_like_path = (
                Path(source).exists()
                or source.endswith(".jsonl")
                or "/" in source
                or "\\" in source
            )
            if looks_like_path:
                self.add_source(ScenarioSuite.from_jsonl(source))
            else:
                from repro.world.scenario_gen import generate_suite

                self.add_source(generate_suite(source))
        else:
            raise TypeError(
                f"unsupported scenario source {type(source).__name__}; expected "
                f"a ScenarioSuite, SuiteSpec, Scenario, suite JSONL path or "
                f"preset name"
            )

    @classmethod
    def from_sources(cls, sources: Iterable[Any]) -> "ScenarioIndex":
        index = cls()
        for source in sources:
            index.add_source(source)
        return index

    def lookup(self, scenario_id: str, fingerprint: str = "") -> Scenario | None:
        scenario = self._by_id.get(scenario_id)
        if scenario is None:
            return None
        if fingerprint and self._fingerprints[scenario_id] != fingerprint:
            self.mismatches += 1
            return None
        return scenario


def join_contexts(
    contexts: Iterable[RecordContext], index: ScenarioIndex | None
) -> Iterator[RecordContext]:
    """Attach scenarios to a context stream (lazily; unmatched stay ``None``)."""
    for context in contexts:
        if index is not None and context.scenario is None:
            context.scenario = index.lookup(
                context.record.scenario_id, context.record.scenario_fingerprint
            )
        yield context


# ---------------------------------------------------------------------- #
# factor registry
# ---------------------------------------------------------------------- #
def _scenario_factor(
    accessor: Callable[[Scenario], tuple[str, ...]],
) -> FactorFn:
    def factor(context: RecordContext) -> tuple[str, ...]:
        if context.scenario is None:
            return (UNJOINED,)
        return accessor(context.scenario)

    return factor


def _stress_axes(scenario: Scenario) -> tuple[str, ...]:
    return scenario.active_stress_axes or ("(no axis)",)


#: Label used by the fault factors when a run had no activated fault.
NO_FAULT = "(no fault)"


def _activated_fault_labels(record: RunRecord, key: str) -> tuple[str, ...]:
    labels = tuple(
        sorted({str(fault.get(key, "(unknown)")) for fault in activated_faults(record)})
    )
    return labels or (NO_FAULT,)


def _fault_severity_bands(record: RunRecord) -> tuple[str, ...]:
    """Severity bands of the record's activated faults (from the persisted
    per-fault metadata, so sweeps slice without needing the fault plan)."""
    bands = set()
    for fault in activated_faults(record):
        severity = fault.get("severity")
        bands.add(
            severity_band(float(severity)) if severity is not None else "(unknown)"
        )
    return tuple(sorted(bands)) or (NO_FAULT,)


#: Every registered factor.  Record-level accessors are lifted from
#: ``repro.core.metrics.RECORD_FACTORS``; the rest need the scenario join
#: (label ``(unjoined)`` when no suite provided the scenario) or the
#: persisted file's header (``platform``).
FACTORS: dict[str, FactorFn] = {
    **{
        name: (lambda context, _accessor=accessor: _accessor(context.record))
        for name, accessor in RECORD_FACTORS.items()
    },
    "stress-axis": _scenario_factor(_stress_axes),
    "wind-band": _scenario_factor(
        lambda scenario: (wind_band(scenario.weather.wind_speed),)
    ),
    "lighting-band": _scenario_factor(
        lambda scenario: (lighting_band(scenario.lighting),)
    ),
    "obstacle-band": _scenario_factor(
        lambda scenario: (obstacle_band(scenario.obstacle_density),)
    ),
    "map": _scenario_factor(lambda scenario: (scenario.map_name,)),
    "map-style": _scenario_factor(lambda scenario: (scenario.map_style.value,)),
    "platform": lambda context: (context.platform or "(unknown)",),
    # Fault-injection factors (see repro.faults): a record lands in one
    # slice per *activated* injected fault, so overlapping faults fan out.
    "fault": lambda context: _activated_fault_labels(context.record, "name"),
    "fault-target": lambda context: _activated_fault_labels(context.record, "target"),
    "fault-severity-band": lambda context: _fault_severity_bands(context.record),
    "failure-mode": lambda context: (failure_mode_label(context.record),),
}

#: Factor names exposed to the CLI, sorted for stable help text.
FACTOR_NAMES: tuple[str, ...] = tuple(sorted(FACTORS))


def resolve_factor(factor: str | FactorFn) -> FactorFn:
    if callable(factor):
        return factor
    if factor not in FACTORS:
        raise ValueError(
            f"unknown slicing factor {factor!r}; expected one of {list(FACTOR_NAMES)}"
        )
    return FACTORS[factor]


def slice_contexts(
    contexts: Iterable[RecordContext],
    factor: str | FactorFn,
    index: ScenarioIndex | None = None,
) -> dict[str, dict[str, SystemSummary]]:
    """Group a context stream into ``{slice label: {system: summary}}``.

    Single pass and streaming: each record updates the counters of every
    slice it belongs to and is then dropped.
    """
    factor_fn = resolve_factor(factor)
    slices: dict[str, dict[str, SystemSummary]] = {}
    for context in join_contexts(contexts, index):
        record = context.record
        for label in factor_fn(context):
            systems = slices.setdefault(label, {})
            summary = systems.get(record.system_name)
            if summary is None:
                summary = systems[record.system_name] = SystemSummary(record.system_name)
            summary.add(record)
    return slices


def slice_records(
    source: Any,
    factor: str | FactorFn,
    suites: Iterable[Any] = (),
) -> dict[str, dict[str, SystemSummary]]:
    """Convenience wrapper: slice any record source by a named factor."""
    index = ScenarioIndex.from_sources(suites) if suites else None
    return slice_contexts(iter_contexts(source), factor, index)
