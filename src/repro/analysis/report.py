"""Deterministic markdown reports over analysis results.

Every renderer here is a pure function of its inputs plus the explicit
analysis parameters (seed, confidence, resamples): no timestamps, no
machine names, no dict-ordering dependence.  Summarising the same JSONL
with the same seed therefore produces *byte-identical* markdown — which is
what lets CI diff a report artifact against a committed baseline.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.bench.tables import format_markdown_table

from repro.analysis.compare import CampaignComparison, PaperDelta
from repro.analysis.stats import (
    CONTINUOUS_METRICS,
    DEFAULT_CONFIDENCE,
    DEFAULT_RESAMPLES,
    RATE_METRICS,
    MetricEstimate,
    RateEstimate,
    SystemSummary,
)

#: Human-readable column titles for the rate metrics.
RATE_TITLES = {
    "success": "Success",
    "collision": "Collision",
    "poor-landing": "Poor landing",
    "detection-fn": "Detection FN",
}


def format_rate(estimate: RateEstimate) -> str:
    """``24.67% [20.12%, 29.83%] (37/150)`` — value, Wilson CI, counts."""
    if estimate.total == 0:
        return "n/a (0 runs)"
    return (
        f"{100.0 * estimate.rate:.2f}% "
        f"[{100.0 * estimate.low:.2f}%, {100.0 * estimate.high:.2f}%] "
        f"({estimate.successes}/{estimate.total})"
    )


def format_metric(estimate: MetricEstimate) -> str:
    """``0.254 [0.198, 0.311] (n=126)`` — mean, bootstrap CI, sample count."""
    if estimate.count == 0 or math.isnan(estimate.mean):
        return "n/a (n=0)"
    return (
        f"{estimate.mean:.3f} [{estimate.low:.3f}, {estimate.high:.3f}] "
        f"(n={estimate.count})"
    )


def _signed_pp(delta: float) -> str:
    return "n/a" if math.isnan(delta) else f"{100.0 * delta:+.2f} pp"


def _parameters_block(seed: int, confidence: float, resamples: int) -> list[str]:
    return [
        f"- confidence: {100.0 * confidence:g}% (Wilson intervals for rates, "
        f"percentile bootstrap for means)",
        f"- bootstrap: {resamples} resamples, base seed {seed} (deterministic)",
    ]


def render_summary_report(
    summaries: Mapping[str, SystemSummary],
    *,
    seed: int = 0,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    paper_deltas: list[PaperDelta] | None = None,
    title: str = "Campaign analytics summary",
) -> str:
    """The ``summarize`` report: rates, continuous metrics, paper check."""
    systems = sorted(summaries)
    total_runs = sum(summaries[name].runs for name in systems)
    lines = [f"# {title}", ""]
    lines.append(f"- records: {total_runs} runs across {len(systems)} system(s)")
    lines.extend(_parameters_block(seed, confidence, resamples))
    lines.append("")

    lines.append("## Outcome rates")
    lines.append("")
    headers = ["System", "Runs", "Adverse"] + [
        RATE_TITLES[metric] for metric in RATE_METRICS
    ]
    rows = []
    for name in systems:
        summary = summaries[name]
        rates = summary.rates(confidence)
        rows.append(
            [name, summary.runs, summary.adverse_runs]
            + [format_rate(rates[metric]) for metric in RATE_METRICS]
        )
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("## Continuous metrics (mean with bootstrap CI)")
    lines.append("")
    rows = []
    for name in systems:
        estimates = summaries[name].metrics(
            seed=seed, confidence=confidence, resamples=resamples
        )
        for metric in CONTINUOUS_METRICS:
            rows.append([name, metric, format_metric(estimates[metric])])
    lines.append(format_markdown_table(["System", "Metric", "Estimate"], rows))
    lines.append("")

    if paper_deltas:
        lines.append("## Paper reference (Table I, SIL)")
        lines.append("")
        rows = [
            [
                delta.system,
                delta.metric,
                f"{100.0 * delta.paper_rate:.2f}%",
                format_rate(delta.reproduced),
                "yes" if delta.paper_in_interval else "no",
            ]
            for delta in paper_deltas
        ]
        lines.append(
            format_markdown_table(
                ["System", "Metric", "Paper", "Reproduced", "Paper in CI?"], rows
            )
        )
        lines.append(
            "\nThe substrate is a synthetic simulator, so these are drift "
            "indicators, not pass/fail checks."
        )
        lines.append("")
    return "\n".join(lines)


def render_slice_report(
    factor: str,
    slices: Mapping[str, Mapping[str, SystemSummary]],
    *,
    confidence: float = DEFAULT_CONFIDENCE,
    title: str | None = None,
) -> str:
    """The ``slice`` report: one outcome-rate table per slice label."""
    lines = [f"# {title or f'Campaign slice by {factor}'}", ""]
    lines.append(f"- factor: `{factor}`, {len(slices)} slice(s)")
    lines.append(
        f"- confidence: {100.0 * confidence:g}% Wilson intervals"
    )
    lines.append("")
    for label in sorted(slices):
        systems = slices[label]
        slice_runs = sum(summary.runs for summary in systems.values())
        lines.append(f"## {label} ({slice_runs} runs)")
        lines.append("")
        headers = ["System", "Runs"] + [RATE_TITLES[m] for m in RATE_METRICS]
        rows = []
        for name in sorted(systems):
            summary = systems[name]
            rates = summary.rates(confidence)
            rows.append(
                [name, summary.runs]
                + [format_rate(rates[metric]) for metric in RATE_METRICS]
            )
        lines.append(format_markdown_table(headers, rows))
        lines.append("")
    return "\n".join(lines)


def render_comparison_report(
    comparison: CampaignComparison,
    *,
    title: str = "Campaign comparison",
) -> str:
    """The ``compare``/``gate`` report: per-metric deltas with verdicts."""
    lines = [f"# {title}", ""]
    lines.append(f"- baseline: {comparison.baseline_label}")
    lines.append(f"- current: {comparison.current_label}")
    lines.append(f"- significance level: alpha = {comparison.alpha:g}")
    for label, names in (
        ("baseline only", comparison.baseline_only),
        ("current only", comparison.current_only),
    ):
        if names:
            lines.append(f"- systems in {label} (not compared): {', '.join(names)}")
    lines.append("")

    lines.append("## Outcome rates (two-proportion z-test)")
    lines.append("")
    rows = [
        [
            delta.system,
            delta.metric,
            format_rate(delta.baseline),
            format_rate(delta.current),
            _signed_pp(delta.delta),
            f"{delta.test.z:+.2f}",
            f"{delta.test.p_value:.4f}",
            delta.verdict,
        ]
        for delta in comparison.rates
    ]
    lines.append(
        format_markdown_table(
            ["System", "Metric", "Baseline", "Current", "Delta", "z", "p", "Verdict"],
            rows,
        )
    )
    lines.append("")

    lines.append("## Continuous metrics (bootstrap CI of the difference)")
    lines.append("")
    rows = []
    for delta in comparison.metrics:
        if math.isnan(delta.diff_low):
            diff_text = "n/a"
        else:
            diff_text = f"[{delta.diff_low:+.3f}, {delta.diff_high:+.3f}]"
        rows.append(
            [
                delta.system,
                delta.metric,
                format_metric(delta.baseline),
                format_metric(delta.current),
                diff_text,
                delta.verdict,
            ]
        )
    lines.append(
        format_markdown_table(
            ["System", "Metric", "Baseline", "Current", "CI of delta", "Verdict"],
            rows,
        )
    )
    lines.append("")

    regressions = comparison.regressions
    lines.append("## Gate")
    lines.append("")
    if comparison.baseline_only:
        lines.append(
            f"**Baseline system(s) with no current records (gates as "
            f"regression): {', '.join(comparison.baseline_only)}**"
        )
        lines.append("")
    if regressions:
        lines.append(f"**{len(regressions)} significant regression(s):**")
        lines.append("")
        for delta in regressions:
            lines.append(f"- {delta.system} / {delta.metric}: {delta.verdict}")
    elif not comparison.baseline_only:
        lines.append("No significant regressions.")
    lines.append("")
    return "\n".join(lines)
