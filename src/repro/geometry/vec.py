"""Immutable 3-vector used throughout the simulator.

A deliberately small class: the hot loops (ray casting, occupancy updates)
convert to NumPy arrays, but the public API of the world, vehicle and planner
modules speaks :class:`Vec3` so that positions and velocities are explicit and
hashable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class Vec3:
    """A point or direction in 3D ENU space (metres)."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "Vec3":
        """The origin / null displacement."""
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def unit_x() -> "Vec3":
        return Vec3(1.0, 0.0, 0.0)

    @staticmethod
    def unit_y() -> "Vec3":
        return Vec3(0.0, 1.0, 0.0)

    @staticmethod
    def unit_z() -> "Vec3":
        return Vec3(0.0, 0.0, 1.0)

    @staticmethod
    def from_array(arr: Sequence[float]) -> "Vec3":
        """Build from any length-3 sequence (list, tuple, ndarray)."""
        if len(arr) != 3:
            raise ValueError(f"expected length-3 sequence, got length {len(arr)}")
        return Vec3(float(arr[0]), float(arr[1]), float(arr[2]))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_array(self) -> np.ndarray:
        """Return a float64 ndarray copy of the components."""
        return np.array([self.x, self.y, self.z], dtype=float)

    def to_tuple(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        if scalar == 0.0:
            raise ZeroDivisionError("Vec3 division by zero")
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    # ------------------------------------------------------------------ #
    # products and norms
    # ------------------------------------------------------------------ #
    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt in hot comparisons)."""
        return self.dot(self)

    def horizontal_norm(self) -> float:
        """Length of the projection onto the ground (x-y) plane."""
        return math.hypot(self.x, self.y)

    def normalized(self) -> "Vec3":
        """Unit vector in the same direction.

        Raises:
            ValueError: if the vector is (numerically) zero.
        """
        n = self.norm()
        if n < 1e-12:
            raise ValueError("cannot normalize a zero vector")
        return self / n

    def distance_to(self, other: "Vec3") -> float:
        return (self - other).norm()

    def horizontal_distance_to(self, other: "Vec3") -> float:
        return (self - other).horizontal_norm()

    # ------------------------------------------------------------------ #
    # interpolation and clamping
    # ------------------------------------------------------------------ #
    def lerp(self, other: "Vec3", t: float) -> "Vec3":
        """Linear interpolation: ``t=0`` gives self, ``t=1`` gives other."""
        return Vec3(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
            self.z + (other.z - self.z) * t,
        )

    def clamp_norm(self, max_norm: float) -> "Vec3":
        """Scale the vector down if it is longer than ``max_norm``."""
        if max_norm < 0:
            raise ValueError("max_norm must be non-negative")
        n = self.norm()
        if n <= max_norm or n < 1e-12:
            return self
        return self * (max_norm / n)

    def with_z(self, z: float) -> "Vec3":
        """Copy with the vertical component replaced."""
        return Vec3(self.x, self.y, z)

    def is_close(self, other: "Vec3", tol: float = 1e-9) -> bool:
        return (self - other).norm() <= tol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec3({self.x:.3f}, {self.y:.3f}, {self.z:.3f})"
