"""A rigid-body pose: position plus orientation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.quaternion import Quaternion
from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class Pose:
    """Position and orientation of a body in the world frame."""

    position: Vec3 = Vec3.zero()
    orientation: Quaternion = Quaternion.identity()

    @staticmethod
    def identity() -> "Pose":
        return Pose(Vec3.zero(), Quaternion.identity())

    @staticmethod
    def at(position: Vec3, yaw: float = 0.0) -> "Pose":
        """A pose at ``position`` with a pure heading rotation."""
        return Pose(position, Quaternion.from_yaw(yaw))

    def transform_point(self, body_point: Vec3) -> Vec3:
        """Map a point expressed in the body frame into the world frame."""
        return self.position + self.orientation.rotate(body_point)

    def inverse_transform_point(self, world_point: Vec3) -> Vec3:
        """Map a world-frame point into the body frame."""
        return self.orientation.rotate_inverse(world_point - self.position)

    def compose(self, child: "Pose") -> "Pose":
        """The pose of ``child`` (expressed relative to self) in the world frame."""
        return Pose(
            self.transform_point(child.position),
            self.orientation * child.orientation,
        )

    @property
    def yaw(self) -> float:
        return self.orientation.yaw

    def distance_to(self, other: "Pose") -> float:
        return self.position.distance_to(other.position)

    def with_position(self, position: Vec3) -> "Pose":
        return Pose(position, self.orientation)

    def with_yaw(self, yaw: float) -> "Pose":
        return Pose(self.position, Quaternion.from_yaw(yaw))
