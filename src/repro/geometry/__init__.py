"""Geometric primitives shared by every other subsystem.

The simulation, mapping and planning layers all describe the world in a
right-handed ENU (east-north-up) frame with metres as the unit.  This package
provides the small vocabulary of types they share:

* :class:`Vec3` — an immutable 3-vector with the usual arithmetic.
* :class:`Quaternion` — unit quaternion for attitude, plus Euler helpers.
* :class:`Pose` — position + orientation.
* :class:`AABB` — axis-aligned bounding box with intersection and ray tests.
* :class:`Ray` — origin + direction, used by the depth sensor and the octree.
* :class:`GridIndex` — conversion between continuous coordinates and integer
  voxel indices.
"""

from repro.geometry.vec import Vec3
from repro.geometry.quaternion import Quaternion
from repro.geometry.pose import Pose
from repro.geometry.aabb import AABB
from repro.geometry.ray import Ray
from repro.geometry.grid import GridIndex

__all__ = ["Vec3", "Quaternion", "Pose", "AABB", "Ray", "GridIndex"]
