"""Axis-aligned bounding boxes.

Obstacles in the simulated world, nodes of the octree and inflated collision
bounds are all AABBs; the planner's collision checker and the depth sensor's
ray caster are built on the intersection tests defined here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class AABB:
    """An axis-aligned box defined by its minimum and maximum corners."""

    minimum: Vec3
    maximum: Vec3

    def __post_init__(self) -> None:
        if (
            self.minimum.x > self.maximum.x
            or self.minimum.y > self.maximum.y
            or self.minimum.z > self.maximum.z
        ):
            raise ValueError(
                f"AABB minimum {self.minimum} exceeds maximum {self.maximum}"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_center(center: Vec3, size: Vec3) -> "AABB":
        """Box centred at ``center`` with full extents ``size``."""
        half = size * 0.5
        return AABB(center - half, center + half)

    @staticmethod
    def from_ground_footprint(
        center_x: float, center_y: float, width: float, depth: float, height: float
    ) -> "AABB":
        """Box sitting on the ground plane (z=0), e.g. a building."""
        return AABB(
            Vec3(center_x - width / 2, center_y - depth / 2, 0.0),
            Vec3(center_x + width / 2, center_y + depth / 2, height),
        )

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def center(self) -> Vec3:
        return self.minimum.lerp(self.maximum, 0.5)

    @property
    def size(self) -> Vec3:
        return self.maximum - self.minimum

    @property
    def volume(self) -> float:
        s = self.size
        return s.x * s.y * s.z

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, point: Vec3, tol: float = 0.0) -> bool:
        return (
            self.minimum.x - tol <= point.x <= self.maximum.x + tol
            and self.minimum.y - tol <= point.y <= self.maximum.y + tol
            and self.minimum.z - tol <= point.z <= self.maximum.z + tol
        )

    def intersects(self, other: "AABB") -> bool:
        return (
            self.minimum.x <= other.maximum.x
            and self.maximum.x >= other.minimum.x
            and self.minimum.y <= other.maximum.y
            and self.maximum.y >= other.minimum.y
            and self.minimum.z <= other.maximum.z
            and self.maximum.z >= other.minimum.z
        )

    def closest_point(self, point: Vec3) -> Vec3:
        """The point inside the box closest to ``point``."""
        return Vec3(
            min(max(point.x, self.minimum.x), self.maximum.x),
            min(max(point.y, self.minimum.y), self.maximum.y),
            min(max(point.z, self.minimum.z), self.maximum.z),
        )

    def distance_to_point(self, point: Vec3) -> float:
        """Euclidean distance from ``point`` to the box surface (0 if inside)."""
        return self.closest_point(point).distance_to(point)

    def inflated(self, margin: float) -> "AABB":
        """A copy grown by ``margin`` metres on every face."""
        if margin < 0 and (
            self.size.x < -2 * margin or self.size.y < -2 * margin or self.size.z < -2 * margin
        ):
            raise ValueError("negative margin would invert the box")
        grow = Vec3(margin, margin, margin)
        return AABB(self.minimum - grow, self.maximum + grow)

    def union(self, other: "AABB") -> "AABB":
        return AABB(
            Vec3(
                min(self.minimum.x, other.minimum.x),
                min(self.minimum.y, other.minimum.y),
                min(self.minimum.z, other.minimum.z),
            ),
            Vec3(
                max(self.maximum.x, other.maximum.x),
                max(self.maximum.y, other.maximum.y),
                max(self.maximum.z, other.maximum.z),
            ),
        )

    # ------------------------------------------------------------------ #
    # ray and segment intersection (slab method)
    # ------------------------------------------------------------------ #
    def ray_intersection(
        self, origin: Vec3, direction: Vec3, max_range: float = math.inf
    ) -> Optional[float]:
        """Distance along the ray to the first intersection, or ``None``.

        Uses the classic slab test.  A ray starting inside the box reports a
        hit at distance 0.
        """
        t_min = 0.0
        t_max = max_range
        for axis in ("x", "y", "z"):
            o = getattr(origin, axis)
            d = getattr(direction, axis)
            lo = getattr(self.minimum, axis)
            hi = getattr(self.maximum, axis)
            if abs(d) < 1e-12:
                if o < lo or o > hi:
                    return None
                continue
            inv = 1.0 / d
            t1 = (lo - o) * inv
            t2 = (hi - o) * inv
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return None
        return t_min

    def segment_intersects(self, start: Vec3, end: Vec3) -> bool:
        """True if the line segment from ``start`` to ``end`` touches the box."""
        delta = end - start
        length = delta.norm()
        if length < 1e-12:
            return self.contains(start)
        hit = self.ray_intersection(start, delta / length, max_range=length)
        return hit is not None
