"""Unit quaternions for vehicle attitude.

Conventions: scalar-first storage ``(w, x, y, z)``, right-handed rotations,
and Euler angles as intrinsic Z-Y-X (yaw, pitch, roll) which matches the
autopilot convention used by PX4-style flight stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class Quaternion:
    """A unit quaternion representing an attitude / rotation."""

    w: float = 1.0
    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def identity() -> "Quaternion":
        return Quaternion(1.0, 0.0, 0.0, 0.0)

    @staticmethod
    def from_axis_angle(axis: Vec3, angle: float) -> "Quaternion":
        """Rotation of ``angle`` radians about ``axis`` (need not be unit)."""
        unit = axis.normalized()
        half = angle / 2.0
        s = math.sin(half)
        return Quaternion(math.cos(half), unit.x * s, unit.y * s, unit.z * s)

    @staticmethod
    def from_euler(roll: float, pitch: float, yaw: float) -> "Quaternion":
        """Build from intrinsic Z-Y-X Euler angles (radians)."""
        cr, sr = math.cos(roll / 2), math.sin(roll / 2)
        cp, sp = math.cos(pitch / 2), math.sin(pitch / 2)
        cy, sy = math.cos(yaw / 2), math.sin(yaw / 2)
        return Quaternion(
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        )

    @staticmethod
    def from_yaw(yaw: float) -> "Quaternion":
        """Pure heading rotation about the vertical axis."""
        return Quaternion.from_euler(0.0, 0.0, yaw)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    def norm(self) -> float:
        return math.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2)

    def normalized(self) -> "Quaternion":
        n = self.norm()
        if n < 1e-12:
            raise ValueError("cannot normalize a zero quaternion")
        return Quaternion(self.w / n, self.x / n, self.y / n, self.z / n)

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    inverse = conjugate  # unit quaternions only

    # ------------------------------------------------------------------ #
    # composition and rotation
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "Quaternion") -> "Quaternion":
        """Hamilton product: ``self * other`` applies ``other`` first."""
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def rotate(self, v: Vec3) -> Vec3:
        """Rotate a vector from the body frame into the world frame."""
        q = self
        u = Vec3(q.x, q.y, q.z)
        s = q.w
        return 2.0 * u.dot(v) * u + (s * s - u.dot(u)) * v + 2.0 * s * u.cross(v)

    def rotate_inverse(self, v: Vec3) -> Vec3:
        """Rotate a vector from the world frame into the body frame."""
        return self.conjugate().rotate(v)

    # ------------------------------------------------------------------ #
    # Euler extraction
    # ------------------------------------------------------------------ #
    def to_euler(self) -> tuple[float, float, float]:
        """Return ``(roll, pitch, yaw)`` in radians."""
        w, x, y, z = self.w, self.x, self.y, self.z
        sinr_cosp = 2 * (w * x + y * z)
        cosr_cosp = 1 - 2 * (x * x + y * y)
        roll = math.atan2(sinr_cosp, cosr_cosp)

        sinp = 2 * (w * y - z * x)
        pitch = math.copysign(math.pi / 2, sinp) if abs(sinp) >= 1 else math.asin(sinp)

        siny_cosp = 2 * (w * z + x * y)
        cosy_cosp = 1 - 2 * (y * y + z * z)
        yaw = math.atan2(siny_cosp, cosy_cosp)
        return roll, pitch, yaw

    @property
    def yaw(self) -> float:
        return self.to_euler()[2]

    def rotation_matrix(self) -> np.ndarray:
        """3x3 rotation matrix (body -> world)."""
        w, x, y, z = self.w, self.x, self.y, self.z
        return np.array(
            [
                [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
                [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
                [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
            ],
            dtype=float,
        )

    # ------------------------------------------------------------------ #
    # interpolation
    # ------------------------------------------------------------------ #
    def slerp(self, other: "Quaternion", t: float) -> "Quaternion":
        """Spherical linear interpolation between two unit quaternions."""
        a = self.normalized()
        b = other.normalized()
        dot = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z
        if dot < 0.0:
            b = Quaternion(-b.w, -b.x, -b.y, -b.z)
            dot = -dot
        if dot > 0.9995:
            # nearly parallel: fall back to normalized lerp
            return Quaternion(
                a.w + t * (b.w - a.w),
                a.x + t * (b.x - a.x),
                a.y + t * (b.y - a.y),
                a.z + t * (b.z - a.z),
            ).normalized()
        theta0 = math.acos(dot)
        theta = theta0 * t
        sin_theta0 = math.sin(theta0)
        s0 = math.cos(theta) - dot * math.sin(theta) / sin_theta0
        s1 = math.sin(theta) / sin_theta0
        return Quaternion(
            s0 * a.w + s1 * b.w,
            s0 * a.x + s1 * b.x,
            s0 * a.y + s1 * b.y,
            s0 * a.z + s1 * b.z,
        )

    def angle_to(self, other: "Quaternion") -> float:
        """Smallest rotation angle (radians) taking ``self`` to ``other``."""
        rel = self.conjugate() * other
        w = min(1.0, max(-1.0, abs(rel.w)))
        return 2.0 * math.acos(w)
