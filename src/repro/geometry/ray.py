"""Rays and ray bundles for the depth sensor and the octree updater."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class Ray:
    """A half-line with a unit direction."""

    origin: Vec3
    direction: Vec3

    def __post_init__(self) -> None:
        n = self.direction.norm()
        if abs(n - 1.0) > 1e-6:
            if n < 1e-12:
                raise ValueError("ray direction must be non-zero")
            object.__setattr__(self, "direction", self.direction / n)

    def point_at(self, distance: float) -> Vec3:
        return self.origin + self.direction * distance

    @staticmethod
    def between(start: Vec3, end: Vec3) -> "Ray":
        """Ray from ``start`` pointing towards ``end``."""
        return Ray(start, (end - start))


def bresenham_voxels(
    start: Vec3, end: Vec3, resolution: float
) -> Iterator[tuple[int, int, int]]:
    """Yield the integer voxel coordinates traversed from ``start`` to ``end``.

    This is a 3D DDA (Amanatides–Woo) traversal at the given voxel
    ``resolution``; it is the core of both the octree ray insertion and the
    dense-grid free-space carving.  The start voxel is yielded first and the
    end voxel last.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")

    def to_key(p: Vec3) -> tuple[int, int, int]:
        return (
            int(math.floor(p.x / resolution)),
            int(math.floor(p.y / resolution)),
            int(math.floor(p.z / resolution)),
        )

    current = list(to_key(start))
    target = to_key(end)
    yield tuple(current)
    if tuple(current) == target:
        return

    delta = end - start
    length = delta.norm()
    if length < 1e-12:
        return
    direction = delta / length

    step = [0, 0, 0]
    t_max = [math.inf, math.inf, math.inf]
    t_delta = [math.inf, math.inf, math.inf]
    origin = (start.x, start.y, start.z)
    dir_components = (direction.x, direction.y, direction.z)

    for i in range(3):
        d = dir_components[i]
        if d > 1e-12:
            step[i] = 1
            boundary = (current[i] + 1) * resolution
            t_max[i] = (boundary - origin[i]) / d
            t_delta[i] = resolution / d
        elif d < -1e-12:
            step[i] = -1
            boundary = current[i] * resolution
            t_max[i] = (boundary - origin[i]) / d
            t_delta[i] = resolution / -d

    # Guard against degenerate floating point loops: the traversal can take at
    # most the Manhattan distance in voxels plus a small slack.
    max_steps = (
        abs(target[0] - current[0])
        + abs(target[1] - current[1])
        + abs(target[2] - current[2])
        + 3
    )
    for _ in range(max_steps):
        t_next = min(t_max)
        if t_next > length + 1e-9:
            # The next voxel boundary lies beyond the segment end: endpoints
            # sitting exactly on voxel corners would otherwise overshoot.
            return
        axis = t_max.index(t_next)
        current[axis] += step[axis]
        t_max[axis] += t_delta[axis]
        yield tuple(current)
        if tuple(current) == target:
            return
