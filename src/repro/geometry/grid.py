"""Conversion between continuous ENU coordinates and integer voxel indices."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.vec import Vec3


@dataclass(frozen=True)
class GridIndex:
    """Maps world coordinates to voxel indices for a grid anchored at ``origin``.

    The voxel with index ``(0, 0, 0)`` covers the half-open cube
    ``[origin, origin + resolution)`` along each axis.
    """

    origin: Vec3
    resolution: float

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError("grid resolution must be positive")

    def to_index(self, point: Vec3) -> tuple[int, int, int]:
        return (
            int(math.floor((point.x - self.origin.x) / self.resolution)),
            int(math.floor((point.y - self.origin.y) / self.resolution)),
            int(math.floor((point.z - self.origin.z) / self.resolution)),
        )

    def to_center(self, index: tuple[int, int, int]) -> Vec3:
        """World coordinates of the centre of the voxel at ``index``."""
        half = self.resolution / 2.0
        return Vec3(
            self.origin.x + index[0] * self.resolution + half,
            self.origin.y + index[1] * self.resolution + half,
            self.origin.z + index[2] * self.resolution + half,
        )

    def voxel_bounds(self, index: tuple[int, int, int]) -> tuple[Vec3, Vec3]:
        lo = Vec3(
            self.origin.x + index[0] * self.resolution,
            self.origin.y + index[1] * self.resolution,
            self.origin.z + index[2] * self.resolution,
        )
        hi = Vec3(
            lo.x + self.resolution, lo.y + self.resolution, lo.z + self.resolution
        )
        return lo, hi

    def snap(self, point: Vec3) -> Vec3:
        """Snap a point to the centre of the voxel containing it."""
        return self.to_center(self.to_index(point))


def wrap_angle(angle: float) -> float:
    """Wrap an angle to the range ``(-pi, pi]``."""
    wrapped = math.fmod(angle + math.pi, 2.0 * math.pi)
    if wrapped <= 0.0:
        wrapped += 2.0 * math.pi
    return wrapped - math.pi


def angle_difference(a: float, b: float) -> float:
    """Smallest signed difference ``a - b`` between two angles."""
    return wrap_angle(a - b)
