"""IMU model.

The paper's real-world section attributes poor local positioning to
"low-quality acceleration and rotational data" on the Pixhawk 2.4.8, fixed by
upgrading to a Cuav X7+ with triple IMUs.  The IMU model therefore exposes a
quality profile (noise densities and bias instability) so the hardware
profiles in :mod:`repro.realworld.hardware` can swap grades.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec3


@dataclass(frozen=True)
class ImuQuality:
    """Noise characteristics of an IMU grade."""

    accel_noise_std: float
    gyro_noise_std: float
    accel_bias_instability: float
    gyro_bias_instability: float

    @staticmethod
    def consumer_grade() -> "ImuQuality":
        """Pixhawk 2.4.8 class sensors."""
        return ImuQuality(
            accel_noise_std=0.12,
            gyro_noise_std=0.015,
            accel_bias_instability=0.02,
            gyro_bias_instability=0.002,
        )

    @staticmethod
    def industrial_grade() -> "ImuQuality":
        """Cuav X7+ class sensors (triple redundant, temperature compensated)."""
        return ImuQuality(
            accel_noise_std=0.04,
            gyro_noise_std=0.004,
            accel_bias_instability=0.005,
            gyro_bias_instability=0.0005,
        )


@dataclass(frozen=True)
class ImuSample:
    """One IMU measurement: specific force and angular rate in the body frame."""

    acceleration: Vec3
    angular_rate: Vec3
    timestamp: float


class ImuSensor:
    """Simulated IMU with white noise plus slowly wandering bias."""

    def __init__(self, quality: ImuQuality | None = None, seed: int = 0) -> None:
        self.quality = quality or ImuQuality.consumer_grade()
        self._rng = np.random.default_rng(seed)
        self._accel_bias = np.zeros(3)
        self._gyro_bias = np.zeros(3)

    def measure(
        self,
        true_acceleration: Vec3,
        true_angular_rate: Vec3,
        timestamp: float,
    ) -> ImuSample:
        q = self.quality
        self._accel_bias += self._rng.normal(0.0, q.accel_bias_instability, size=3) * 0.01
        self._gyro_bias += self._rng.normal(0.0, q.gyro_bias_instability, size=3) * 0.01

        accel = (
            true_acceleration.to_array()
            + self._accel_bias
            + self._rng.normal(0.0, q.accel_noise_std, size=3)
        )
        gyro = (
            true_angular_rate.to_array()
            + self._gyro_bias
            + self._rng.normal(0.0, q.gyro_noise_std, size=3)
        )
        return ImuSample(
            acceleration=Vec3.from_array(accel),
            angular_rate=Vec3.from_array(gyro),
            timestamp=timestamp,
        )

    @property
    def accel_bias(self) -> Vec3:
        return Vec3.from_array(self._accel_bias)
