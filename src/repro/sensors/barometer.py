"""Barometric altimeter.

The flight controller fuses the barometer with GPS altitude; the barometer
contributes a low-noise but slowly drifting altitude reference.
"""

from __future__ import annotations

import numpy as np


class Barometer:
    """Simulated barometric altitude sensor with noise and slow drift."""

    def __init__(
        self,
        noise_std: float = 0.08,
        drift_rate: float = 0.002,
        seed: int = 0,
    ) -> None:
        self.noise_std = noise_std
        self.drift_rate = drift_rate
        self._rng = np.random.default_rng(seed)
        self._drift = 0.0

    def measure(self, true_altitude: float) -> float:
        """One altitude reading in metres above the take-off datum."""
        self._drift += float(self._rng.normal(0.0, self.drift_rate))
        self._drift *= 0.999
        return true_altitude + self._drift + float(self._rng.normal(0.0, self.noise_std))

    @property
    def current_drift(self) -> float:
        return self._drift
