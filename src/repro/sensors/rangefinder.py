"""Downward LiDAR rangefinder (TFMini Plus substitute).

Measures the distance straight down from the drone to the first surface
(ground, rooftop or canopy).  Used by the autopilot for altitude hold during
the final descent and by the landing state to decide when touchdown occurred.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Pose, Vec3
from repro.world.world import World


class Rangefinder:
    """Single-beam downward range sensor.

    Args:
        max_range: sensor range limit (the TFMini Plus reads to ~12 m).
        noise_std: Gaussian range noise in metres.
        seed: RNG seed.
    """

    def __init__(self, max_range: float = 12.0, noise_std: float = 0.02, seed: int = 0) -> None:
        self.max_range = max_range
        self.noise_std = noise_std
        self._rng = np.random.default_rng(seed)

    def measure(self, world: World, true_pose: Pose) -> float | None:
        """Range to the surface directly below, or ``None`` if out of range."""
        hit = world.raycast(
            true_pose.position,
            Vec3(0.0, 0.0, -1.0),
            self.max_range,
            visible_only_from=true_pose.position,
        )
        if hit is None:
            return None
        noisy = hit + float(self._rng.normal(0.0, self.noise_std))
        return max(0.0, noisy)
