"""GPS receiver model (NEO-3 style).

Two error processes matter to the reproduction:

* white measurement noise, always present;
* a slowly varying random-walk **drift** whose magnitude scales with the
  weather's ``gps_degradation`` — this is the "GPS positioning drift ...
  likely caused by poor weather" (§V.C, Fig. 5d) that corrupts the EKF and
  the map during real-world tests.

The receiver also reports HDOP/VDOP figures; the paper notes drift occurred
even though "VDOP/HDOP values [were] within 2-8", so the dilution values here
stay in that range even while drifting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec3
from repro.world.weather import Weather


@dataclass(frozen=True)
class GpsFix:
    """One GPS measurement."""

    position: Vec3
    hdop: float
    vdop: float
    timestamp: float
    num_satellites: int = 12

    @property
    def is_healthy(self) -> bool:
        """Self-reported health: within the 2-8 DOP band the paper quotes."""
        return self.hdop <= 8.0 and self.vdop <= 8.0 and self.num_satellites >= 6


class GpsSensor:
    """Simulated GNSS receiver with noise and weather-driven drift.

    Args:
        noise_std: white-noise standard deviation (m) per axis.
        drift_rate: random-walk step size (m per update) at full degradation.
        drift_limit: maximum drift magnitude (m) at full degradation.
        seed: RNG seed.
    """

    def __init__(
        self,
        noise_std: float = 0.35,
        drift_rate: float = 0.08,
        drift_limit: float = 4.0,
        vertical_factor: float = 1.6,
        seed: int = 0,
    ) -> None:
        self.noise_std = noise_std
        self.drift_rate = drift_rate
        self.drift_limit = drift_limit
        self.vertical_factor = vertical_factor
        self._rng = np.random.default_rng(seed)
        self._drift = np.zeros(3)

    @property
    def current_drift(self) -> Vec3:
        """The current slowly-varying bias (exposed for the fault models)."""
        return Vec3.from_array(self._drift)

    def reset_drift(self) -> None:
        self._drift = np.zeros(3)

    def measure(self, true_position: Vec3, weather: Weather, timestamp: float) -> GpsFix:
        """Produce one fix given the true position and current weather."""
        degradation = weather.gps_degradation
        # Random-walk drift, mean-reverting so it wanders but stays bounded.
        limit = self.drift_limit * max(degradation, 0.05)
        step = self.drift_rate * (0.2 + degradation)
        self._drift += self._rng.normal(0.0, step, size=3)
        self._drift *= 0.995
        magnitude = np.linalg.norm(self._drift)
        if magnitude > limit > 0:
            self._drift *= limit / magnitude

        noise = self._rng.normal(0.0, self.noise_std * (1.0 + degradation), size=3)
        noise[2] *= self.vertical_factor
        measured = true_position.to_array() + self._drift + noise

        # DOP stays within the 2-8 band the paper reports even when drifting.
        hdop = 1.2 + 3.0 * degradation + abs(float(self._rng.normal(0.0, 0.3)))
        vdop = 1.8 + 4.0 * degradation + abs(float(self._rng.normal(0.0, 0.4)))
        satellites = max(6, 14 - int(round(4 * degradation)))

        return GpsFix(
            position=Vec3.from_array(measured),
            hdop=min(hdop, 8.0),
            vdop=min(vdop, 8.0),
            timestamp=timestamp,
            num_satellites=satellites,
        )
