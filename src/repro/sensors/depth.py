"""Forward / downward depth camera producing point clouds.

The real platform carries a forward-facing Realsense D435 and a
downward-facing D435i.  This sensor casts a grid of rays into the world and
returns the hit points as a point cloud in world coordinates.  Two realism
effects matter to the reproduction:

* obstacles with restricted visibility (tree canopies) only return points
  once the drone is close, reproducing the "unseen obstacle" failure mode;
* under heavy precipitation or strong GPS degradation, spurious points are
  injected ("erroneous pointclouds during IRL testing", Fig. 5c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Pose, Vec3
from repro.world.world import World


@dataclass
class PointCloud:
    """A set of 3D points in world coordinates plus capture metadata."""

    points: list[Vec3] = field(default_factory=list)
    timestamp: float = 0.0
    sensor_position: Vec3 = field(default_factory=Vec3.zero)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def merged_with(self, other: "PointCloud") -> "PointCloud":
        return PointCloud(
            points=self.points + other.points,
            timestamp=max(self.timestamp, other.timestamp),
            sensor_position=self.sensor_position,
        )


@dataclass(frozen=True)
class DepthCameraSpec:
    """Ray-grid layout of the simulated depth camera."""

    horizontal_rays: int = 13
    vertical_rays: int = 9
    horizontal_fov_degrees: float = 86.0
    vertical_fov_degrees: float = 57.0
    max_range: float = 15.0
    min_range: float = 0.3


class DepthCamera:
    """Casts a grid of rays and returns the resulting point cloud.

    Args:
        spec: ray-grid layout (defaults approximate a Realsense D435).
        facing: ``"forward"`` or ``"down"``; the platform mounts one of each.
        depth_noise_std: Gaussian range noise in metres.
        seed: seed for noise and spurious-point injection.
    """

    def __init__(
        self,
        spec: DepthCameraSpec | None = None,
        facing: str = "forward",
        depth_noise_std: float = 0.03,
        seed: int = 0,
    ) -> None:
        if facing not in ("forward", "down"):
            raise ValueError("facing must be 'forward' or 'down'")
        self.spec = spec or DepthCameraSpec()
        self.facing = facing
        self.depth_noise_std = depth_noise_std
        self._rng = np.random.default_rng(seed)
        self._directions_body = self._build_ray_grid()

    def _build_ray_grid(self) -> list[Vec3]:
        spec = self.spec
        h_angles = np.linspace(
            -math.radians(spec.horizontal_fov_degrees) / 2,
            math.radians(spec.horizontal_fov_degrees) / 2,
            spec.horizontal_rays,
        )
        v_angles = np.linspace(
            -math.radians(spec.vertical_fov_degrees) / 2,
            math.radians(spec.vertical_fov_degrees) / 2,
            spec.vertical_rays,
        )
        directions = []
        for v in v_angles:
            for h in h_angles:
                if self.facing == "forward":
                    # Body frame: x forward, y left, z up.
                    direction = Vec3(
                        math.cos(v) * math.cos(h),
                        math.cos(v) * math.sin(h),
                        math.sin(v),
                    )
                else:
                    # Downward: z is the main axis, the grid fans around -z.
                    direction = Vec3(
                        math.sin(v),
                        math.cos(v) * math.sin(h),
                        -math.cos(v) * math.cos(h),
                    )
                directions.append(direction.normalized())
        return directions

    def capture(
        self,
        world: World,
        true_pose: Pose,
        estimated_pose: Pose | None = None,
        timestamp: float = 0.0,
        position_error: Vec3 | None = None,
    ) -> PointCloud:
        """Cast the ray grid from the drone's true pose.

        Args:
            world: the simulated world.
            true_pose: ground-truth pose used for ray casting.
            estimated_pose: the pose the mapping module believes; returned
                points are expressed relative to it, so state-estimation error
                shifts the whole cloud (this is how GPS drift corrupts the
                map, Fig. 5c/5d).
            timestamp: simulation time.
            position_error: explicit extra offset applied to the points
                (used by the real-world fault models).
        """
        estimated_pose = estimated_pose or true_pose
        estimation_offset = estimated_pose.position - true_pose.position
        if position_error is not None:
            estimation_offset = estimation_offset + position_error

        points: list[Vec3] = []
        weather = world.weather
        dropout = min(0.6, 0.25 * weather.precipitation)

        for direction_body in self._directions_body:
            if dropout > 0 and self._rng.random() < dropout:
                continue
            direction_world = true_pose.orientation.rotate(direction_body)
            hit = world.raycast(
                true_pose.position,
                direction_world,
                self.spec.max_range,
                visible_only_from=true_pose.position,
            )
            if hit is None or hit < self.spec.min_range:
                continue
            noisy_range = hit + float(self._rng.normal(0.0, self.depth_noise_std))
            noisy_range = max(self.spec.min_range, noisy_range)
            point = true_pose.position + direction_world * noisy_range
            points.append(point + estimation_offset)

        points.extend(
            self._spurious_points(weather, estimated_pose)
        )
        return PointCloud(
            points=points,
            timestamp=timestamp,
            sensor_position=estimated_pose.position,
        )

    def _spurious_points(self, weather, estimated_pose: Pose) -> list[Vec3]:
        """Phantom returns caused by rain speckle / severe GPS degradation."""
        severity = max(weather.precipitation, weather.gps_degradation)
        if severity < 0.5:
            return []
        count = int(self._rng.poisson(3.0 * (severity - 0.5)))
        spurious = []
        for _ in range(count):
            direction = Vec3(
                float(self._rng.normal()), float(self._rng.normal()), float(self._rng.normal())
            )
            try:
                direction = direction.normalized()
            except ValueError:
                continue
            distance = float(self._rng.uniform(1.0, self.spec.max_range * 0.5))
            spurious.append(estimated_pose.position + direction * distance)
        return spurious
