"""Forward / downward depth camera producing point clouds.

The real platform carries a forward-facing Realsense D435 and a
downward-facing D435i.  This sensor casts a grid of rays into the world and
returns the hit points as a point cloud in world coordinates.  Two realism
effects matter to the reproduction:

* obstacles with restricted visibility (tree canopies) only return points
  once the drone is close, reproducing the "unseen obstacle" failure mode;
* under heavy precipitation or strong GPS degradation, spurious points are
  injected ("erroneous pointclouds during IRL testing", Fig. 5c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Pose, Vec3
from repro.world.world import World


def _rotate_rays(orientation, vectors: np.ndarray) -> np.ndarray:
    """Rotate ``(N, 3)`` body-frame vectors into the world frame.

    Replicates :meth:`repro.geometry.Quaternion.rotate` term by term — same
    operand order, same addition association — so each row is bit-identical
    to rotating the corresponding :class:`Vec3` individually.
    """
    qx, qy, qz, s = orientation.x, orientation.y, orientation.z, orientation.w
    vx = vectors[:, 0]
    vy = vectors[:, 1]
    vz = vectors[:, 2]
    dot_uv = qx * vx + qy * vy + qz * vz
    c1 = 2.0 * dot_uv
    c2 = s * s - (qx * qx + qy * qy + qz * qz)
    c3 = 2.0 * s
    cross_x = qy * vz - qz * vy
    cross_y = qz * vx - qx * vz
    cross_z = qx * vy - qy * vx
    out = np.empty_like(vectors)
    out[:, 0] = (qx * c1 + vx * c2) + cross_x * c3
    out[:, 1] = (qy * c1 + vy * c2) + cross_y * c3
    out[:, 2] = (qz * c1 + vz * c2) + cross_z * c3
    return out


@dataclass
class PointCloud:
    """A set of 3D points in world coordinates plus capture metadata."""

    points: list[Vec3] = field(default_factory=list)
    timestamp: float = 0.0
    sensor_position: Vec3 = field(default_factory=Vec3.zero)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def merged_with(self, other: "PointCloud") -> "PointCloud":
        return PointCloud(
            points=self.points + other.points,
            timestamp=max(self.timestamp, other.timestamp),
            sensor_position=self.sensor_position,
        )


@dataclass(frozen=True)
class DepthCameraSpec:
    """Ray-grid layout of the simulated depth camera."""

    horizontal_rays: int = 13
    vertical_rays: int = 9
    horizontal_fov_degrees: float = 86.0
    vertical_fov_degrees: float = 57.0
    max_range: float = 15.0
    min_range: float = 0.3


class DepthCamera:
    """Casts a grid of rays and returns the resulting point cloud.

    Args:
        spec: ray-grid layout (defaults approximate a Realsense D435).
        facing: ``"forward"`` or ``"down"``; the platform mounts one of each.
        depth_noise_std: Gaussian range noise in metres.
        seed: seed for noise and spurious-point injection.
    """

    def __init__(
        self,
        spec: DepthCameraSpec | None = None,
        facing: str = "forward",
        depth_noise_std: float = 0.03,
        seed: int = 0,
    ) -> None:
        if facing not in ("forward", "down"):
            raise ValueError("facing must be 'forward' or 'down'")
        self.spec = spec or DepthCameraSpec()
        self.facing = facing
        self.depth_noise_std = depth_noise_std
        self._rng = np.random.default_rng(seed)
        self._directions_body = self._build_ray_grid()
        self._directions_body_arr = np.array(
            [[d.x, d.y, d.z] for d in self._directions_body], dtype=float
        )
        # Steepest descent rate over the grid: used by the mission fast path
        # to prove no ray can reach the ground within range.
        self._max_descent = float(max(0.0, -self._directions_body_arr[:, 2].min()))

    def _build_ray_grid(self) -> list[Vec3]:
        spec = self.spec
        h_angles = np.linspace(
            -math.radians(spec.horizontal_fov_degrees) / 2,
            math.radians(spec.horizontal_fov_degrees) / 2,
            spec.horizontal_rays,
        )
        v_angles = np.linspace(
            -math.radians(spec.vertical_fov_degrees) / 2,
            math.radians(spec.vertical_fov_degrees) / 2,
            spec.vertical_rays,
        )
        directions = []
        for v in v_angles:
            for h in h_angles:
                if self.facing == "forward":
                    # Body frame: x forward, y left, z up.
                    direction = Vec3(
                        math.cos(v) * math.cos(h),
                        math.cos(v) * math.sin(h),
                        math.sin(v),
                    )
                else:
                    # Downward: z is the main axis, the grid fans around -z.
                    direction = Vec3(
                        math.sin(v),
                        math.cos(v) * math.sin(h),
                        -math.cos(v) * math.cos(h),
                    )
                directions.append(direction.normalized())
        return directions

    def capture(
        self,
        world: World,
        true_pose: Pose,
        estimated_pose: Pose | None = None,
        timestamp: float = 0.0,
        position_error: Vec3 | None = None,
    ) -> PointCloud:
        """Cast the ray grid from the drone's true pose.

        Args:
            world: the simulated world.
            true_pose: ground-truth pose used for ray casting.
            estimated_pose: the pose the mapping module believes; returned
                points are expressed relative to it, so state-estimation error
                shifts the whole cloud (this is how GPS drift corrupts the
                map, Fig. 5c/5d).
            timestamp: simulation time.
            position_error: explicit extra offset applied to the points
                (used by the real-world fault models).
        """
        estimated_pose = estimated_pose or true_pose
        estimation_offset = estimated_pose.position - true_pose.position
        if position_error is not None:
            estimation_offset = estimation_offset + position_error

        points: list[Vec3] = []
        weather = world.weather
        dropout = min(0.6, 0.25 * weather.precipitation)

        # All rays are rotated and cast in one numpy batch (no RNG involved);
        # the loop below only replays the per-ray RNG draws in the exact order
        # the scalar implementation used, so the random stream — and therefore
        # every campaign byte — is unchanged.
        dirs_world = _rotate_rays(true_pose.orientation, self._directions_body_arr)
        hits = world.raycast_batch(
            true_pose.position,
            dirs_world,
            self.spec.max_range,
            visible_only_from=true_pose.position,
        )

        position = true_pose.position
        min_range = self.spec.min_range
        if dropout > 0:
            # Dropout draws interleave with noise draws ray by ray, so the
            # stream order forces a scalar loop.
            for i in range(hits.shape[0]):
                if self._rng.random() < dropout:
                    continue
                hit = float(hits[i])
                if math.isnan(hit) or hit < min_range:
                    continue
                direction_world = Vec3(
                    float(dirs_world[i, 0]), float(dirs_world[i, 1]), float(dirs_world[i, 2])
                )
                noisy_range = hit + float(self._rng.normal(0.0, self.depth_noise_std))
                noisy_range = max(min_range, noisy_range)
                point = position + direction_world * noisy_range
                points.append(point + estimation_offset)
        else:
            # No dropout: only valid hits draw noise, in ray order, so one
            # array draw consumes the identical bit stream (numpy fills
            # arrays from the same sequential ziggurat samples).
            valid = np.nonzero(~np.isnan(hits) & (hits >= min_range))[0]
            if valid.size:
                noise = self._rng.normal(0.0, self.depth_noise_std, size=valid.size)
                ranges = np.maximum(min_range, hits[valid] + noise)
                px = position.x + dirs_world[valid, 0] * ranges + estimation_offset.x
                py = position.y + dirs_world[valid, 1] * ranges + estimation_offset.y
                pz = position.z + dirs_world[valid, 2] * ranges + estimation_offset.z
                points.extend(
                    Vec3(float(x), float(y), float(z)) for x, y, z in zip(px, py, pz)
                )

        points.extend(
            self._spurious_points(weather, estimated_pose)
        )
        return PointCloud(
            points=points,
            timestamp=timestamp,
            sensor_position=estimated_pose.position,
        )

    def capture_provably_empty(self, world: World, true_pose: Pose) -> bool:
        """True when :meth:`capture` would return no points and draw no RNG.

        Used by the mission fast path: a capture can be elided only when no
        ray can reach the ground or an obstacle within range, precipitation
        is zero (no dropout draws), and weather severity is below the
        spurious-point threshold (no Poisson draws).  Under those conditions
        the capture is a pure no-op and skipping it is byte-identical.
        """
        weather = world.weather
        if weather.precipitation > 0:
            return False
        if max(weather.precipitation, weather.gps_degradation) >= 0.5:
            return False
        altitude = true_pose.position.z - world.ground_altitude
        if self._max_descent * self.spec.max_range >= altitude:
            return False
        margin = self.spec.max_range + 1e-6
        return world.geometry().min_hazard_distance(true_pose.position) > margin

    def _spurious_points(self, weather, estimated_pose: Pose) -> list[Vec3]:
        """Phantom returns caused by rain speckle / severe GPS degradation."""
        severity = max(weather.precipitation, weather.gps_degradation)
        if severity < 0.5:
            return []
        count = int(self._rng.poisson(3.0 * (severity - 0.5)))
        spurious = []
        for _ in range(count):
            direction = Vec3(
                float(self._rng.normal()), float(self._rng.normal()), float(self._rng.normal())
            )
            try:
                direction = direction.normalized()
            except ValueError:
                continue
            distance = float(self._rng.uniform(1.0, self.spec.max_range * 0.5))
            spurious.append(estimated_pose.position + direction * distance)
        return spurious
