"""Simulated sensors.

Every sensor takes the ground-truth :class:`~repro.world.World` and the
ground-truth vehicle state and produces noisy measurements — the only data
the landing system ever sees.  This mirrors the real platform (downward D435i
colour stream, forward D435 depth stream, NEO-3 GPS, IMUs, TFMini
rangefinder).
"""

from repro.sensors.camera import CameraIntrinsics, DownwardCamera, CameraFrame
from repro.sensors.depth import DepthCamera, PointCloud
from repro.sensors.gps import GpsSensor, GpsFix
from repro.sensors.imu import ImuSensor, ImuSample
from repro.sensors.rangefinder import Rangefinder
from repro.sensors.barometer import Barometer

__all__ = [
    "CameraIntrinsics",
    "DownwardCamera",
    "CameraFrame",
    "DepthCamera",
    "PointCloud",
    "GpsSensor",
    "GpsFix",
    "ImuSensor",
    "ImuSample",
    "Rangefinder",
    "Barometer",
]
