"""Synthetic downward-facing colour camera.

The camera renders a grayscale image of the ground plane beneath the drone by
back-projecting every pixel ray onto the ground and sampling the marker
patterns (plus a procedural ground texture).  Weather effects — fog contrast
loss, sun glare, sensor noise — and marker occlusion are applied in image
space, so the detectors face the same degradations the paper describes
(high-altitude low resolution, partial occlusion, glare).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import Pose, Vec3
from repro.perception.aruco import ArucoDictionary, default_dictionary
from repro.world.markers import Marker
from repro.world.weather import Weather
from repro.world.world import World


@dataclass(frozen=True)
class CameraIntrinsics:
    """Pinhole intrinsics of the downward camera."""

    width: int = 128
    height: int = 128
    fov_degrees: float = 60.0

    @property
    def focal_length(self) -> float:
        """Focal length in pixels derived from the horizontal field of view."""
        return (self.width / 2.0) / math.tan(math.radians(self.fov_degrees) / 2.0)

    @property
    def cx(self) -> float:
        return (self.width - 1) / 2.0

    @property
    def cy(self) -> float:
        return (self.height - 1) / 2.0

    def ground_footprint_width(self, altitude: float) -> float:
        """Width (m) of the ground area seen from ``altitude`` when level."""
        return 2.0 * altitude * math.tan(math.radians(self.fov_degrees) / 2.0)

    def pixels_per_meter(self, altitude: float) -> float:
        """Approximate image resolution of the ground at ``altitude``."""
        footprint = self.ground_footprint_width(max(altitude, 1e-3))
        return self.width / footprint


@dataclass
class CameraFrame:
    """A rendered camera frame plus the metadata detectors need.

    Attributes:
        image: ``(height, width)`` grayscale image in [0, 1].
        camera_pose: the *estimated* pose used for back-projection of
            detections into world coordinates (the true pose is used for
            rendering, the estimated pose for interpretation — exactly the
            information asymmetry the real system has).
        intrinsics: the camera model.
        timestamp: simulation time of capture.
        visible_markers: ground-truth list of markers whose centres fall in
            the field of view (used only by the evaluation harness to score
            false negatives, never by the landing system itself).
    """

    image: np.ndarray
    camera_pose: Pose
    intrinsics: CameraIntrinsics
    timestamp: float
    visible_markers: list[Marker] = field(default_factory=list)

    def pixel_to_ground(self, row: float, col: float) -> Vec3:
        """Back-project a pixel onto the ground plane using ``camera_pose``."""
        intr = self.intrinsics
        direction_cam = Vec3(
            (col - intr.cx) / intr.focal_length,
            (row - intr.cy) / intr.focal_length,
            -1.0,
        )
        direction_world = self.camera_pose.orientation.rotate(direction_cam)
        origin = self.camera_pose.position
        if direction_world.z >= -1e-6:
            # Degenerate: camera not looking down at all; project straight down.
            return origin.with_z(0.0)
        t = -origin.z / direction_world.z
        hit = origin + direction_world * t
        return hit.with_z(0.0)

    def ground_to_pixel(self, point: Vec3) -> tuple[float, float] | None:
        """Project a ground point into the image; ``None`` if behind the camera."""
        intr = self.intrinsics
        relative = self.camera_pose.inverse_transform_point(point)
        if relative.z >= -1e-6:
            return None
        col = intr.cx + intr.focal_length * (relative.x / -relative.z)
        row = intr.cy + intr.focal_length * (relative.y / -relative.z)
        return row, col


class DownwardCamera:
    """Renders synthetic downward images of the world.

    Args:
        intrinsics: camera model; the default 128x128 / 60 degree camera gives
            roughly 2 pixels per marker cell at 8 m altitude — the regime
            where the classical detector starts to struggle — and comfortable
            resolution below 5 m.
        dictionary: the fiducial dictionary to render markers from.
        seed: seed for the per-frame noise.
    """

    def __init__(
        self,
        intrinsics: CameraIntrinsics | None = None,
        dictionary: ArucoDictionary | None = None,
        seed: int = 0,
    ) -> None:
        self.intrinsics = intrinsics or CameraIntrinsics()
        self.dictionary = dictionary or default_dictionary()
        self._rng = np.random.default_rng(seed)
        self._frame_count = 0

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def capture(
        self,
        world: World,
        true_pose: Pose,
        estimated_pose: Pose | None = None,
        timestamp: float = 0.0,
    ) -> CameraFrame:
        """Render a frame from the drone's true pose.

        Args:
            world: the simulated world (markers, weather).
            true_pose: ground-truth camera pose used for rendering.
            estimated_pose: the state estimator's pose, attached to the frame
                for back-projection; defaults to the true pose.
            timestamp: simulation time.
        """
        self._frame_count += 1
        intr = self.intrinsics
        weather = world.weather

        # Pixel rays in the camera frame (camera looks along -z of its frame,
        # which is straight down when the drone is level); invariant per
        # intrinsics, so computed once and cached process-wide.
        dirs_cam = _pixel_ray_grid(intr)
        rotation = true_pose.orientation.rotation_matrix()
        dirs_world = dirs_cam @ rotation.T
        origin = true_pose.position.to_array()

        dz = dirs_world[..., 2]
        dz = np.where(np.abs(dz) < 1e-9, -1e-9, dz)
        t = (world.ground_altitude - origin[2]) / dz
        t = np.where(t <= 0, np.nan, t)
        ground_x = origin[0] + dirs_world[..., 0] * t
        ground_y = origin[1] + dirs_world[..., 1] * t

        image = self._ground_texture(ground_x, ground_y)

        # Analytic footprint bound for marker culling: every ground hit lies
        # within altitude * tan(tilt + corner FOV) of the nadir point, so
        # markers entirely beyond that radius rasterise zero pixels and the
        # per-pixel containment test can be skipped outright.
        reach = None
        altitude = origin[2] - world.ground_altitude
        if altitude > 0.0:
            cos_tilt = min(1.0, max(-1.0, float(rotation[2][2])))
            view_cone = math.acos(cos_tilt) + self.max_view_angle()
            if view_cone < _MAX_CULL_VIEW_CONE:
                reach = altitude * math.tan(view_cone)

        visible: list[Marker] = []
        for marker in world.markers:
            if reach is not None:
                dx = marker.position.x - origin[0]
                dy = marker.position.y - origin[1]
                footprint = (marker.size / 2.0) * math.sqrt(2.0) + _CULL_MARGIN
                if dx * dx + dy * dy > (reach + footprint) ** 2:
                    continue
            drawn = self._draw_marker(image, ground_x, ground_y, marker, weather)
            if drawn:
                visible.append(marker)

        # Obstacle shadows / rooftops: pixels whose ray hits an obstacle before
        # the ground show the obstacle top instead of the marker.
        image = self._mask_obstacle_pixels(
            image, world, origin, dirs_world, t, ground_x, ground_y
        )

        image = self._apply_weather(image, weather)
        image = np.clip(image, 0.0, 1.0)

        return CameraFrame(
            image=image,
            camera_pose=estimated_pose or true_pose,
            intrinsics=intr,
            timestamp=timestamp,
            visible_markers=visible,
        )

    # ------------------------------------------------------------------ #
    # internal rendering helpers
    # ------------------------------------------------------------------ #
    def _ground_texture(self, ground_x: np.ndarray, ground_y: np.ndarray) -> np.ndarray:
        """A cheap deterministic pseudo-texture for the ground."""
        base = 0.45 + 0.06 * np.sin(ground_x * 0.9) * np.cos(ground_y * 1.1)
        base += 0.04 * np.sin(ground_x * 0.23 + ground_y * 0.31)
        return np.where(np.isnan(ground_x), 0.2, base)

    def _draw_marker(
        self,
        image: np.ndarray,
        ground_x: np.ndarray,
        ground_y: np.ndarray,
        marker: Marker,
        weather: Weather,
    ) -> bool:
        """Rasterise one marker into the image; returns True if any pixel hit."""
        cos_y, sin_y = math.cos(-marker.yaw), math.sin(-marker.yaw)
        dx = ground_x - marker.position.x
        dy = ground_y - marker.position.y
        local_x = cos_y * dx - sin_y * dy
        local_y = sin_y * dx + cos_y * dy
        half = marker.size / 2.0
        inside = (
            (np.abs(local_x) <= half)
            & (np.abs(local_y) <= half)
            & ~np.isnan(ground_x)
        )
        if not np.any(inside):
            return False

        u = (local_x[inside] + half) / marker.size
        v = (local_y[inside] + half) / marker.size
        values = self.dictionary.sample_at(marker.marker_id, u, v)
        # Map bits to realistic paper/paint reflectances.
        values = np.where(values > 0.5, 0.92, 0.08)

        if marker.occlusion > 0:
            # A band across the marker is covered (shadow or debris): those
            # pixels take a mid-gray value that destroys the bit pattern.
            occluded = u < marker.occlusion
            values = np.where(occluded, 0.45, values)

        image[inside] = values
        return True

    def _mask_obstacle_pixels(
        self,
        image: np.ndarray,
        world: World,
        origin: np.ndarray,
        dirs_world: np.ndarray,
        t_ground: np.ndarray,
        ground_x: np.ndarray,
        ground_y: np.ndarray,
    ) -> np.ndarray:
        """Replace pixels whose ray hits an obstacle before the ground.

        Obstacles are pre-culled against the hull box of the view frustum
        (camera origin plus every ground hit): when all pixel rays reach the
        ground, a blocking hit must lie on one of those segments, so any
        obstacle outside the hull cannot affect a pixel.  Survivors get the
        vectorised slab test; all block masks are OR-combined and applied in
        one pass, which matches the sequential per-obstacle writes exactly
        (every blocked pixel takes the same constant).
        """
        geometry = world.geometry()
        if not geometry.hazards:
            return image
        camera_height = origin[2]
        nan_ground = np.isnan(t_ground)
        if not nan_ground.any():
            ground_alt = world.ground_altitude
            hull_lo = np.array(
                [
                    min(origin[0], float(ground_x.min())),
                    min(origin[1], float(ground_y.min())),
                    min(camera_height, ground_alt),
                ]
            )
            hull_hi = np.array(
                [
                    max(origin[0], float(ground_x.max())),
                    max(origin[1], float(ground_y.max())),
                    max(camera_height, ground_alt),
                ]
            )
            indices = geometry.hull_obstacle_indices(hull_lo, hull_hi, camera_height)
            candidates = [geometry.hazards[i] for i in indices]
        else:
            # Some rays never reach the ground; they can be blocked at any
            # distance, so no spatial cull is sound.
            candidates = [
                o for o in geometry.hazards if o.bounds.minimum.z < camera_height
            ]

        blocked = None
        for obstacle in candidates:
            t_hit = _vectorised_aabb_hit(origin, dirs_world, obstacle.bounds)
            blocks = (~np.isnan(t_hit)) & (nan_ground | (t_hit < t_ground))
            blocked = blocks if blocked is None else (blocked | blocks)
        if blocked is not None and blocked.any():
            # Rooftop / canopy intensity: darker than ground, no pattern.
            image = np.where(blocked, 0.3, image)
        return image

    def _apply_weather(self, image: np.ndarray, weather: Weather) -> np.ndarray:
        """Fog contrast loss, sun glare and sensor noise."""
        image = 0.5 + (image - 0.5) * weather.visibility

        if weather.glare > 0:
            h, w = image.shape
            glare_row = self._rng.uniform(0, h)
            glare_col = self._rng.uniform(0, w)
            radius = weather.glare * 0.45 * min(h, w)
            rows, cols = _glare_grid(h, w)
            distance = np.sqrt((rows - glare_row) ** 2 + (cols - glare_col) ** 2)
            glare_mask = np.clip(1.0 - distance / max(radius, 1e-6), 0.0, 1.0)
            image = image + glare_mask * weather.glare * 0.9

        if weather.image_noise > 0:
            image = image + self._rng.normal(0.0, weather.image_noise, size=image.shape)
        return image

    # ------------------------------------------------------------------ #
    # fast-path support
    # ------------------------------------------------------------------ #
    def consume_skipped_frame_rng(self, world: World) -> None:
        """Advance the per-frame RNG exactly as :meth:`capture` would.

        The mission fast path elides rendering on frames proven to contain
        nothing but ground texture; the weather draws still have to happen
        (in the same order, with the same shapes) so that later frames see
        an identical random stream.
        """
        self._frame_count += 1
        weather = world.weather
        if weather.glare > 0:
            self._rng.uniform(0, self.intrinsics.height)
            self._rng.uniform(0, self.intrinsics.width)
        if weather.image_noise > 0:
            self._rng.normal(
                0.0,
                weather.image_noise,
                size=(self.intrinsics.height, self.intrinsics.width),
            )

    def max_view_angle(self) -> float:
        """Largest angle (rad) between any pixel ray and the optical axis."""
        intr = self.intrinsics
        corner = math.sqrt(intr.cx**2 + intr.cy**2) / intr.focal_length
        return math.atan(corner)


#: Widest view cone (tilt + corner FOV, radians) the render-time marker cull
#: reasons about; beyond this the footprint bound approaches the horizon and
#: every marker is rasterised normally.
_MAX_CULL_VIEW_CONE = math.radians(85.0)
#: Slack (m) added to the cull radius; dwarfs any float rounding in the bound.
_CULL_MARGIN = 0.25

_PIXEL_GRID_CACHE: dict[CameraIntrinsics, np.ndarray] = {}
_GLARE_GRID_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _pixel_ray_grid(intr: CameraIntrinsics) -> np.ndarray:
    """Cached ``(H, W, 3)`` camera-frame ray directions for one intrinsics."""
    cached = _PIXEL_GRID_CACHE.get(intr)
    if cached is None:
        rows, cols = np.meshgrid(
            np.arange(intr.height, dtype=float),
            np.arange(intr.width, dtype=float),
            indexing="ij",
        )
        cached = np.stack(
            [
                (cols - intr.cx) / intr.focal_length,
                (rows - intr.cy) / intr.focal_length,
                -np.ones_like(rows),
            ],
            axis=-1,
        )
        cached.setflags(write=False)
        _PIXEL_GRID_CACHE[intr] = cached
    return cached


def _glare_grid(h: int, w: int) -> tuple[np.ndarray, np.ndarray]:
    """Cached integer meshgrid used by the glare falloff."""
    cached = _GLARE_GRID_CACHE.get((h, w))
    if cached is None:
        rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        rows.setflags(write=False)
        cols.setflags(write=False)
        cached = (rows, cols)
        _GLARE_GRID_CACHE[(h, w)] = cached
    return cached


def _vectorised_aabb_hit(
    origin: np.ndarray, directions: np.ndarray, box
) -> np.ndarray:
    """Slab-test every ray in ``directions`` against one AABB.

    Returns the hit distance per ray, NaN where there is no hit.  ``fmax`` /
    ``fmin`` chains give the same NaN-ignoring fold as ``nanmax`` / ``nanmin``
    along the axis at a fraction of the cost.
    """
    lo = np.array([box.minimum.x, box.minimum.y, box.minimum.z])
    hi = np.array([box.maximum.x, box.maximum.y, box.maximum.z])
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / directions
        t1 = (lo - origin) * inv
        t2 = (hi - origin) * inv
    near = np.minimum(t1, t2)
    far = np.maximum(t1, t2)
    t_near = np.fmax(np.fmax(near[..., 0], near[..., 1]), near[..., 2])
    t_far = np.fmin(np.fmin(far[..., 0], far[..., 1]), far[..., 2])
    hit = (t_far >= np.maximum(t_near, 0.0))
    result = np.where(hit, np.maximum(t_near, 0.0), np.nan)
    return result
