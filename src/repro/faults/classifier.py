"""Failure-mode taxonomy: classify what a run *meant*, not just its outcome.

The paper's three outcome columns (success / collision / poor landing) say
what happened; a dependability analysis also needs to know whether the
system *noticed* trouble and failed safe.  This module maps every
:class:`~repro.core.metrics.RunRecord` onto the five-way taxonomy

==================  ====================================================
mode                meaning
==================  ====================================================
``nominal``         clean success: no fault felt, no aborts, no fallbacks
``degraded-success``  landed on the pad despite injected faults or aborts
``safe-failsafe``   the run ended airborne and intact: failsafe return,
                    search/validation give-up, or mission timeout
``unsafe-landing``  touched down, but off the pad or on invalid ground
``crash``           collided with an obstacle
==================  ====================================================

Classification reads only the record (outcome, failsafe fields, counters
and persisted fault metadata), so it works identically on live results and
JSONL loaded from disk — including schema-1 files written before these
fields existed.
"""

from __future__ import annotations

import enum

from repro.core.metrics import RunOutcome, RunRecord


class FailureMode(enum.Enum):
    """The five-way dependability classification of one run."""

    NOMINAL = "nominal"
    DEGRADED_SUCCESS = "degraded-success"
    SAFE_FAILSAFE = "safe-failsafe"
    UNSAFE_LANDING = "unsafe-landing"
    CRASH = "crash"


#: Stable rendering order for reports (best to worst).
FAILURE_MODE_ORDER: tuple[str, ...] = tuple(mode.value for mode in FailureMode)


def activated_faults(record: RunRecord) -> list[dict]:
    """The injected-fault entries that actually became active during a run."""
    return [fault for fault in record.injected_faults if fault.get("activated")]


def classify_record(record: RunRecord) -> FailureMode:
    """Map one run record onto the failure-mode taxonomy.

    ``crash`` and ``unsafe-landing`` are ground-truth judgements the mission
    runner already made (collision monitoring, landing-point validity);
    the nominal/degraded split additionally looks at whether the system was
    stressed — injected faults that activated, aborts, planner failures —
    on its way to success.
    """
    if record.collided or record.outcome is RunOutcome.COLLISION:
        return FailureMode.CRASH
    if record.outcome is RunOutcome.SUCCESS:
        stressed = (
            bool(activated_faults(record))
            or record.aborts > 0
            or record.planner_failures > 0
        )
        return FailureMode.DEGRADED_SUCCESS if stressed else FailureMode.NOMINAL
    # Outcome is POOR_LANDING: the paper's catch-all. Split it on whether
    # the vehicle actually touched down somewhere it should not have.
    if record.landed:
        return FailureMode.UNSAFE_LANDING
    return FailureMode.SAFE_FAILSAFE


def failure_mode_label(record: RunRecord) -> str:
    """The persisted failure mode, or the on-the-fly classification.

    Records written by a fault-aware mission runner carry ``failure_mode``;
    older files (schema 1) are classified from their other fields.
    """
    return record.failure_mode or classify_record(record).value


class FailureClassifier:
    """Streaming failure-mode counter over a record stream."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {mode: 0 for mode in FAILURE_MODE_ORDER}
        self.total = 0

    def add(self, record: RunRecord) -> FailureMode:
        mode = FailureMode(failure_mode_label(record))
        self.counts[mode.value] += 1
        self.total += 1
        return mode

    def share(self, mode: str) -> float:
        return self.counts[mode] / self.total if self.total else 0.0
