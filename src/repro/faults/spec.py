"""Fault specifications: the failure-mode taxonomy and its file format.

A :class:`FaultSpec` names one *injection point* (a target component and a
fault mode drawn from :data:`FAULT_MODES`), an *activation schedule* (a time
window, an altitude trigger, a per-run arming probability, or any
combination) and a *severity* in ``[0, 1]`` scaling the magnitude of the
perturbation.  Specs are frozen, picklable and JSON round-trippable, which
is what lets them ride inside :class:`~repro.bench.campaign.CampaignJob`
objects, :class:`~repro.world.scenario_gen.SuiteSpec` files and dispatch
plans unchanged.

Determinism contract: every random draw an injected fault makes comes from
its own ``default_rng`` stream seeded by
``sha256(scenario.fingerprint() : repetition : spec_hash)`` (see
:func:`fault_run_seed`).  The stream depends only on *what* is being flown
— never on wall clock, process id or execution order — so byte-identical
reruns, ``.parallel()`` campaigns and dispatch shards all agree on exactly
which faults fire when.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.jsonl import sha16_of_json as _sha

#: Injection points: every target component and the fault modes it supports.
#: The implementation of each mode lives in :mod:`repro.faults.harness`.
FAULT_MODES: dict[str, tuple[str, ...]] = {
    "camera": ("dropout", "freeze", "bias", "noise-burst"),
    "depth": ("dropout", "freeze", "bias", "noise-burst"),
    "perception": ("missed-detection", "phantom-detection", "latency-spike"),
    "mapping": ("cell-corruption",),
    "planning": ("timeout", "infeasible"),
    "vehicle": ("ekf-reset", "command-delay"),
}

#: One-line description of each target, for ``python -m repro.faults list``.
TARGET_DESCRIPTIONS: dict[str, str] = {
    "camera": "downward camera frames before marker detection",
    "depth": "depth point clouds before occupancy-map fusion",
    "perception": "the detector's output (wrapped component)",
    "mapping": "occupancy-map contents (phantom cell corruption)",
    "planning": "the planner's output (wrapped component)",
    "vehicle": "the EKF state estimate and the command stream",
}

#: One-line description of each (target, mode) pair.
MODE_DESCRIPTIONS: dict[tuple[str, str], str] = {
    ("camera", "dropout"): "frames are lost: the system sees no image this tick",
    ("camera", "freeze"): "the last pre-fault frame is re-delivered (stale timestamp)",
    ("camera", "bias"): "back-projection pose is offset: detections land displaced",
    ("camera", "noise-burst"): "heavy additive pixel noise on top of the weather",
    ("depth", "dropout"): "point clouds are lost: the map stops updating",
    ("depth", "freeze"): "a stale cloud is re-fused every cycle",
    ("depth", "bias"): "every point is shifted by a fixed offset",
    ("depth", "noise-burst"): "per-point jitter speckles the occupancy map",
    ("perception", "missed-detection"): "true detections are randomly suppressed",
    ("perception", "phantom-detection"): "spurious detections are injected",
    ("perception", "latency-spike"): "detection latency spikes (HIL deadline pressure)",
    ("mapping", "cell-corruption"): "phantom occupied cells appear near the vehicle",
    ("planning", "timeout"): "planning attempts exhaust their budget and fail",
    ("planning", "infeasible"): "the planner reports no path where one exists",
    ("vehicle", "ekf-reset"): "the state estimate jumps and re-converges",
    ("vehicle", "command-delay"): "flight commands reach the autopilot ticks late",
}


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault: injection point, activation schedule, severity.

    Attributes:
        target: injection point, a key of :data:`FAULT_MODES`.
        mode: fault mode, one of ``FAULT_MODES[target]``.
        severity: magnitude scale in ``[0, 1]``.
        start: activation-window start, seconds of mission time; ``None``
            draws the start per run from the fault's own RNG stream
            (uniform in [10, 120] s).
        duration: activation-window length in seconds; ``None`` keeps the
            fault active until the mission ends.
        below_altitude: when set, the fault is additionally gated on the
            *estimated* altitude being at or below this value (the harness
            never reads ground truth).
        probability: per-run arming probability; an unarmed fault never
            activates and is reported as such in the run's fault metadata.
        name: label used in reports and slicing; defaults to
            ``"{target}-{mode}"``.
    """

    target: str
    mode: str
    severity: float = 0.5
    start: float | None = 20.0
    duration: float | None = 40.0
    below_altitude: float | None = None
    probability: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.target not in FAULT_MODES:
            raise ValueError(
                f"unknown fault target {self.target!r}; expected one of "
                f"{sorted(FAULT_MODES)}"
            )
        if self.mode not in FAULT_MODES[self.target]:
            raise ValueError(
                f"unknown {self.target} fault mode {self.mode!r}; expected one "
                f"of {list(FAULT_MODES[self.target])}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.start is not None and self.start < 0:
            raise ValueError("start must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.name:
            object.__setattr__(self, "name", f"{self.target}-{self.mode}")

    # ------------------------------------------------------------------ #
    def spec_hash(self) -> str:
        """16-hex-char content hash of this spec (part of the RNG seed)."""
        return _sha(self.to_dict())

    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible dict representation (exact round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a partial dict)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown FaultSpec keys: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


def faults_fingerprint(specs: Iterable[FaultSpec]) -> str:
    """Content hash of an ordered fault-spec list (order-sensitive)."""
    return _sha([spec.to_dict() for spec in specs])


def ensure_unique_names(specs: Iterable[FaultSpec]) -> tuple[FaultSpec, ...]:
    """Validate that every spec in a fault plan carries a distinct name.

    Coverage accounting and the ``fault`` slicing factor key by name, so two
    specs sharing one (e.g. a severity sweep of the same target+mode relying
    on the auto-generated default) would silently conflate their counters —
    name them explicitly instead (``FaultSpec(..., name="dropout-mild")``).
    """
    specs = tuple(specs)
    names = [spec.name for spec in specs]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate fault names {duplicates}: give each spec a distinct "
            f"name (FaultSpec(..., name=...)) so coverage rows and fault "
            f"slices stay per-spec"
        )
    return specs


def fault_run_seed(spec: FaultSpec, scenario_fingerprint: str, repetition: int) -> list[int]:
    """The RNG seed words for one (fault spec, scenario, repetition) triple.

    Derived from content hashes only, so every execution mode — in-process,
    ``.parallel()`` worker pools, dispatch shards on other machines — draws
    the identical stream for the same run.
    """
    digest = hashlib.sha256(
        f"{scenario_fingerprint}:{repetition}:{spec.spec_hash()}".encode("utf-8")
    ).digest()
    return [int.from_bytes(digest[i : i + 4], "big") for i in range(0, 16, 4)]


def fault_rng(spec: FaultSpec, scenario_fingerprint: str, repetition: int) -> np.random.Generator:
    """A fresh deterministic generator for one fault in one run."""
    return np.random.default_rng(fault_run_seed(spec, scenario_fingerprint, repetition))


# ---------------------------------------------------------------------- #
# presets and the fault-plan file format
# ---------------------------------------------------------------------- #
def _full_preset() -> tuple[FaultSpec, ...]:
    """Every registered (target, mode) pair once, staggered in time."""
    specs: list[FaultSpec] = []
    start = 15.0
    for target in sorted(FAULT_MODES):
        for mode in FAULT_MODES[target]:
            specs.append(
                FaultSpec(target=target, mode=mode, severity=0.6, start=start, duration=30.0)
            )
            start += 7.0
    return tuple(specs)


#: Named fault-plan presets accepted by ``Campaign.faults(...)`` and the CLI.
FAULT_PRESETS: dict[str, tuple[FaultSpec, ...]] = {
    "smoke": (
        FaultSpec(target="camera", mode="freeze", severity=0.8, start=25.0, duration=20.0),
        FaultSpec(target="planning", mode="timeout", severity=0.7, start=40.0, duration=30.0),
        FaultSpec(target="vehicle", mode="ekf-reset", severity=0.5, start=70.0, duration=25.0),
    ),
    "sensor": (
        FaultSpec(target="camera", mode="dropout", severity=0.7, start=20.0, duration=25.0),
        FaultSpec(target="camera", mode="noise-burst", severity=0.6, start=50.0, duration=25.0),
        FaultSpec(target="depth", mode="dropout", severity=0.7, start=30.0, duration=30.0),
        FaultSpec(target="depth", mode="bias", severity=0.5, start=65.0, duration=30.0),
    ),
    "perception": (
        FaultSpec(target="perception", mode="missed-detection", severity=0.7, start=20.0, duration=40.0),
        FaultSpec(target="perception", mode="phantom-detection", severity=0.5, start=35.0, duration=40.0),
        FaultSpec(target="perception", mode="latency-spike", severity=0.8, start=20.0, duration=60.0),
    ),
    "autonomy": (
        FaultSpec(target="mapping", mode="cell-corruption", severity=0.6, start=25.0, duration=35.0),
        FaultSpec(target="planning", mode="timeout", severity=0.7, start=30.0, duration=30.0),
        FaultSpec(target="planning", mode="infeasible", severity=0.6, start=70.0, duration=25.0),
    ),
    "vehicle": (
        FaultSpec(target="vehicle", mode="ekf-reset", severity=0.7, start=25.0, duration=30.0),
        FaultSpec(target="vehicle", mode="command-delay", severity=0.6, start=60.0, duration=30.0),
    ),
    "full": _full_preset(),
}


def resolve_faults(source: Any) -> tuple[FaultSpec, ...]:
    """Coerce any supported fault source into a tuple of specs.

    Accepts a :class:`FaultSpec`, a preset name, a path to a fault-plan JSON
    file (a list of spec dicts, or ``{"faults": [...]}``), a dict (one spec),
    or an iterable mixing any of these.  Strings are treated as file paths
    when they look like one (exist, end in ``.json``, or contain a path
    separator) and as preset names otherwise.
    """
    if source is None:
        return ()
    if isinstance(source, FaultSpec):
        return (source,)
    if isinstance(source, dict):
        return (FaultSpec.from_dict(source),)
    if isinstance(source, Path):
        return load_fault_plan(source)
    if isinstance(source, str):
        key = source.strip().lower()
        explicitly_path = (
            source.endswith(".json") or "/" in source or "\\" in source
        )
        # Preset names win unless the string is explicitly path-shaped, so a
        # stray file or directory that happens to be called "smoke" cannot
        # shadow the preset.
        if not explicitly_path and key in FAULT_PRESETS:
            return FAULT_PRESETS[key]
        if explicitly_path or Path(source).is_file():
            return load_fault_plan(source)
        raise ValueError(
            f"unknown fault preset {source!r}; expected one of "
            f"{sorted(FAULT_PRESETS)} or a fault-plan JSON file"
        )
    if isinstance(source, Iterable):
        specs: list[FaultSpec] = []
        for item in source:
            specs.extend(resolve_faults(item))
        return tuple(specs)
    raise TypeError(
        f"unsupported fault source {type(source).__name__}; expected a "
        f"FaultSpec, preset name, fault-plan JSON path or iterable of those"
    )


def load_fault_plan(path: str | Path) -> tuple[FaultSpec, ...]:
    """Load a fault-plan JSON file written by :func:`dump_fault_plan`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = data.get("faults", data)
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: a fault plan is a JSON list of FaultSpec objects "
            f"(or {{'faults': [...]}}), got {type(data).__name__}"
        )
    return tuple(FaultSpec.from_dict(item) for item in data)


def dump_fault_plan(specs: Iterable[FaultSpec], path: str | Path) -> Path:
    """Write specs as a fault-plan JSON file (the ``--faults`` file format)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"faults": [spec.to_dict() for spec in specs]}
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return path
