"""Deterministic fault injection and failure-mode analysis.

The fault axis multiplies the scenario space: every campaign the repo can
already run — serial, ``.parallel()``, sharded ``dispatch`` — can also run
with component-level faults injected at the sensor→system and
system→autopilot boundaries, and every persisted record then carries what
was injected and how the run classified.

Quickstart::

    from repro import Campaign, FaultSpec, mls_v3

    results = (
        Campaign(mls_v3())
        .suite("smoke")
        .faults("sensor", FaultSpec(target="planning", mode="timeout"))
        .run()
    )

    from repro.faults import accumulate_coverage, render_coverage_report
    report = render_coverage_report(
        accumulate_coverage(r for c in results.values() for r in c.records)
    )

CLI: ``python -m repro.faults`` (``list`` / ``describe`` / ``run`` /
``coverage``).
"""

from repro.faults.classifier import (
    FAILURE_MODE_ORDER,
    FailureClassifier,
    FailureMode,
    classify_record,
    failure_mode_label,
)
from repro.faults.spec import (
    FAULT_MODES,
    FAULT_PRESETS,
    FaultSpec,
    dump_fault_plan,
    fault_rng,
    fault_run_seed,
    faults_fingerprint,
    load_fault_plan,
    resolve_faults,
)

#: Names served lazily (PEP 562): the harness and coverage modules import
#: the perception/planning/bench stacks, which themselves import
#: ``repro.world`` → :mod:`repro.faults.spec` — eager imports here would
#: close that cycle.  Specs and the classifier stay eager (they only need
#: numpy and ``repro.core.metrics``).
_LAZY_EXPORTS = {
    "FaultHarness": ("repro.faults.harness", "FaultHarness"),
    "FaultyDetector": ("repro.faults.harness", "FaultyDetector"),
    "FaultyPlanner": ("repro.faults.harness", "FaultyPlanner"),
    "CoverageReport": ("repro.faults.coverage", "CoverageReport"),
    "FaultCoverage": ("repro.faults.coverage", "FaultCoverage"),
    "accumulate_coverage": ("repro.faults.coverage", "accumulate_coverage"),
    "render_coverage_report": ("repro.faults.coverage", "render_coverage_report"),
    "render_coverage_section": ("repro.faults.coverage", "render_coverage_section"),
    # Fault-space search engine (sweeps + severity bisection); lazy for the
    # same reason as the harness: the backends pull in the dispatch/bench
    # stacks.
    "DispatchProbeBackend": ("repro.faults.search", "DispatchProbeBackend"),
    "ServiceProbeBackend": ("repro.faults.search", "ServiceProbeBackend"),
    "Probe": ("repro.faults.search", "Probe"),
    "CurvePoint": ("repro.faults.search", "CurvePoint"),
    "BisectionResult": ("repro.faults.search", "BisectionResult"),
    "bisect_severity": ("repro.faults.search", "bisect_severity"),
    "run_sweep": ("repro.faults.search", "run_sweep"),
    "severity_ladder": ("repro.faults.search", "severity_ladder"),
}


def __getattr__(name: str):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))

__all__ = [
    "FAILURE_MODE_ORDER",
    "FAULT_MODES",
    "FAULT_PRESETS",
    "BisectionResult",
    "CoverageReport",
    "CurvePoint",
    "DispatchProbeBackend",
    "Probe",
    "ServiceProbeBackend",
    "FailureClassifier",
    "FailureMode",
    "FaultCoverage",
    "FaultHarness",
    "FaultSpec",
    "FaultyDetector",
    "FaultyPlanner",
    "accumulate_coverage",
    "bisect_severity",
    "classify_record",
    "dump_fault_plan",
    "failure_mode_label",
    "fault_rng",
    "fault_run_seed",
    "faults_fingerprint",
    "load_fault_plan",
    "render_coverage_report",
    "render_coverage_section",
    "resolve_faults",
    "run_sweep",
    "severity_ladder",
]
