"""Fault-coverage accounting: did the system notice, absorb, or escape?

Coverage is computed per fault spec (by name) over the runs in which the
fault actually *activated*:

* **detected** — the run ended in a failsafe (``safe-failsafe``): the system
  noticed trouble and aborted safely;
* **absorbed** — the run still landed on the pad (``nominal`` /
  ``degraded-success``): the architecture tolerated the fault;
* **escaped** — the fault propagated to a ``crash`` or ``unsafe-landing``.

``coverage = (detected + absorbed) / activated`` — the fraction of injected
faults that were either detected or safely absorbed, the quantity the DSN
dependability analysis cares about.  Runs where a fault armed but never met
its activation window are excluded from the denominator (nothing was
injected), but reported so sweeps can see dead schedules.

Everything here streams: records are folded one at a time, so persisted
campaigns of any size work, and the rendered markdown is a pure function of
the accumulated counts (byte-stable for CI baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.bench.tables import format_markdown_table, format_percent
from repro.core.metrics import RunRecord
from repro.faults.classifier import (
    FAILURE_MODE_ORDER,
    FailureMode,
    failure_mode_label,
)

#: Failure modes counted as "the system noticed and failed safe".
DETECTED_MODES = frozenset({FailureMode.SAFE_FAILSAFE.value})
#: Failure modes counted as "the fault was tolerated".
ABSORBED_MODES = frozenset({FailureMode.NOMINAL.value, FailureMode.DEGRADED_SUCCESS.value})
#: Failure modes counted as "the fault escaped containment".
ESCAPED_MODES = frozenset({FailureMode.UNSAFE_LANDING.value, FailureMode.CRASH.value})


@dataclass
class FaultCoverage:
    """Streaming counters for one fault spec (keyed by its name)."""

    name: str
    target: str = ""
    mode: str = ""
    runs: int = 0
    armed: int = 0
    activated: int = 0
    detected: int = 0
    absorbed: int = 0
    escaped: int = 0
    failure_modes: dict[str, int] = field(
        default_factory=lambda: {mode: 0 for mode in FAILURE_MODE_ORDER}
    )

    @property
    def covered(self) -> int:
        return self.detected + self.absorbed

    @property
    def coverage(self) -> float:
        """Fraction of activated injections detected or safely absorbed."""
        return self.covered / self.activated if self.activated else float("nan")


@dataclass
class CoverageReport:
    """Campaign-wide fault-coverage accumulation."""

    faults: dict[str, FaultCoverage] = field(default_factory=dict)
    failure_modes: dict[str, int] = field(
        default_factory=lambda: {mode: 0 for mode in FAILURE_MODE_ORDER}
    )
    total_runs: int = 0
    fault_runs: int = 0

    def add(self, record: RunRecord) -> None:
        """Fold one run record into the counters."""
        self.total_runs += 1
        label = failure_mode_label(record)
        self.failure_modes[label] = self.failure_modes.get(label, 0) + 1
        if record.injected_faults:
            self.fault_runs += 1
        for entry in record.injected_faults:
            coverage = self._coverage_for(entry)
            coverage.runs += 1
            if entry.get("armed"):
                coverage.armed += 1
            if not entry.get("activated"):
                continue
            coverage.activated += 1
            coverage.failure_modes[label] = coverage.failure_modes.get(label, 0) + 1
            if label in DETECTED_MODES:
                coverage.detected += 1
            elif label in ABSORBED_MODES:
                coverage.absorbed += 1
            elif label in ESCAPED_MODES:
                coverage.escaped += 1

    def _coverage_for(self, entry: Mapping[str, Any]) -> FaultCoverage:
        name = str(entry.get("name", "(unnamed)"))
        coverage = self.faults.get(name)
        if coverage is None:
            coverage = self.faults[name] = FaultCoverage(
                name=name,
                target=str(entry.get("target", "")),
                mode=str(entry.get("mode", "")),
            )
        return coverage

    @property
    def overall_coverage(self) -> float:
        activated = sum(c.activated for c in self.faults.values())
        covered = sum(c.covered for c in self.faults.values())
        return covered / activated if activated else float("nan")


def accumulate_coverage(records: Iterable[RunRecord]) -> CoverageReport:
    """Fold a record stream into a :class:`CoverageReport`."""
    report = CoverageReport()
    for record in records:
        report.add(record)
    return report


#: Backwards-compatible alias; the shared formatter lives in bench.tables so
#: the sweep-curve renderers round identically to the coverage report.
_percent = format_percent


def render_coverage_section(report: CoverageReport) -> str:
    """The fault-coverage markdown section (shared by CLI and analysis)."""
    lines: list[str] = []
    lines.append(
        f"- records: {report.total_runs} runs, {report.fault_runs} with "
        f"injected faults, {len(report.faults)} fault spec(s)"
    )
    lines.append(f"- overall fault coverage: {_percent(report.overall_coverage)}")
    lines.append("")

    lines.append("### Coverage by fault")
    lines.append("")
    headers = [
        "Fault", "Target", "Mode", "Runs", "Armed", "Activated",
        "Detected", "Absorbed", "Escaped", "Coverage",
    ]
    rows = []
    for name in sorted(report.faults):
        coverage = report.faults[name]
        rows.append(
            [
                coverage.name, coverage.target, coverage.mode, coverage.runs,
                coverage.armed, coverage.activated, coverage.detected,
                coverage.absorbed, coverage.escaped, _percent(coverage.coverage),
            ]
        )
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("### Failure modes by fault")
    lines.append("")
    headers = ["Fault"] + list(FAILURE_MODE_ORDER)
    rows = [
        [name] + [report.faults[name].failure_modes.get(mode, 0) for mode in FAILURE_MODE_ORDER]
        for name in sorted(report.faults)
    ]
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("### Failure-mode totals (all runs)")
    lines.append("")
    rows = [
        [
            mode,
            report.failure_modes.get(mode, 0),
            _percent(report.failure_modes.get(mode, 0) / report.total_runs)
            if report.total_runs
            else "n/a",
        ]
        for mode in FAILURE_MODE_ORDER
    ]
    lines.append(format_markdown_table(["Mode", "Runs", "Share"], rows))
    return "\n".join(lines)


def render_coverage_report(
    report: CoverageReport, *, title: str = "Fault-injection coverage"
) -> str:
    """The standalone ``python -m repro.faults coverage`` markdown report."""
    return "\n".join([f"# {title}", "", render_coverage_section(report), ""])
