"""Fault-injection CLI: ``python -m repro.faults``.

Subcommands:

* ``list`` — the failure-mode taxonomy (targets, modes) and fault presets.
* ``describe`` — inspect a fault preset or fault-plan JSON file.
* ``run`` — run a fault-injection campaign over a scenario suite, serially,
  in parallel, or as a sharded dispatch (``--dispatch``); persists per-run
  JSONL (resumable) and can render the coverage report in one go.
* ``coverage`` — render the fault-coverage report (per-fault detection /
  absorption accounting plus the failure-mode breakdown) from persisted
  campaign results; ``--gate`` turns it into a CI gate on the Wilson lower
  bound of overall coverage.
* ``sweep`` — evaluate a severity ladder per fault spec and emit
  coverage-vs-severity / failure-mode-vs-severity curves (byte-stable
  JSONL + markdown); probes drain through the dispatch queue.
* ``bisect`` — per (fault, scenario, system, repetition) cell, bisect
  severity to the threshold where the failure-mode classification flips.

Examples::

    python -m repro.faults list
    python -m repro.faults describe --faults sensor --ladder 5
    python -m repro.faults run --preset smoke --seed 7 --faults smoke \\
        --systems mls-v1 --out fault-results/
    python -m repro.faults run --preset smoke --seed 7 --faults smoke \\
        --systems mls-v1 --dispatch fault-queue/ --shards 2 --workers 2
    python -m repro.faults coverage fault-results/ --out coverage.md
    python -m repro.faults coverage fault-results/ --gate --min-coverage 0.5
    python -m repro.faults sweep --preset smoke --count 2 --seed 7 \\
        --faults smoke --systems mls-v1 --ladder 3 --out sweep/
    python -m repro.faults bisect --preset smoke --count 2 --seed 7 \\
        --faults smoke --systems mls-v1 --resolution 0.25 --out bisect/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.bench.tables import format_percent as _format_percent
from repro.faults.coverage import accumulate_coverage, render_coverage_report
from repro.faults.spec import (
    FAULT_MODES,
    FAULT_PRESETS,
    MODE_DESCRIPTIONS,
    TARGET_DESCRIPTIONS,
    FaultSpec,
    resolve_faults,
)


def _window_label(spec: FaultSpec) -> str:
    """The schedule column: activation window in a compact, stable form."""
    window = "drawn" if spec.start is None else f"{spec.start:g}s"
    if spec.duration is not None:
        window += f" +{spec.duration:g}s"
    else:
        window += " +rest"
    if spec.below_altitude is not None:
        window += f" below {spec.below_altitude:g}m"
    return window


def _spec_rows(specs: Sequence[FaultSpec]) -> list[list[object]]:
    rows: list[list[object]] = []
    for spec in specs:
        rows.append(
            [
                spec.name,
                spec.target,
                spec.mode,
                f"{spec.severity:g}",
                _window_label(spec),
                f"{spec.probability:g}",
            ]
        )
    return rows


def _print_specs(specs: Sequence[FaultSpec]) -> None:
    from repro.bench.tables import format_table

    print(
        format_table(
            ["Fault", "Target", "Mode", "Severity", "Window", "P(arm)"],
            _spec_rows(specs),
        )
    )


def _cmd_list(args: argparse.Namespace) -> int:
    print("fault taxonomy (target -> modes):")
    for target in sorted(FAULT_MODES):
        print(f"  {target:<12} {TARGET_DESCRIPTIONS.get(target, '')}")
        for mode in FAULT_MODES[target]:
            description = MODE_DESCRIPTIONS.get((target, mode), "")
            print(f"    {mode:<18} {description}")
    print("\nfault presets (use with --faults or Campaign.faults(...)):")
    from repro.bench.tables import format_table

    rows: list[list[object]] = []
    for name, specs in sorted(FAULT_PRESETS.items()):
        targets = sorted({spec.target for spec in specs})
        severities = sorted({f"{spec.severity:g}" for spec in specs}, key=float)
        windows = sorted({_window_label(spec) for spec in specs})
        rows.append(
            [
                name,
                len(specs),
                ", ".join(targets),
                ", ".join(severities),
                "; ".join(windows),
            ]
        )
    print(
        format_table(
            ["Preset", "Specs", "Targets", "Severities", "Schedule"], rows
        )
    )
    print(
        "\nfailure-mode taxonomy: nominal / degraded-success / safe-failsafe "
        "/ unsafe-landing / crash"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    specs = resolve_faults(args.faults)
    print(f"fault plan {args.faults!r}: {len(specs)} spec(s)")
    _print_specs(specs)
    if args.ladder is not None:
        from dataclasses import replace

        from repro.faults.search.curves import severity_ladder, severity_label

        ladder = severity_ladder(args.ladder)
        print(
            f"\nseverity ladder ({args.ladder} points): "
            f"{', '.join(severity_label(v) for v in ladder)}"
        )
        print("sweep grid (what `sweep --ladder` would probe):")
        _print_specs(
            [
                replace(spec, severity=severity)
                for spec in specs
                for severity in ladder
            ]
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Deferred imports: the campaign module pulls in the whole system stack.
    from repro.bench.campaign import Campaign
    from repro.bench.tables import render_outcome_rates
    from repro.scenarios import resolve_suite_args

    specs = resolve_faults(args.faults)
    suite = resolve_suite_args(args)
    campaign = Campaign(
        *[name.strip() for name in args.systems.split(",") if name.strip()]
    )
    campaign.suite(suite).faults(*specs)
    if args.repetitions is not None:
        campaign.repetitions(args.repetitions)
    if args.trace:
        campaign.trace(args.trace)
    if args.verbose:
        campaign.progress(print)

    if args.dispatch:
        results = campaign.dispatch(
            args.dispatch, shards=args.shards, workers=args.workers
        )
    else:
        if args.workers > 1:
            campaign.parallel(args.workers)
        if args.out:
            campaign.out(args.out)
        results = campaign.run()

    print(render_outcome_rates(results))

    coverage = accumulate_coverage(
        record for result in results.values() for record in result.records
    )
    print()
    print(render_coverage_report(coverage))
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_coverage_report(coverage), encoding="utf-8")
        print(f"coverage report written to {path}")
    if args.out and not args.dispatch:
        print(f"per-run JSONL results under {args.out} (re-run to resume)")
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from repro.analysis.io import iter_records

    report = accumulate_coverage(iter_records([Path(p) for p in args.results]))
    rendered = render_coverage_report(report)
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        print(f"coverage report written to {path}")
    else:
        print(rendered, end="")
    if not args.gate:
        return 0
    return _coverage_gate(report, args)


def _coverage_gate(report: object, args: argparse.Namespace) -> int:
    """The Wilson-lower-bound coverage gate (``coverage --gate``).

    Gating on the interval's lower bound instead of the point estimate is
    what scales past byte-identical smoke baselines: a small campaign with
    perfect observed coverage still fails a high bar until it has flown
    enough activated injections to *prove* the bar statistically.
    """
    from repro.analysis.stats import wilson_interval

    if args.min_coverage is None:
        raise ValueError("--gate requires --min-coverage")
    if not 0.0 <= args.min_coverage <= 1.0:
        raise ValueError(f"--min-coverage must be in [0, 1], got {args.min_coverage:g}")
    activated = sum(c.activated for c in report.faults.values())
    covered = sum(c.covered for c in report.faults.values())
    low, high = wilson_interval(covered, activated, args.confidence)
    observed = covered / activated if activated else float("nan")
    confidence_pct = f"{100.0 * args.confidence:g}%"
    print(
        f"\ncoverage gate: {covered}/{activated} activated injections covered "
        f"(observed {_format_percent(observed)}), Wilson {confidence_pct} interval "
        f"[{100.0 * low:.1f}%, {100.0 * high:.1f}%]"
    )
    if low < args.min_coverage:
        print(
            f"coverage gate FAILED: Wilson lower bound {100.0 * low:.1f}% < "
            f"required {100.0 * args.min_coverage:g}%"
        )
        return 1
    print(
        f"coverage gate passed: Wilson lower bound {100.0 * low:.1f}% >= "
        f"required {100.0 * args.min_coverage:g}%"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic fault-injection campaigns and coverage reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the fault taxonomy and fault presets")

    describe = sub.add_parser("describe", help="inspect a fault preset or plan file")
    describe.add_argument(
        "--faults", default="full",
        help="fault preset name or fault-plan JSON file (default: full)",
    )
    describe.add_argument(
        "--ladder", type=int, default=None, metavar="N",
        help="also print the N-point severity ladder a sweep would probe",
    )

    run = sub.add_parser("run", help="run a fault-injection campaign")
    from repro.world.scenario_gen import PRESET_NAMES

    run.add_argument(
        "--preset", default="smoke", choices=sorted(PRESET_NAMES),
        help="scenario-suite preset to fly (default: smoke)",
    )
    run.add_argument("--suite", default=None, help="fly a suite JSONL file instead")
    run.add_argument("--seed", type=int, default=None, help="suite master seed")
    run.add_argument("--count", type=int, default=None, help="number of scenarios")
    run.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per scenario"
    )
    run.add_argument(
        "--faults", default="smoke",
        help="fault preset name or fault-plan JSON file (default: smoke)",
    )
    run.add_argument(
        "--systems", default="mls-v3",
        help="comma-separated system presets (default: mls-v3)",
    )
    run.add_argument("--workers", type=int, default=1, help="worker processes")
    run.add_argument("--out", default=None, help="directory for per-run JSONL results")
    run.add_argument(
        "--trace", default=None,
        help="directory for flight-trace JSONL (side-channel: campaign "
        "records are byte-identical with or without it)",
    )
    run.add_argument(
        "--dispatch", default=None,
        help="run as a sharded dispatch under this directory instead of --out",
    )
    run.add_argument(
        "--shards", type=int, default=2,
        help="shard count for --dispatch (default: 2)",
    )
    run.add_argument(
        "--report", default=None, help="write the coverage report markdown here"
    )
    run.add_argument("--verbose", action="store_true", help="print one line per run")

    coverage = sub.add_parser(
        "coverage", help="render the fault-coverage report from persisted results"
    )
    coverage.add_argument(
        "results", nargs="+",
        help="campaign-result JSONL files, result directories or dispatch dirs",
    )
    coverage.add_argument("--out", default=None, help="write the report here")
    coverage.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the Wilson lower bound of overall coverage "
             "reaches --min-coverage",
    )
    coverage.add_argument(
        "--min-coverage", type=float, default=None, metavar="X",
        help="required coverage (0..1) for --gate",
    )
    coverage.add_argument(
        "--confidence", type=float, default=0.95,
        help="confidence level for the Wilson interval (default: 0.95)",
    )

    from repro.faults.search.cli import add_search_commands

    add_search_commands(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "describe":
            return _cmd_describe(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            from repro.faults.search.cli import cmd_sweep

            return cmd_sweep(args)
        if args.command == "bisect":
            from repro.faults.search.cli import cmd_bisect

            return cmd_bisect(args)
        return _cmd_coverage(args)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
