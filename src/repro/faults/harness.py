"""The fault-injection harness: deterministic injectors at module boundaries.

A :class:`FaultHarness` is attached to one mission run.  It intercepts
exactly the products that cross the sensor→system and system→autopilot
boundaries — camera frames, depth clouds, the EKF estimate, the command
stream — and wraps the detector and planner components the registry built,
at the same duck interfaces the registry declares.  It never touches the
world, the true vehicle state or the scoring harness: every perturbation is
expressed in terms the landing system could genuinely experience, so the
system's reaction (or failure to react) is real behaviour, not scripting.

Determinism: each spec gets its own ``default_rng`` stream seeded from
``(scenario fingerprint, repetition, spec hash)`` (see
:func:`repro.faults.spec.fault_run_seed`).  Draws happen in tick order,
which is itself deterministic per (scenario, system, repetition), so runs
agree byte-for-byte across serial, ``.parallel()`` and dispatched execution.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace
from typing import TYPE_CHECKING, Any, Iterable, Sequence

import numpy as np

from repro.core.commands import Command
from repro.faults.classifier import classify_record
from repro.faults.spec import FaultSpec, ensure_unique_names, fault_rng
from repro.geometry import Pose, Vec3
from repro.perception.detection import Detection, DetectionFrame
from repro.planning.types import PlannerStatus, PlanningResult
from repro.sensors.depth import PointCloud

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.landing_system import LandingSystem, ModuleTimings
    from repro.core.metrics import RunRecord
    from repro.sensors.camera import CameraFrame
    from repro.vehicle.state import EstimatedState

#: Start-window bounds (seconds) for probabilistic faults with ``start=None``.
DRAWN_START_RANGE = (10.0, 120.0)


class _ActiveFault:
    """Per-run state of one fault spec: arming, window, RNG and counters."""

    def __init__(self, spec: FaultSpec, scenario_fingerprint: str, repetition: int) -> None:
        self.spec = spec
        self.rng = fault_rng(spec, scenario_fingerprint, repetition)
        # Fixed draw order regardless of spec contents keeps the stream
        # stable when only the schedule fields change.
        arming_draw = float(self.rng.random())
        start_draw = float(self.rng.uniform(*DRAWN_START_RANGE))
        self.armed = arming_draw < spec.probability
        self.start = spec.start if spec.start is not None else start_draw
        self.first_active: float | None = None
        self.last_active: float | None = None
        self.events = 0
        #: Lazily drawn per-run constants (bias directions, EKF offsets).
        self.cache: dict[str, Vec3] = {}
        #: Pending commands of a command-delay fault (per fault: overlapping
        #: delay specs must not destroy each other's queued commands).
        self.queue: deque[Command] = deque()

    def active(self, now: float, altitude: float) -> bool:
        """Whether the fault perturbs this tick (and note the exposure)."""
        if not self.armed:
            return False
        if not self.start <= now:
            return False
        if self.spec.duration is not None and now >= self.start + self.spec.duration:
            return False
        if self.spec.below_altitude is not None and altitude > self.spec.below_altitude:
            return False
        if self.first_active is None:
            self.first_active = now
        self.last_active = now
        return True

    @property
    def activated(self) -> bool:
        return self.first_active is not None

    def metadata(self) -> dict[str, Any]:
        """The JSON-compatible entry persisted on ``RunRecord.injected_faults``."""
        return {
            "name": self.spec.name,
            "target": self.spec.target,
            "mode": self.spec.mode,
            "severity": self.spec.severity,
            "armed": self.armed,
            "activated": self.activated,
            "first_active": self.first_active,
            "last_active": self.last_active,
            "events": self.events,
        }


class FaultyDetector:
    """Wraps the registry-built detector with perception-fault injection.

    Same ``detect(frame) -> DetectionFrame`` interface the registry
    declares; unknown attributes forward to the wrapped component.
    """

    def __init__(self, inner: Any, harness: "FaultHarness") -> None:
        self._inner = inner
        self._harness = harness

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def detect(self, frame: "CameraFrame") -> DetectionFrame:
        result = self._inner.detect(frame)
        return self._harness._perturb_detections(frame, result)


class FaultyPlanner:
    """Wraps the registry-built planner with planning-fault injection."""

    def __init__(self, inner: Any, harness: "FaultHarness") -> None:
        self._inner = inner
        self._harness = harness

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def plan(self, problem: Any) -> PlanningResult:
        forced = self._harness._forced_planning_failure(problem)
        if forced is not None:
            return forced
        return self._inner.plan(problem)


class FaultHarness:
    """All injectors for one mission run, driven by the mission loop.

    Args:
        specs: the fault specs to inject.
        scenario_fingerprint: ``Scenario.fingerprint()`` of the run's
            scenario (the content hash, not the id — ids can collide
            between suites).
        repetition: the run's repetition index.
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec],
        scenario_fingerprint: str,
        repetition: int = 0,
    ) -> None:
        self.faults: list[_ActiveFault] = [
            _ActiveFault(spec, scenario_fingerprint, repetition)
            for spec in ensure_unique_names(specs)
        ]
        self._by_target: dict[str, list[_ActiveFault]] = {}
        for fault in self.faults:
            self._by_target.setdefault(fault.spec.target, []).append(fault)
        # Altitude as last estimated (system-visible); +inf until the first
        # estimate so altitude-gated faults stay off during takeoff setup.
        self._altitude = math.inf
        self._now = 0.0
        self._frozen_frame: "CameraFrame | None" = None
        self._frozen_cloud: PointCloud | None = None

    # ------------------------------------------------------------------ #
    # attachment (component wrapping)
    # ------------------------------------------------------------------ #
    def attach(self, system: "LandingSystem") -> None:
        """Wrap the system's registry-built components where faults target them."""
        if self._by_target.get("perception"):
            system.detector = FaultyDetector(system.detector, self)
        if self._by_target.get("planning"):
            system.planner = FaultyPlanner(system.planner, self)

    def _targets(self, target: str) -> list[_ActiveFault]:
        return self._by_target.get(target, [])

    # ------------------------------------------------------------------ #
    # sensor-boundary hooks (called by the mission runner)
    # ------------------------------------------------------------------ #
    def filter_estimate(self, estimate: "EstimatedState", now: float) -> "EstimatedState":
        """Apply vehicle-level estimate faults; tracks time and altitude."""
        self._now = now
        for fault in self._targets("vehicle"):
            if fault.spec.mode != "ekf-reset":
                continue
            if not fault.active(now, estimate.altitude):
                continue
            offset = self._ekf_offset(fault)
            # The estimate jumps by the divergence offset, then the EKF
            # re-converges: the offset decays from the activation instant.
            tau = 4.0 + 16.0 * fault.spec.severity
            age = now - (fault.first_active if fault.first_active is not None else now)
            decayed = offset * math.exp(-age / tau)
            fault.events += 1
            estimate = replace(
                estimate,
                position=estimate.position + decayed,
                position_std=estimate.position_std + Vec3(1.0, 1.0, 0.5) * fault.spec.severity,
            )
        self._altitude = estimate.altitude
        return estimate

    @staticmethod
    def _ekf_offset(fault: _ActiveFault) -> Vec3:
        if "ekf-offset" not in fault.cache:
            theta = float(fault.rng.uniform(0.0, 2.0 * math.pi))
            magnitude = 1.5 + 8.0 * fault.spec.severity
            fault.cache["ekf-offset"] = Vec3(
                magnitude * math.cos(theta),
                magnitude * math.sin(theta),
                float(fault.rng.uniform(-0.2, 0.2)) * magnitude,
            )
        return fault.cache["ekf-offset"]

    def filter_frame(self, frame: "CameraFrame", now: float) -> "CameraFrame | None":
        """Apply camera faults; ``None`` means the frame was lost entirely."""
        return self._filter_stream("camera", frame, now, "_frozen_frame", self._perturb_frame)

    def filter_cloud(self, cloud: PointCloud, now: float) -> PointCloud | None:
        """Apply depth faults; ``None`` means the cloud was lost entirely."""
        return self._filter_stream("depth", cloud, now, "_frozen_cloud", self._perturb_cloud)

    def _filter_stream(self, target, product, now, frozen_attr, perturb):
        """Shared sensor-stream injection: dropout / freeze / per-mode perturb.

        ``frozen_attr`` names the per-stream freeze slot; ``perturb`` applies
        the target-specific ``bias`` / ``noise-burst`` effect.
        """
        self._now = now
        delivered = product
        freeze_active = False
        for fault in self._targets(target):
            if delivered is None:
                break
            mode = fault.spec.mode
            if not fault.active(now, self._altitude):
                continue
            if mode == "dropout":
                if fault.rng.random() < 0.3 + 0.7 * fault.spec.severity:
                    fault.events += 1
                    delivered = None
            elif mode == "freeze":
                fault.events += 1
                freeze_active = True
                if getattr(self, frozen_attr) is None:
                    setattr(self, frozen_attr, delivered)
                delivered = getattr(self, frozen_attr)
            else:
                fault.events += 1
                delivered = perturb(fault, mode, delivered)
        # Remember the last cleanly delivered product for future freezes.
        if delivered is product and not freeze_active:
            setattr(self, frozen_attr, product)
        return delivered

    def _perturb_frame(self, fault: _ActiveFault, mode: str, frame: "CameraFrame") -> "CameraFrame":
        if mode == "bias":
            offset = self._bias_vector(fault, scale=0.5 + 4.0 * fault.spec.severity)
            return replace(
                frame,
                camera_pose=Pose(
                    frame.camera_pose.position + offset,
                    frame.camera_pose.orientation,
                ),
            )
        sigma = 0.05 + 0.30 * fault.spec.severity  # noise-burst
        noisy = frame.image + fault.rng.normal(0.0, sigma, size=frame.image.shape)
        return replace(frame, image=np.clip(noisy, 0.0, 1.0))

    def _perturb_cloud(self, fault: _ActiveFault, mode: str, cloud: PointCloud) -> PointCloud:
        if mode == "bias":
            offset = self._bias_vector(fault, scale=0.3 + 2.0 * fault.spec.severity)
            points = [point + offset for point in cloud.points]
        else:  # noise-burst
            sigma = 0.1 + 0.7 * fault.spec.severity
            jitter = fault.rng.normal(0.0, sigma, size=(len(cloud.points), 3))
            points = [
                point + Vec3(float(dx), float(dy), float(dz))
                for point, (dx, dy, dz) in zip(cloud.points, jitter)
            ]
        return PointCloud(
            points=points, timestamp=cloud.timestamp, sensor_position=cloud.sensor_position
        )

    @staticmethod
    def _bias_vector(fault: _ActiveFault, scale: float) -> Vec3:
        if "bias-direction" not in fault.cache:
            theta = float(fault.rng.uniform(0.0, 2.0 * math.pi))
            fault.cache["bias-direction"] = Vec3(math.cos(theta), math.sin(theta), 0.0)
        return fault.cache["bias-direction"] * scale

    # ------------------------------------------------------------------ #
    # component-level injection (called from the wrappers)
    # ------------------------------------------------------------------ #
    def _perturb_detections(
        self, frame: "CameraFrame", result: DetectionFrame
    ) -> DetectionFrame:
        # Mission time, not frame.timestamp: a frozen camera frame carries a
        # stale timestamp, which must not shift perception fault windows.
        now = self._now
        for fault in self._targets("perception"):
            mode = fault.spec.mode
            if mode == "latency-spike":
                continue  # applied via adjust_timings, not the data path
            if not fault.active(now, self._altitude):
                continue
            if mode == "missed-detection":
                kept: list[Detection] = []
                for detection in result.detections:
                    if fault.rng.random() < 0.35 + 0.65 * fault.spec.severity:
                        fault.events += 1
                    else:
                        kept.append(detection)
                result = DetectionFrame(
                    timestamp=result.timestamp,
                    detections=kept,
                    processing_latency=result.processing_latency,
                )
            elif mode == "phantom-detection":
                if fault.rng.random() < 0.15 + 0.5 * fault.spec.severity:
                    fault.events += 1
                    result = DetectionFrame(
                        timestamp=result.timestamp,
                        detections=result.detections + [self._phantom(frame, fault)],
                        processing_latency=result.processing_latency,
                    )
        return result

    def _phantom(self, frame: "CameraFrame", fault: _ActiveFault) -> Detection:
        """A spurious detection back-projected through the frame's own model."""
        intr = frame.intrinsics
        row = float(fault.rng.uniform(0, intr.height - 1))
        col = float(fault.rng.uniform(0, intr.width - 1))
        # Mostly undecodable marker-like quads; occasionally a decode spoof.
        marker_id: int | None = None
        if fault.rng.random() < 0.3:
            marker_id = int(fault.rng.integers(0, 48))
        return Detection(
            marker_id=marker_id,
            pixel_center=(row, col),
            pixel_size=float(fault.rng.uniform(4.0, 12.0)),
            world_position=frame.pixel_to_ground(row, col),
            confidence=0.6 + 0.35 * float(fault.rng.random()),
        )

    def _forced_planning_failure(self, problem: Any) -> PlanningResult | None:
        for fault in self._targets("planning"):
            if not fault.active(self._now, self._altitude):
                continue
            if fault.rng.random() < 0.3 + 0.7 * fault.spec.severity:
                fault.events += 1
                if fault.spec.mode == "timeout":
                    return PlanningResult.failure(
                        PlannerStatus.TIMEOUT,
                        planning_time=getattr(problem, "time_budget", 0.0),
                    )
                return PlanningResult.failure(PlannerStatus.NO_PATH_FOUND)
        return None

    # ------------------------------------------------------------------ #
    # mapping corruption and command/timing hooks
    # ------------------------------------------------------------------ #
    def corrupt_mapping(self, system: "LandingSystem", estimate: "EstimatedState", now: float) -> None:
        """Inject phantom occupied cells near the vehicle into the map stack."""
        for fault in self._targets("mapping"):
            if not fault.active(now, self._altitude):
                continue
            count = 1 + int(fault.spec.severity * 6)
            points = []
            for _ in range(count):
                points.append(
                    estimate.position
                    + Vec3(
                        float(fault.rng.uniform(-8.0, 8.0)),
                        float(fault.rng.uniform(-8.0, 8.0)),
                        float(fault.rng.uniform(-4.0, 2.0)),
                    )
                )
            points = [p.with_z(max(0.3, p.z)) for p in points]
            fault.events += len(points)
            phantom = PointCloud(points=points, timestamp=now, sensor_position=estimate.position)
            corrupted = False
            for target_map in (system.mapping.local_grid, system.mapping.octree):
                if target_map is not None:
                    target_map.integrate_cloud(phantom)
                    corrupted = True
            if not corrupted:
                primary = system.mapping.primary
                if primary is not None and hasattr(primary, "integrate_cloud"):
                    primary.integrate_cloud(phantom)

    def filter_command(self, command: Command, now: float) -> Command:
        """Apply command-delay faults to the decision output stream.

        Each fault owns its queue, so overlapping delay specs chain (the
        later one delays the earlier one's output further) instead of
        clobbering each other's pending commands.
        """
        for fault in self._targets("vehicle"):
            if fault.spec.mode != "command-delay":
                continue
            if not fault.active(now, self._altitude):
                if fault.queue:
                    fault.queue.clear()
                continue
            depth = 1 + int(fault.spec.severity * 4)
            fault.queue.append(command)
            fault.events += 1
            if len(fault.queue) > depth:
                command = fault.queue.popleft()
            else:
                command = Command.none()
        return command

    def adjust_timings(self, timings: "ModuleTimings", now: float) -> None:
        """Add latency-spike cost to the tick's compute-timing model."""
        for fault in self._targets("perception"):
            if fault.spec.mode != "latency-spike":
                continue
            if not fault.active(now, self._altitude):
                continue
            fault.events += 1
            timings.detection += 0.05 + 0.45 * fault.spec.severity

    # ------------------------------------------------------------------ #
    # record finalisation
    # ------------------------------------------------------------------ #
    def finalize(self, record: "RunRecord") -> None:
        """Stamp fault metadata and the failure-mode classification."""
        record.injected_faults = [fault.metadata() for fault in self.faults]
        record.failure_mode = classify_record(record).value

    @property
    def specs(self) -> Sequence[FaultSpec]:
        return [fault.spec for fault in self.faults]
