"""The severity-sweep driver: a ladder of probes per fault spec.

``run_sweep`` evaluates every ``(spec, severity)`` combination over the
backend's full suite, folds each probe's merged records into a
:class:`~repro.faults.search.curves.CurvePoint`, and persists the curves::

    <out>/
        probes/<spec>-s<severity>-<fingerprint>/   one dispatch dir per probe
        curves/coverage.jsonl                      coverage-vs-severity
        curves/failure-modes.jsonl                 failure-modes-vs-severity
        sweep.md                                   deterministic report

Everything downstream of the probe evaluations is a pure sorted function
of the merged records, so the three files are byte-identical across worker
topologies and across kill-and-resume executions — the property the
``sweep-smoke`` CI job ``cmp``-gates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.faults.search.backend import Probe, ProbeOutcome
from repro.faults.search.curves import (
    CurvePoint,
    curve_point,
    render_sweep_report,
    severity_label,
    sort_points,
    validate_severities,
    write_coverage_curve,
    write_failure_mode_curve,
)
from repro.faults.spec import FaultSpec, ensure_unique_names

#: Directory (under the sweep/bisect output root) holding probe dispatches.
PROBES_DIRNAME = "probes"
CURVES_DIRNAME = "curves"
COVERAGE_CURVE_FILENAME = "coverage.jsonl"
FAILURE_MODE_CURVE_FILENAME = "failure-modes.jsonl"
SWEEP_REPORT_FILENAME = "sweep.md"


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: curve points plus where they were persisted."""

    points: tuple[CurvePoint, ...]
    coverage_path: Path
    failure_modes_path: Path
    report_path: Path
    report: str


def sweep_probes(
    suite: Any, specs: Sequence[FaultSpec], severities: Sequence[float]
) -> list[Probe]:
    """The sweep's probe grid: every spec at every ladder rung, full suite.

    Severity variants keep the base spec's *name* (the curve key) — only
    the severity field is replaced, so per-run RNG streams differ by spec
    hash while curves stay keyed per fault.
    """
    ensure_unique_names(specs)
    scenario_ids = tuple(scenario.scenario_id for scenario in suite.scenarios)
    return [
        Probe(spec=replace(spec, severity=severity), scenario_ids=scenario_ids)
        for spec in specs
        for severity in severities
    ]


def run_sweep(
    backend: Any,
    specs: Sequence[FaultSpec],
    severities: Sequence[float],
    *,
    out_dir: str | Path,
    meta: Mapping[str, Any] | None = None,
) -> SweepResult:
    """Evaluate the sweep grid through ``backend`` and persist the curves."""
    if not specs:
        raise ValueError("a sweep needs at least one fault spec")
    ladder = validate_severities(severities)
    out_dir = Path(out_dir)
    probes = sweep_probes(backend.suite, specs, ladder)
    outcomes: list[ProbeOutcome] = backend.evaluate(probes)
    points = sort_points(
        curve_point(outcome.probe.spec, outcome.records) for outcome in outcomes
    )

    header_meta: dict[str, Any] = {
        "severities": [severity_label(value) for value in ladder],
        "specs": sorted(spec.name for spec in specs),
        **(backend.describe() if hasattr(backend, "describe") else {}),
        **(meta or {}),
    }
    curves_dir = out_dir / CURVES_DIRNAME
    coverage_path = write_coverage_curve(
        curves_dir / COVERAGE_CURVE_FILENAME, points, meta=header_meta
    )
    failure_modes_path = write_failure_mode_curve(
        curves_dir / FAILURE_MODE_CURVE_FILENAME, points, meta=header_meta
    )
    report_meta = {
        **{k: v for k, v in header_meta.items() if k not in ("severities", "specs")},
        "severities": ", ".join(severity_label(value) for value in ladder),
        "specs": ", ".join(sorted(spec.name for spec in specs)),
    }
    report = render_sweep_report(points, meta=report_meta)
    report_path = out_dir / SWEEP_REPORT_FILENAME
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(report, encoding="utf-8")
    return SweepResult(
        points=tuple(points),
        coverage_path=coverage_path,
        failure_modes_path=failure_modes_path,
        report_path=report_path,
        report=report,
    )
