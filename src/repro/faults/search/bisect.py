"""Severity bisection: the minimal severity that flips a run's failure mode.

For each *cell* — one ``(fault spec, scenario, system, repetition)`` — the
driver evaluates the severity bracket endpoints (0 and 1 by default).  When
the five-way failure-mode classification differs between the endpoints, it
bisects: probe the midpoint, keep the half whose boundary still separates
the low-endpoint mode from a different mode, repeat until the bracket is no
wider than ``resolution``.

**Critical-severity semantics.**  ``critical`` is the bracket's upper edge
when bisection terminates: the smallest probed severity (to within
``resolution``) whose classification differs from the low-endpoint mode.
Below ``critical - resolution`` the run classifies as ``lo_mode``; at
``critical`` it classifies as ``critical_mode``.  Midpoints may classify as
a *third* mode (e.g. ``nominal`` → ``safe-failsafe`` → ``crash``); the
bracket then tracks the first departure from ``lo_mode``, so ``critical``
is the onset of *any* behavioural change, and ``critical_mode`` names what
it changed into.  Cells whose endpoints agree report ``critical = None``
(no flip to find).

The search is *batch-synchronous*: each round gathers every unresolved
cell's midpoint probe into one backend batch, grouped by ``(spec,
severity)``.  Midpoints are dyadic (0.5, 0.25, 0.75, ...), so cells
resolve through a shared, heavily-memoized set of probe points, and the
whole procedure is a deterministic function of the merged records — which
makes re-runs (and resumed runs) byte-identical and the result invariant
to worker count and probe evaluation order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.bench.tables import format_markdown_table
from repro.faults.classifier import failure_mode_label
from repro.faults.search.backend import Probe, ProbeOutcome
from repro.faults.search.curves import SEARCH_SCHEMA_VERSION, severity_label
from repro.faults.spec import FaultSpec, ensure_unique_names
from repro.jsonl import read_jsonl_frame

#: ``kind`` of the persisted bisection JSONL.
BISECTION_KIND = "severity-bisection"
BISECTION_FILENAME = "bisect.jsonl"
BISECTION_REPORT_FILENAME = "bisect.md"

#: Default bracket width at which bisection stops (4 rounds from [0, 1]).
DEFAULT_RESOLUTION = 0.0625

CellKey = tuple[str, str, str, int]


@dataclass
class _CellState:
    """One cell's live bracket while the search runs."""

    fault: str
    scenario_id: str
    system: str
    repetition: int
    lo: float
    hi: float
    lo_mode: str
    hi_mode: str
    probes: int = 2  # both endpoints

    @property
    def flipped(self) -> bool:
        return self.lo_mode != self.hi_mode

    def unresolved(self, resolution: float) -> bool:
        return self.flipped and (self.hi - self.lo) > resolution


@dataclass(frozen=True)
class BisectionResult:
    """The resolved critical-severity answer for one cell."""

    fault: str
    target: str
    mode: str
    scenario_id: str
    system: str
    repetition: int
    lo: float
    hi: float
    lo_mode: str
    hi_mode: str
    critical: float | None
    critical_mode: str | None
    probes: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "fault": self.fault,
            "target": self.target,
            "mode": self.mode,
            "scenario_id": self.scenario_id,
            "system": self.system,
            "repetition": self.repetition,
            "lo": self.lo,
            "hi": self.hi,
            "lo_mode": self.lo_mode,
            "hi_mode": self.hi_mode,
            "critical": self.critical,
            "critical_mode": self.critical_mode,
            "probes": self.probes,
        }


def _mode_lookup(outcomes: Iterable[ProbeOutcome]) -> dict[tuple, str]:
    """``(fault, severity, scenario, system, repetition) -> failure mode``."""
    modes: dict[tuple, str] = {}
    for outcome in outcomes:
        spec = outcome.probe.spec
        for record in outcome.records:
            key = (
                spec.name,
                spec.severity,
                record.scenario_id,
                record.system_name,
                record.repetition,
            )
            modes[key] = failure_mode_label(record)
    return modes


def bisect_severity(
    backend: Any,
    specs: Sequence[FaultSpec],
    *,
    resolution: float = DEFAULT_RESOLUTION,
    lo: float = 0.0,
    hi: float = 1.0,
    progress: Callable[[str], None] | None = None,
) -> list[BisectionResult]:
    """Bisect every ``(spec, scenario, system, repetition)`` cell's severity.

    Returns results sorted by ``(fault, scenario, system, repetition)``;
    see the module docstring for the critical-severity semantics.
    """
    if not specs:
        raise ValueError("bisection needs at least one fault spec")
    ensure_unique_names(specs)
    if not 0.0 <= lo < hi <= 1.0:
        raise ValueError(f"invalid severity bracket [{lo:g}, {hi:g}]")
    if resolution <= 0.0:
        raise ValueError(f"resolution must be positive, got {resolution:g}")

    spec_by_name = {spec.name: spec for spec in specs}
    suite_order = {
        scenario.scenario_id: index
        for index, scenario in enumerate(backend.suite.scenarios)
    }
    all_ids = tuple(scenario.scenario_id for scenario in backend.suite.scenarios)

    # Round 0: both bracket endpoints for every spec over the full suite.
    endpoint_probes = [
        Probe(spec=replace(spec, severity=value), scenario_ids=all_ids)
        for spec in specs
        for value in (lo, hi)
    ]
    modes = _mode_lookup(backend.evaluate(endpoint_probes))

    cells: dict[CellKey, _CellState] = {}
    for (fault, severity, scenario_id, system, repetition), label in sorted(
        modes.items()
    ):
        if severity != lo:
            continue
        hi_label = modes[(fault, hi, scenario_id, system, repetition)]
        cells[(fault, scenario_id, system, repetition)] = _CellState(
            fault=fault,
            scenario_id=scenario_id,
            system=system,
            repetition=repetition,
            lo=lo,
            hi=hi,
            lo_mode=label,
            hi_mode=hi_label,
        )

    while True:
        active = [cell for cell in cells.values() if cell.unresolved(resolution)]
        if not active:
            break
        # Group this round's midpoints into one probe per (spec, severity):
        # dyadic midpoints coincide across cells, so a handful of probe
        # directories serves the whole population.
        groups: dict[tuple[str, float], set[str]] = {}
        for cell in active:
            mid = (cell.lo + cell.hi) / 2.0
            groups.setdefault((cell.fault, mid), set()).add(cell.scenario_id)
        probes = [
            Probe(
                spec=replace(spec_by_name[fault], severity=mid),
                scenario_ids=tuple(
                    sorted(scenario_ids, key=lambda sid: suite_order[sid])
                ),
            )
            for (fault, mid), scenario_ids in sorted(groups.items())
        ]
        if progress is not None:
            unresolved = len(active)
            progress(
                f"bisection round: {len(probes)} probe(s) for {unresolved} "
                f"unresolved cell(s)"
            )
        modes.update(_mode_lookup(backend.evaluate(probes)))
        for cell in active:
            mid = (cell.lo + cell.hi) / 2.0
            label = modes[
                (cell.fault, mid, cell.scenario_id, cell.system, cell.repetition)
            ]
            cell.probes += 1
            if label == cell.lo_mode:
                cell.lo = mid
            else:
                cell.hi = mid
                cell.hi_mode = label

    results = []
    for cell in cells.values():
        spec = spec_by_name[cell.fault]
        results.append(
            BisectionResult(
                fault=cell.fault,
                target=spec.target,
                mode=spec.mode,
                scenario_id=cell.scenario_id,
                system=cell.system,
                repetition=cell.repetition,
                lo=cell.lo,
                hi=cell.hi,
                lo_mode=cell.lo_mode,
                hi_mode=cell.hi_mode,
                critical=cell.hi if cell.flipped else None,
                critical_mode=cell.hi_mode if cell.flipped else None,
                probes=cell.probes,
            )
        )
    return sorted(
        results,
        key=lambda r: (r.fault, r.scenario_id, r.system, r.repetition),
    )


# ---------------------------------------------------------------------- #
# persistence and rendering
# ---------------------------------------------------------------------- #
def write_bisection(
    path: str | Path,
    results: Sequence[BisectionResult],
    *,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Persist bisection results as framed, byte-stable JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: dict[str, Any] = {
        "kind": BISECTION_KIND,
        "schema": SEARCH_SCHEMA_VERSION,
        "cells": len(results),
        **(meta or {}),
    }
    def dump(payload: Any) -> str:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    text = "\n".join([dump(header)] + [dump(r.to_dict()) for r in results]) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def read_bisection(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    header, payload = read_jsonl_frame(path, BISECTION_KIND, SEARCH_SCHEMA_VERSION)
    return header, [json.loads(line) for line in payload]


def render_bisection_report(
    results: Sequence[BisectionResult],
    *,
    meta: Mapping[str, Any] | None = None,
    title: str = "Critical-severity bisection",
) -> str:
    """The deterministic bisection report (the CI-baselined markdown)."""
    lines: list[str] = [f"# {title}", ""]
    if meta:
        lines.extend(f"- {key}: {meta[key]}" for key in sorted(meta))
        lines.append("")

    lines.append("## Critical severity per cell")
    lines.append("")
    headers = [
        "Fault", "Scenario", "System", "Rep", "Mode@lo", "Mode@hi",
        "Critical", "Bracket", "Probes",
    ]
    rows = []
    for result in results:
        rows.append(
            [
                result.fault,
                result.scenario_id,
                result.system,
                result.repetition,
                result.lo_mode,
                result.hi_mode,
                "none" if result.critical is None else severity_label(result.critical),
                f"[{severity_label(result.lo)}, {severity_label(result.hi)}]",
                result.probes,
            ]
        )
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("## Minimal critical severity per fault")
    lines.append("")
    by_fault: dict[str, list[BisectionResult]] = {}
    for result in results:
        by_fault.setdefault(result.fault, []).append(result)
    rows = []
    for fault in sorted(by_fault):
        flipped = [r for r in by_fault[fault] if r.critical is not None]
        minimal = min((r.critical for r in flipped), default=None)
        rows.append(
            [
                fault,
                len(by_fault[fault]),
                len(flipped),
                "none" if minimal is None else severity_label(minimal),
            ]
        )
    lines.append(
        format_markdown_table(["Fault", "Cells", "Flipped", "Min critical"], rows)
    )
    lines.append("")
    return "\n".join(lines)
