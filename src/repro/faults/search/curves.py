"""Severity-sweep curves: byte-stable JSONL and markdown renderings.

A sweep evaluates each fault spec at every rung of a severity ladder; this
module turns the resulting per-probe record sets into *curves*:

* **coverage-vs-severity** — per ``(fault, severity)`` point, the standard
  coverage accounting (armed / activated / detected / absorbed / escaped)
  plus a Wilson 95% interval on the coverage proportion, so sparse smoke
  sweeps state their uncertainty instead of overclaiming;
* **failure-modes-vs-severity** — how the five-way classification of
  activated injections shifts as severity rises (the paper's Fig. 5
  analogue for injected faults).

Both serializations are canonical (points sorted by ``(fault, severity)``,
``json.dumps(sort_keys=True)`` with fixed separators), so curves computed
from any execution order — serial, multi-worker, resumed after a kill —
are byte-identical, which is what lets CI ``cmp`` them against committed
baselines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.stats import DEFAULT_CONFIDENCE, wilson_interval
from repro.bench.tables import format_markdown_table, format_percent
from repro.core.metrics import RunRecord
from repro.faults.classifier import FAILURE_MODE_ORDER
from repro.faults.coverage import FaultCoverage, accumulate_coverage
from repro.faults.spec import FaultSpec
from repro.jsonl import read_jsonl_frame

#: Schema version stamped into every search JSONL header.
SEARCH_SCHEMA_VERSION = 1

#: ``kind`` of curve files (the header's ``curve`` field says which curve).
CURVE_KIND = "sweep-curve"

COVERAGE_CURVE = "coverage-vs-severity"
FAILURE_MODE_CURVE = "failure-modes-vs-severity"


def severity_ladder(points: int) -> tuple[float, ...]:
    """``points`` evenly spaced severities covering ``[0.0, 1.0]``.

    Endpoint-inclusive so ladder extremes coincide with the bisection
    driver's bracket endpoints, and dyadic for the common point counts
    (3 -> 0, 0.5, 1; 5 -> quarters), which keeps float labels short.
    """
    if points < 2:
        raise ValueError(f"a severity ladder needs at least 2 points, got {points}")
    return tuple(index / (points - 1) for index in range(points))


def parse_severities(text: str) -> tuple[float, ...]:
    """Parse a ``--severities`` CLI value (comma-separated floats)."""
    try:
        values = tuple(float(token) for token in text.split(",") if token.strip())
    except ValueError:
        raise ValueError(f"invalid severity list {text!r}") from None
    return validate_severities(values)


def validate_severities(values: Iterable[float]) -> tuple[float, ...]:
    """Sort, deduplicate and range-check a severity ladder."""
    ladder = tuple(sorted(set(float(value) for value in values)))
    if not ladder:
        raise ValueError("a severity ladder cannot be empty")
    for value in ladder:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"severity {value:g} outside [0, 1]")
    return ladder


def severity_label(severity: float) -> str:
    """Compact, stable display label for a severity value (``0.25``, ``1``)."""
    return f"{severity:g}"


@dataclass(frozen=True)
class CurvePoint:
    """Coverage and failure-mode accounting for one ``(fault, severity)``."""

    fault: str
    target: str
    mode: str
    severity: float
    runs: int = 0
    armed: int = 0
    activated: int = 0
    detected: int = 0
    absorbed: int = 0
    escaped: int = 0
    #: Failure-mode histogram over runs whose injection *activated*.
    failure_modes: Mapping[str, int] = field(
        default_factory=lambda: {mode: 0 for mode in FAILURE_MODE_ORDER}
    )

    @property
    def covered(self) -> int:
        return self.detected + self.absorbed

    @property
    def coverage(self) -> float:
        return self.covered / self.activated if self.activated else float("nan")

    def wilson(self, confidence: float = DEFAULT_CONFIDENCE) -> tuple[float, float]:
        """Wilson interval on the coverage proportion (``(0, 1)`` if no data)."""
        return wilson_interval(self.covered, self.activated, confidence)

    def coverage_dict(self) -> dict[str, Any]:
        """The coverage-curve JSONL row."""
        low, high = self.wilson()
        no_data = self.activated == 0
        return {
            "fault": self.fault,
            "target": self.target,
            "mode": self.mode,
            "severity": self.severity,
            "runs": self.runs,
            "armed": self.armed,
            "activated": self.activated,
            "detected": self.detected,
            "absorbed": self.absorbed,
            "escaped": self.escaped,
            "coverage": None if no_data else self.coverage,
            "coverage_low": None if no_data else low,
            "coverage_high": None if no_data else high,
        }

    def failure_mode_dict(self) -> dict[str, Any]:
        """The failure-mode-curve JSONL row."""
        return {
            "fault": self.fault,
            "severity": self.severity,
            "activated": self.activated,
            "modes": {
                mode: self.failure_modes.get(mode, 0) for mode in FAILURE_MODE_ORDER
            },
        }


def curve_point(spec: FaultSpec, records: Iterable[RunRecord]) -> CurvePoint:
    """Fold one probe's merged records into its curve point.

    ``spec`` is the probe's (severity-pinned) fault spec; the records are the
    probe campaign's merged output.  Counting reuses the exact coverage
    semantics of :mod:`repro.faults.coverage`, so a curve point agrees with
    the coverage report over the same records.
    """
    report = accumulate_coverage(records)
    counters = report.faults.get(spec.name) or FaultCoverage(
        name=spec.name, target=spec.target, mode=spec.mode
    )
    return CurvePoint(
        fault=spec.name,
        target=spec.target,
        mode=spec.mode,
        severity=spec.severity,
        runs=counters.runs,
        armed=counters.armed,
        activated=counters.activated,
        detected=counters.detected,
        absorbed=counters.absorbed,
        escaped=counters.escaped,
        failure_modes=dict(counters.failure_modes),
    )


def sort_points(points: Iterable[CurvePoint]) -> list[CurvePoint]:
    return sorted(points, key=lambda point: (point.fault, point.severity))


# ---------------------------------------------------------------------- #
# persistence
# ---------------------------------------------------------------------- #
def _dump(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _write_curve(
    path: str | Path,
    curve: str,
    rows: Sequence[dict[str, Any]],
    meta: Mapping[str, Any] | None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header: dict[str, Any] = {
        "kind": CURVE_KIND,
        "schema": SEARCH_SCHEMA_VERSION,
        "curve": curve,
        "points": len(rows),
        **(meta or {}),
    }
    text = "\n".join([_dump(header)] + [_dump(row) for row in rows]) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def write_coverage_curve(
    path: str | Path,
    points: Iterable[CurvePoint],
    *,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write the coverage-vs-severity curve as framed, byte-stable JSONL."""
    rows = [point.coverage_dict() for point in sort_points(points)]
    return _write_curve(path, COVERAGE_CURVE, rows, meta)


def write_failure_mode_curve(
    path: str | Path,
    points: Iterable[CurvePoint],
    *,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write the failure-modes-vs-severity curve as framed JSONL."""
    rows = [point.failure_mode_dict() for point in sort_points(points)]
    return _write_curve(path, FAILURE_MODE_CURVE, rows, meta)


def read_curve(path: str | Path) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load a curve file; returns ``(header, rows)``."""
    header, payload = read_jsonl_frame(path, CURVE_KIND, SEARCH_SCHEMA_VERSION)
    return header, [json.loads(line) for line in payload]


# ---------------------------------------------------------------------- #
# markdown
# ---------------------------------------------------------------------- #
def _meta_lines(meta: Mapping[str, Any] | None) -> list[str]:
    if not meta:
        return []
    lines = [f"- {key}: {meta[key]}" for key in sorted(meta)]
    lines.append("")
    return lines


def render_sweep_report(
    points: Iterable[CurvePoint],
    *,
    meta: Mapping[str, Any] | None = None,
    title: str = "Fault-space severity sweep",
) -> str:
    """The deterministic sweep report (the CI-baselined markdown)."""
    ordered = sort_points(points)
    lines: list[str] = [f"# {title}", ""]
    lines.extend(_meta_lines(meta))

    lines.append("## Coverage vs severity")
    lines.append("")
    headers = [
        "Fault", "Target", "Mode", "Severity", "Runs", "Armed", "Activated",
        "Detected", "Absorbed", "Escaped", "Coverage", "Wilson low", "Wilson high",
    ]
    rows = []
    for point in ordered:
        low, high = point.wilson()
        no_data = point.activated == 0
        rows.append(
            [
                point.fault, point.target, point.mode, severity_label(point.severity),
                point.runs, point.armed, point.activated, point.detected,
                point.absorbed, point.escaped, format_percent(point.coverage),
                "n/a" if no_data else format_percent(low),
                "n/a" if no_data else format_percent(high),
            ]
        )
    lines.append(format_markdown_table(headers, rows))
    lines.append("")

    lines.append("## Failure modes vs severity (activated injections)")
    lines.append("")
    headers = ["Fault", "Severity", "Activated"] + list(FAILURE_MODE_ORDER)
    rows = [
        [point.fault, severity_label(point.severity), point.activated]
        + [point.failure_modes.get(mode, 0) for mode in FAILURE_MODE_ORDER]
        for point in ordered
    ]
    lines.append(format_markdown_table(headers, rows))
    lines.append("")
    return "\n".join(lines)
