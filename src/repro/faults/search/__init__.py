"""Fault-space search: severity bisection and coverage-vs-severity sweeps.

The search engine explores the fault x scenario x severity space the
injection pillar (:mod:`repro.faults`) opened, without flying the full
grid: every probe point is expressed as a standard dispatch plan, so
probes drain through the existing lease-based queue under any worker
topology — and a killed search resumes from the directory tree to
byte-identical curves.

Quickstart::

    from repro.core.config import mls_v3
    from repro.faults import FAULT_PRESETS
    from repro.faults.search import DispatchProbeBackend, run_sweep, severity_ladder
    from repro.world.scenario_gen import generate_suite

    suite = generate_suite("smoke", count=2, seed=7, repetitions=1)
    backend = DispatchProbeBackend("sweep/probes", suite, [mls_v3()])
    result = run_sweep(
        backend, FAULT_PRESETS["smoke"], severity_ladder(5), out_dir="sweep"
    )

CLI: ``python -m repro.faults sweep`` / ``bisect``.
"""

from repro.faults.search.backend import (
    DispatchProbeBackend,
    Probe,
    ProbeOutcome,
    ServiceProbeBackend,
)
from repro.faults.search.bisect import (
    DEFAULT_RESOLUTION,
    BisectionResult,
    bisect_severity,
    read_bisection,
    render_bisection_report,
    write_bisection,
)
from repro.faults.search.curves import (
    SEARCH_SCHEMA_VERSION,
    CurvePoint,
    curve_point,
    read_curve,
    render_sweep_report,
    severity_ladder,
    write_coverage_curve,
    write_failure_mode_curve,
)
from repro.faults.search.sweep import SweepResult, run_sweep, sweep_probes

__all__ = [
    "DEFAULT_RESOLUTION",
    "SEARCH_SCHEMA_VERSION",
    "BisectionResult",
    "CurvePoint",
    "DispatchProbeBackend",
    "Probe",
    "ProbeOutcome",
    "ServiceProbeBackend",
    "SweepResult",
    "bisect_severity",
    "curve_point",
    "read_bisection",
    "read_curve",
    "render_bisection_report",
    "render_sweep_report",
    "run_sweep",
    "severity_ladder",
    "sweep_probes",
    "write_bisection",
    "write_coverage_curve",
    "write_failure_mode_curve",
]
