"""CLI wiring for ``python -m repro.faults sweep`` / ``bisect``.

Kept out of :mod:`repro.faults.cli` so the top-level parser stays cheap to
import; everything heavy (the campaign stack behind the backends) is
imported inside the command functions.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Any

from repro.faults.search.bisect import (
    BISECTION_FILENAME,
    BISECTION_REPORT_FILENAME,
    DEFAULT_RESOLUTION,
    bisect_severity,
    render_bisection_report,
    write_bisection,
)
from repro.faults.search.curves import parse_severities, severity_ladder, severity_label
from repro.faults.search.sweep import PROBES_DIRNAME, run_sweep
from repro.faults.spec import resolve_faults


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    from repro.world.scenario_gen import PRESET_NAMES

    parser.add_argument(
        "--preset", default="smoke", choices=sorted(PRESET_NAMES),
        help="scenario-suite preset to probe (default: smoke)",
    )
    parser.add_argument("--suite", default=None, help="probe a suite JSONL file instead")
    parser.add_argument("--seed", type=int, default=None, help="suite master seed")
    parser.add_argument("--count", type=int, default=None, help="number of scenarios")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per scenario"
    )
    parser.add_argument(
        "--faults", default="smoke",
        help="fault preset name or fault-plan JSON file (default: smoke)",
    )
    parser.add_argument(
        "--systems", default="mls-v3",
        help="comma-separated system presets (default: mls-v3)",
    )
    parser.add_argument(
        "--out", required=True,
        help="output directory (probe dispatches, curves, reports); "
             "re-running with the same arguments resumes from it",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="local worker processes per probe (default: 1, in-process)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="shards per probe dispatch (default: 1)",
    )
    parser.add_argument(
        "--service", default=None, metavar="URL",
        help="evaluate probes through a running campaign service instead "
             "of local dispatch (e.g. http://127.0.0.1:8035)",
    )
    parser.add_argument("--verbose", action="store_true", help="print probe progress")


def add_search_commands(sub: Any) -> None:
    """Register the ``sweep`` and ``bisect`` subparsers."""
    sweep = sub.add_parser(
        "sweep",
        help="sweep a severity ladder per fault spec; emit coverage and "
             "failure-mode curves",
    )
    _add_common_args(sweep)
    ladder = sweep.add_mutually_exclusive_group()
    ladder.add_argument(
        "--ladder", type=int, default=5, metavar="N",
        help="N evenly spaced severities covering [0, 1] (default: 5)",
    )
    ladder.add_argument(
        "--severities", default=None,
        help="explicit comma-separated severity ladder (e.g. 0,0.5,1)",
    )

    bisect = sub.add_parser(
        "bisect",
        help="bisect severity per (fault, scenario, system, repetition) cell "
             "to locate the failure-mode flip threshold",
    )
    _add_common_args(bisect)
    bisect.add_argument(
        "--resolution", type=float, default=DEFAULT_RESOLUTION,
        help=f"stop once the severity bracket is this narrow "
             f"(default: {DEFAULT_RESOLUTION:g})",
    )


def _build_backend(args: argparse.Namespace) -> Any:
    from repro.scenarios import resolve_suite_args

    suite = resolve_suite_args(args)
    names = [name.strip() for name in args.systems.split(",") if name.strip()]
    if not names:
        raise ValueError("at least one system preset is required")
    progress = print if args.verbose else None
    if args.service:
        from repro.faults.search.backend import ServiceProbeBackend

        return ServiceProbeBackend(
            args.service,
            suite,
            names,
            repetitions=args.repetitions,
            shards=args.shards,
            progress=progress,
        )
    from repro.core.config import preset
    from repro.faults.search.backend import DispatchProbeBackend

    return DispatchProbeBackend(
        Path(args.out) / PROBES_DIRNAME,
        suite,
        [preset(name) for name in names],
        repetitions=args.repetitions,
        shards=args.shards,
        workers=args.workers,
        progress=progress,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    backend = _build_backend(args)
    specs = resolve_faults(args.faults)
    severities = (
        parse_severities(args.severities)
        if args.severities is not None
        else severity_ladder(args.ladder)
    )
    result = run_sweep(backend, specs, severities, out_dir=args.out)
    print(result.report, end="")
    print(f"coverage curve:      {result.coverage_path}")
    print(f"failure-mode curve:  {result.failure_modes_path}")
    print(f"sweep report:        {result.report_path}")
    return 0


def cmd_bisect(args: argparse.Namespace) -> int:
    backend = _build_backend(args)
    specs = resolve_faults(args.faults)
    results = bisect_severity(
        backend,
        specs,
        resolution=args.resolution,
        progress=print if args.verbose else None,
    )
    meta = {
        "resolution": severity_label(args.resolution),
        "specs": ", ".join(sorted(spec.name for spec in specs)),
        **(backend.describe() if hasattr(backend, "describe") else {}),
    }
    out_dir = Path(args.out)
    jsonl_path = write_bisection(out_dir / BISECTION_FILENAME, results, meta=meta)
    report = render_bisection_report(results, meta=meta)
    report_path = out_dir / BISECTION_REPORT_FILENAME
    report_path.write_text(report, encoding="utf-8")
    print(report, end="")
    print(f"bisection results:  {jsonl_path}")
    print(f"bisection report:   {report_path}")
    return 0
