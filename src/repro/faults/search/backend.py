"""Probe evaluation backends: fault-space probes as dispatch campaigns.

A *probe* asks one question of the simulator: "fly this scenario subset
with this fault spec pinned at this severity".  Because ``FaultSpec``
severity is part of the spec hash and per-run fault RNG is keyed on
``(scenario fingerprint, repetition, spec hash)``, every probe point is an
independent deterministic stream — evaluating severity 0.43 neither
disturbs nor depends on the stream at 0.5.

The backends here answer probes without inventing any new execution
machinery: each probe batch becomes a standard dispatch plan
(:mod:`repro.dispatch`) under the backend root, one directory per distinct
``(spec, severity, scenario subset)``, named by the plan's content
fingerprint.  That buys the search engine everything the dispatch fabric
already guarantees:

* **any worker topology** — the in-process serial drain, local worker
  processes, external ``python -m repro.dispatch work`` processes pointed
  at a probe directory, or (via :class:`ServiceProbeBackend`) the campaign
  service's supervised pool all produce byte-identical merged records;
* **crash-resume** — a killed sweep re-plans into the same fingerprinted
  directories, re-joins the existing plans, and workers resume from
  persisted shard records through the lease protocol;
* **memoized re-probing** — bisection revisits severities; an already
  merged probe directory is loaded, not re-flown.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.config import LandingSystemConfig
from repro.core.metrics import RunRecord
from repro.faults.search.curves import severity_label
from repro.faults.spec import FaultSpec
from repro.world.scenario_suite import ScenarioSuite

ProbeKey = tuple[str, tuple[str, ...]]


@dataclass(frozen=True)
class Probe:
    """One probe point: a severity-pinned fault spec over a scenario subset."""

    spec: FaultSpec
    scenario_ids: tuple[str, ...]

    @property
    def key(self) -> ProbeKey:
        """Identity for memoization: the spec hash covers severity."""
        return (self.spec.spec_hash(), self.scenario_ids)

    @property
    def label(self) -> str:
        return f"{self.spec.name}@{severity_label(self.spec.severity)}"


@dataclass(frozen=True)
class ProbeOutcome:
    """A probe's merged records (systems in sorted order, suite order within)."""

    probe: Probe
    records: tuple[RunRecord, ...]
    directory: Path | None = None


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "probe"


class DispatchProbeBackend:
    """Evaluates probes as dispatch plans under ``root`` (one dir each).

    ``workers`` selects the default drain: ``1`` drains each probe
    directory in-process (debuggable, monkeypatchable), ``>1`` spawns that
    many local worker processes per directory.  ``drain`` overrides the
    drain entirely with ``callable(directory)`` — the hook the search tests
    use to interleave, kill and resume workers deterministically, and the
    hook a cluster harness would use to fan probe directories out to
    external ``dispatch work`` fleets.
    """

    def __init__(
        self,
        root: str | Path,
        suite: ScenarioSuite,
        systems: Sequence[LandingSystemConfig],
        *,
        repetitions: int | None = None,
        shards: int = 1,
        workers: int = 1,
        platform: str = "desktop",
        mission: Any | None = None,
        lease_seconds: float | None = None,
        progress: Callable[[str], None] | None = None,
        drain: Callable[[Path], None] | None = None,
    ) -> None:
        from repro.dispatch.queue import DEFAULT_LEASE_SECONDS

        self.root = Path(root)
        self.suite = suite
        self.systems = list(systems)
        self.repetitions = repetitions
        self.shards = shards
        self.workers = workers
        self.platform = platform
        self.mission = mission
        self.lease_seconds = (
            DEFAULT_LEASE_SECONDS if lease_seconds is None else lease_seconds
        )
        self.progress = progress
        self.drain = drain
        self._scenarios = {s.scenario_id: s for s in suite.scenarios}
        if len(self._scenarios) != len(suite.scenarios):
            raise ValueError(
                "probe backends address scenarios by id; the suite has duplicates"
            )
        self._memo: dict[ProbeKey, ProbeOutcome] = {}

    # ------------------------------------------------------------------ #
    def describe(self) -> dict[str, Any]:
        """Provenance stamped into curve headers and reports."""
        return {
            "suite": self.suite.name or "campaign",
            "scenarios": len(self.suite),
            "repetitions": (
                self.suite.repetitions if self.repetitions is None else self.repetitions
            ),
            "systems": ", ".join(system.name for system in self.systems),
        }

    def _sub_suite(self, probe: Probe) -> ScenarioSuite:
        missing = [sid for sid in probe.scenario_ids if sid not in self._scenarios]
        if missing:
            raise ValueError(f"probe names scenarios not in the suite: {missing}")
        wanted = set(probe.scenario_ids)
        return ScenarioSuite(
            # Suite order, whatever order the probe listed ids in: sub-suites
            # (and therefore plan fingerprints) depend only on the subset.
            scenarios=[s for s in self.suite.scenarios if s.scenario_id in wanted],
            repetitions=self.suite.repetitions,
            name=self.suite.name,
        )

    def probe_plan(self, probe: Probe):
        """``(sub_suite, plan)`` for a probe — pure, nothing written."""
        from repro.dispatch.planner import build_plan

        sub_suite = self._sub_suite(probe)
        plan = build_plan(
            sub_suite,
            self.systems,
            shards=self.shards,
            repetitions=self.repetitions,
            mission=self.mission,
            platform=self.platform,
            faults=[probe.spec],
        )
        return sub_suite, plan

    def probe_dir(self, probe: Probe, fingerprint: str) -> Path:
        """Deterministic probe directory: readable slug + content fingerprint."""
        name = (
            f"{_slug(probe.spec.name)}"
            f"-s{severity_label(probe.spec.severity).replace('.', 'p')}"
            f"-{fingerprint[:12]}"
        )
        return self.root / name

    # ------------------------------------------------------------------ #
    def _drain(self, directory: Path, probe: Probe | None = None) -> None:
        import os

        from repro.dispatch.worker import run_local_workers, run_worker
        from repro.obs.export import flush_metrics

        # Correlation: the probe's spec-hash prefix travels by environment
        # (like REPRO_TRACE_DIR) so every worker this drain runs or spawns
        # stamps its runs' metrics and trace summaries with the probe id.
        previous = os.environ.get("REPRO_CORR_PROBE")
        if probe is not None:
            os.environ["REPRO_CORR_PROBE"] = probe.spec.spec_hash()[:10]
        try:
            if self.drain is not None:
                self.drain(directory)
            elif self.workers <= 1:
                run_worker(
                    directory, lease_seconds=self.lease_seconds, progress=self.progress
                )
            else:
                run_local_workers(
                    directory, workers=self.workers, lease_seconds=self.lease_seconds
                )
        finally:
            if probe is not None:
                if previous is None:
                    os.environ.pop("REPRO_CORR_PROBE", None)
                else:
                    os.environ["REPRO_CORR_PROBE"] = previous
        # Publish the evaluating process's own registry (probe-cache
        # counters, any in-process worker counters) next to the probe's
        # shard outputs so a fleet scrape over probe dirs sees it.
        flush_metrics(directory)

    def _load(self, probe: Probe, directory: Path) -> ProbeOutcome:
        from repro.bench.campaign import campaign_result_filename
        from repro.dispatch.merge import load_merged, merge_dispatch
        from repro.dispatch.planner import merged_dir

        out = merged_dir(directory)
        expected = {
            campaign_result_filename(system.name) for system in self.systems
        }
        have = {path.name for path in out.glob("*.jsonl")} if out.is_dir() else set()
        if not expected <= have:
            merge_dispatch(directory)
        results = load_merged(directory)
        records = tuple(
            record for name in sorted(results) for record in results[name].records
        )
        return ProbeOutcome(probe=probe, records=records, directory=directory)

    def evaluate(self, probes: Sequence[Probe]) -> list[ProbeOutcome]:
        """Evaluate a probe batch; returns outcomes aligned with ``probes``.

        Planning is idempotent and directories are content-addressed, so
        re-evaluating after a crash resumes exactly where the tree says the
        batch is; already-answered probes are served from memory.
        """
        from repro.dispatch.planner import plan_dispatch
        from repro.dispatch.queue import ShardQueue
        from repro.obs.metrics import METRICS

        cache = METRICS.counter(
            "repro_probe_cache_total", "Fault-probe evaluations by memo outcome."
        )
        fresh: list[tuple[Probe, Path]] = []
        seen: set[ProbeKey] = set()
        for probe in probes:
            if probe.key in self._memo or probe.key in seen:
                cache.inc(backend="dispatch", result="hit")
                continue
            cache.inc(backend="dispatch", result="miss")
            seen.add(probe.key)
            sub_suite, plan = self.probe_plan(probe)
            directory = self.probe_dir(probe, plan.fingerprint)
            plan_dispatch(
                directory,
                sub_suite,
                self.systems,
                shards=self.shards,
                repetitions=self.repetitions,
                mission=self.mission,
                platform=self.platform,
                faults=[probe.spec],
            )
            fresh.append((probe, directory))
            if self.progress is not None:
                self.progress(f"probe {probe.label}: {directory.name}")

        for probe, directory in fresh:
            if not ShardQueue(directory).all_done():
                self._drain(directory, probe)
        for probe, directory in fresh:
            self._memo[probe.key] = self._load(probe, directory)
        return [self._memo[probe.key] for probe in probes]


class ServiceProbeBackend:
    """Evaluates probes through a running campaign service (PR 6).

    Each probe is submitted as a standard job with an inline ``suite`` —
    the service plans it, its worker pool (plus any external workers) flies
    it, and the records come back through the existing paginated
    ``/jobs/{id}/records`` endpoint.  Submission is fingerprint-deduplicated
    server-side, so re-evaluating a probe (bisection revisits, resumed
    sweeps) re-joins the existing job instead of re-flying it.
    """

    def __init__(
        self,
        client: Any,
        suite: ScenarioSuite,
        systems: Sequence[str],
        *,
        repetitions: int | None = None,
        shards: int = 1,
        platform: str = "desktop",
        timeout: float = 600.0,
        poll_seconds: float = 0.25,
        page_size: int = 500,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        if isinstance(client, str):
            from repro.service.client import ServiceClient

            client = ServiceClient(client)
        self.client = client
        self.suite = suite
        self.systems = list(systems)
        self.repetitions = repetitions
        self.shards = shards
        self.platform = platform
        self.timeout = timeout
        self.poll_seconds = poll_seconds
        self.page_size = page_size
        self.progress = progress
        self._scenarios = {s.scenario_id: s for s in suite.scenarios}
        if len(self._scenarios) != len(suite.scenarios):
            raise ValueError(
                "probe backends address scenarios by id; the suite has duplicates"
            )
        self._memo: dict[ProbeKey, ProbeOutcome] = {}

    def describe(self) -> dict[str, Any]:
        # Resolve preset keys to display names so curve headers (and hence
        # curve bytes) match what a local backend over the same presets emits.
        from repro.core.config import PRESETS, preset

        names = [
            preset(name).name if name.strip().lower() in PRESETS else name
            for name in self.systems
        ]
        return {
            "suite": self.suite.name or "campaign",
            "scenarios": len(self.suite),
            "repetitions": (
                self.suite.repetitions if self.repetitions is None else self.repetitions
            ),
            "systems": ", ".join(names),
        }

    def _submission(self, probe: Probe) -> dict[str, Any]:
        missing = [sid for sid in probe.scenario_ids if sid not in self._scenarios]
        if missing:
            raise ValueError(f"probe names scenarios not in the suite: {missing}")
        wanted = set(probe.scenario_ids)
        scenarios = [s for s in self.suite.scenarios if s.scenario_id in wanted]
        payload: dict[str, Any] = {
            "suite": {
                "name": self.suite.name,
                "repetitions": self.suite.repetitions,
                "scenarios": [scenario.to_dict() for scenario in scenarios],
            },
            "systems": list(self.systems),
            "shards": self.shards,
            "platform": self.platform,
            "faults": [probe.spec.to_dict()],
        }
        if self.repetitions is not None:
            payload["repetitions"] = self.repetitions
        return payload

    def _fetch_records(self, job_id: str) -> tuple[RunRecord, ...]:
        records: list[RunRecord] = []
        offset = 0
        while True:
            page = self.client.records(job_id, offset=offset, limit=self.page_size)
            records.extend(RunRecord.from_dict(data) for data in page["records"])
            offset += len(page["records"])
            if offset >= page["total"] or not page["records"]:
                return tuple(records)

    def evaluate(self, probes: Sequence[Probe]) -> list[ProbeOutcome]:
        from repro.obs.metrics import METRICS

        cache = METRICS.counter(
            "repro_probe_cache_total", "Fault-probe evaluations by memo outcome."
        )
        submitted: list[tuple[Probe, str]] = []
        seen: set[ProbeKey] = set()
        for probe in probes:
            if probe.key in self._memo or probe.key in seen:
                cache.inc(backend="service", result="hit")
                continue
            cache.inc(backend="service", result="miss")
            seen.add(probe.key)
            response = self.client.submit(self._submission(probe))
            submitted.append((probe, response["id"]))
            if self.progress is not None:
                self.progress(f"probe {probe.label}: job {response['id']}")
        for probe, job_id in submitted:
            status = self.client.wait(
                job_id, timeout=self.timeout, poll_seconds=self.poll_seconds
            )
            if status["state"] != "done":
                raise RuntimeError(
                    f"probe {probe.label} (job {job_id}) ended {status['state']!r}"
                )
            self._memo[probe.key] = ProbeOutcome(
                probe=probe, records=self._fetch_records(job_id)
            )
        return [self._memo[probe.key] for probe in probes]
