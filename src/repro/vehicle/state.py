"""Vehicle state containers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Pose, Quaternion, Vec3


@dataclass
class VehicleState:
    """Ground-truth kinematic state of the quadrotor."""

    position: Vec3 = field(default_factory=Vec3.zero)
    velocity: Vec3 = field(default_factory=Vec3.zero)
    acceleration: Vec3 = field(default_factory=Vec3.zero)
    orientation: Quaternion = field(default_factory=Quaternion.identity)
    angular_rate: Vec3 = field(default_factory=Vec3.zero)

    @property
    def pose(self) -> Pose:
        return Pose(self.position, self.orientation)

    @property
    def speed(self) -> float:
        return self.velocity.norm()

    @property
    def altitude(self) -> float:
        return self.position.z

    def copy(self) -> "VehicleState":
        return VehicleState(
            position=self.position,
            velocity=self.velocity,
            acceleration=self.acceleration,
            orientation=self.orientation,
            angular_rate=self.angular_rate,
        )


@dataclass
class EstimatedState:
    """The state estimate the landing system sees (EKF output)."""

    position: Vec3 = field(default_factory=Vec3.zero)
    velocity: Vec3 = field(default_factory=Vec3.zero)
    orientation: Quaternion = field(default_factory=Quaternion.identity)
    position_std: Vec3 = field(default_factory=lambda: Vec3(1.0, 1.0, 1.0))

    @property
    def pose(self) -> Pose:
        return Pose(self.position, self.orientation)

    @property
    def altitude(self) -> float:
        return self.position.z

    def error_to(self, truth: VehicleState) -> float:
        """Euclidean estimation error against the ground truth (metres)."""
        return self.position.distance_to(truth.position)
