"""Wind and gust model.

Mean wind blows along a fixed heading with the speed given by the scenario's
weather; gusts follow a first-order (Dryden-like) coloured-noise process whose
intensity is the weather's ``gust_intensity``.  Wind perturbs the vehicle
dynamics and is the main cause of the degraded real-world landing accuracy
during the final descent (§V.C).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry import Vec3
from repro.world.weather import Weather


class WindModel:
    """Time-correlated wind disturbance."""

    def __init__(self, weather: Weather, seed: int = 0, gust_time_constant: float = 2.0) -> None:
        self._rng = np.random.default_rng(seed)
        self.mean_speed = weather.wind_speed
        self.gust_intensity = weather.gust_intensity
        heading = float(self._rng.uniform(0, 2 * math.pi))
        self.mean_direction = Vec3(math.cos(heading), math.sin(heading), 0.0)
        self.gust_time_constant = gust_time_constant
        self._gust = np.zeros(3)

    def step(self, dt: float) -> Vec3:
        """Advance the gust process and return the current wind velocity (m/s)."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        alpha = math.exp(-dt / self.gust_time_constant)
        gust_std = self.gust_intensity * max(self.mean_speed, 1.0) * 0.5
        self._gust = alpha * self._gust + math.sqrt(max(1e-9, 1 - alpha**2)) * self._rng.normal(
            0.0, gust_std, size=3
        )
        # Vertical gusts are weaker than horizontal ones.
        gust = Vec3(self._gust[0], self._gust[1], self._gust[2] * 0.3)
        return self.mean_direction * self.mean_speed + gust

    @property
    def is_calm(self) -> bool:
        return self.mean_speed < 0.5 and self.gust_intensity < 0.05
