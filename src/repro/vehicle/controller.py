"""Cascaded position -> velocity controller.

The outer loop converts a position setpoint into a velocity command with a
proportional gain and speed limits, mirroring PX4's multicopter position
controller in offboard mode.  Trajectory following in the landing system
works by feeding successive waypoints of the planned path to this controller.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Vec3
from repro.vehicle.state import EstimatedState


@dataclass(frozen=True)
class ControllerGains:
    """Outer-loop gains and limits."""

    position_p: float = 1.1
    max_horizontal_speed: float = 5.0
    max_vertical_speed: float = 2.0
    max_descent_speed: float = 1.2
    approach_slowdown_radius: float = 3.0


class PositionController:
    """Proportional position controller producing velocity setpoints."""

    def __init__(self, gains: ControllerGains | None = None) -> None:
        self.gains = gains or ControllerGains()

    def velocity_command(
        self,
        estimate: EstimatedState,
        target: Vec3,
        speed_limit: float | None = None,
    ) -> Vec3:
        """Velocity setpoint that moves the vehicle towards ``target``.

        Args:
            estimate: current state estimate.
            target: position setpoint in world coordinates.
            speed_limit: optional extra cap on the horizontal speed (the
                landing state uses a low cap during the final descent).
        """
        gains = self.gains
        error = target - estimate.position
        command = error * gains.position_p

        # Slow down smoothly when close to the target.
        distance = error.norm()
        if distance < gains.approach_slowdown_radius:
            scale = max(0.15, distance / gains.approach_slowdown_radius)
            command = command * scale

        horizontal_cap = gains.max_horizontal_speed
        if speed_limit is not None:
            horizontal_cap = min(horizontal_cap, speed_limit)
        horizontal = Vec3(command.x, command.y, 0.0).clamp_norm(horizontal_cap)

        vertical = command.z
        if vertical > gains.max_vertical_speed:
            vertical = gains.max_vertical_speed
        elif vertical < -gains.max_descent_speed:
            vertical = -gains.max_descent_speed

        return Vec3(horizontal.x, horizontal.y, vertical)

    def is_at(self, estimate: EstimatedState, target: Vec3, tolerance: float = 0.6) -> bool:
        """Whether the vehicle has reached the setpoint within ``tolerance``."""
        return estimate.position.distance_to(target) <= tolerance
