"""The flight stack: dynamics + sensing + estimation + control + flight modes.

:class:`Autopilot` is the single object the landing system interacts with,
playing the role PX4 plays on the real platform.  It owns the simulated
sensors and the EKF, exposes the current state estimate, accepts position
setpoints in OFFBOARD mode, and implements TAKEOFF, LAND and RETURN (failsafe)
behaviours internally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Pose, Quaternion, Vec3
from repro.sensors.barometer import Barometer
from repro.sensors.gps import GpsSensor
from repro.sensors.imu import ImuSensor, ImuQuality
from repro.sensors.rangefinder import Rangefinder
from repro.vehicle.controller import PositionController
from repro.vehicle.dynamics import QuadrotorDynamics, QuadrotorLimits
from repro.vehicle.ekf import PositionEkf
from repro.vehicle.state import EstimatedState, VehicleState
from repro.vehicle.wind import WindModel
from repro.world.world import World


class FlightMode(enum.Enum):
    """Flight modes exposed by the autopilot."""

    IDLE = "idle"
    TAKEOFF = "takeoff"
    OFFBOARD = "offboard"
    LAND = "land"
    RETURN = "return"
    LANDED = "landed"


@dataclass
class AutopilotConfig:
    """Configuration of the simulated flight stack."""

    takeoff_altitude: float = 15.0
    takeoff_climb_rate: float = 1.8
    landing_descent_rate: float = 0.8
    return_altitude: float = 20.0
    gps_rate_divisor: int = 5
    limits: QuadrotorLimits = field(default_factory=QuadrotorLimits)
    imu_quality: ImuQuality = field(default_factory=ImuQuality.consumer_grade)


class Autopilot:
    """Simulated PX4-style flight controller.

    Args:
        world: the simulated world (for sensor measurements and wind).
        config: flight-stack configuration.
        home: take-off position.
        seed: seed shared by the onboard sensors.
    """

    def __init__(
        self,
        world: World,
        config: AutopilotConfig | None = None,
        home: Vec3 = Vec3.zero(),
        seed: int = 0,
    ) -> None:
        self.world = world
        self.config = config or AutopilotConfig()
        self.home = home

        self.dynamics = QuadrotorDynamics(self.config.limits)
        self.dynamics.teleport(home)
        self.wind = WindModel(world.weather, seed=seed + 1)
        self.controller = PositionController()

        self.gps = GpsSensor(seed=seed + 2)
        self.imu = ImuSensor(quality=self.config.imu_quality, seed=seed + 3)
        self.barometer = Barometer(seed=seed + 4)
        self.rangefinder = Rangefinder(seed=seed + 5)

        self.ekf = PositionEkf()
        self.ekf.reset_to(home)

        self.mode = FlightMode.IDLE
        self.time = 0.0
        self._setpoint: Vec3 | None = None
        self._setpoint_speed_limit: float | None = None
        self._setpoint_yaw = 0.0
        self._tick = 0

    # ------------------------------------------------------------------ #
    # commands (the landing system's interface)
    # ------------------------------------------------------------------ #
    def arm_and_takeoff(self, altitude: float | None = None) -> None:
        """Begin an automatic climb to the takeoff altitude."""
        if altitude is not None:
            self.config.takeoff_altitude = altitude
        self.mode = FlightMode.TAKEOFF

    def set_position_setpoint(
        self, target: Vec3, yaw: float | None = None, speed_limit: float | None = None
    ) -> None:
        """Offboard position setpoint; switches to OFFBOARD if airborne."""
        self._setpoint = target
        self._setpoint_speed_limit = speed_limit
        if yaw is not None:
            self._setpoint_yaw = yaw
        if self.mode in (FlightMode.OFFBOARD, FlightMode.TAKEOFF):
            self.mode = FlightMode.OFFBOARD

    def command_land(self) -> None:
        """Descend vertically at the current horizontal position."""
        self.mode = FlightMode.LAND

    def command_return(self) -> None:
        """Failsafe: climb to the return altitude and fly back to home."""
        self.mode = FlightMode.RETURN

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def true_state(self) -> VehicleState:
        return self.dynamics.state

    @property
    def estimated_state(self) -> EstimatedState:
        return self.ekf.estimate()

    @property
    def estimated_pose(self) -> Pose:
        return self.estimated_state.pose

    @property
    def is_landed(self) -> bool:
        return self.mode is FlightMode.LANDED

    @property
    def estimation_error(self) -> float:
        """Current EKF position error (ground truth minus estimate), metres."""
        return self.estimated_state.error_to(self.true_state)

    def range_to_ground(self) -> float | None:
        """Downward rangefinder reading."""
        return self.rangefinder.measure(self.world, self.true_state.pose)

    # ------------------------------------------------------------------ #
    # simulation step
    # ------------------------------------------------------------------ #
    def step(self, dt: float) -> VehicleState:
        """Advance the flight stack by ``dt`` seconds."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.time += dt
        self._tick += 1

        self._run_mode_logic()

        wind = self.wind.step(dt)
        state = self.dynamics.step(dt, wind=wind)

        # Sensor measurements and estimation.
        imu_sample = self.imu.measure(state.acceleration, state.angular_rate, self.time)
        self.ekf.predict(imu_sample.acceleration, dt)
        self.ekf.update_orientation(state.orientation)
        if self._tick % self.config.gps_rate_divisor == 0:
            fix = self.gps.measure(state.position, self.world.weather, self.time)
            self.ekf.update_gps(fix)
        self.ekf.update_altitude(self.barometer.measure(state.position.z))

        self._check_touchdown(state)
        return state

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_mode_logic(self) -> None:
        estimate = self.estimated_state
        if self.mode is FlightMode.IDLE or self.mode is FlightMode.LANDED:
            self.dynamics.command_velocity(Vec3.zero())
            return

        if self.mode is FlightMode.TAKEOFF:
            if estimate.altitude >= self.config.takeoff_altitude - 0.3:
                self.mode = FlightMode.OFFBOARD
            else:
                self.dynamics.command_velocity(
                    Vec3(0.0, 0.0, self.config.takeoff_climb_rate), yaw=self._setpoint_yaw
                )
                return

        if self.mode is FlightMode.OFFBOARD:
            if self._setpoint is None:
                self.dynamics.command_velocity(Vec3.zero())
                return
            velocity = self.controller.velocity_command(
                estimate, self._setpoint, speed_limit=self._setpoint_speed_limit
            )
            self.dynamics.command_velocity(velocity, yaw=self._setpoint_yaw)
            return

        if self.mode is FlightMode.LAND:
            self.dynamics.command_velocity(
                Vec3(0.0, 0.0, -self.config.landing_descent_rate), yaw=self._setpoint_yaw
            )
            return

        if self.mode is FlightMode.RETURN:
            target = self.home.with_z(self.config.return_altitude)
            if estimate.position.horizontal_distance_to(self.home) < 1.0:
                self.mode = FlightMode.LAND
                return
            if estimate.altitude < self.config.return_altitude - 0.5:
                self.dynamics.command_velocity(Vec3(0.0, 0.0, 1.5))
            else:
                velocity = self.controller.velocity_command(estimate, target)
                self.dynamics.command_velocity(velocity)
            return

    def _check_touchdown(self, state: VehicleState) -> None:
        if self.mode is not FlightMode.LAND:
            return
        range_reading = self.rangefinder.measure(self.world, state.pose)
        on_surface = (range_reading is not None and range_reading < 0.12) or state.position.z < 0.05
        if on_surface and abs(state.velocity.z) < 0.6:
            self.mode = FlightMode.LANDED
            self.dynamics.command_velocity(Vec3.zero())
