"""Position/velocity state estimator.

A per-axis linear Kalman filter fusing GPS position fixes, barometric
altitude and IMU acceleration (used as the process input).  Its important
property for the reproduction is faithfulness to how PX4's EKF behaves under
GPS drift: because the drift is slowly varying and self-consistent, the filter
*tracks* it rather than rejecting it, so the whole estimated frame — and with
it the occupancy map built from estimated poses — shifts with the drift
(§V.C, Fig. 5c/5d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Quaternion, Vec3
from repro.sensors.gps import GpsFix
from repro.vehicle.state import EstimatedState


@dataclass(frozen=True)
class EkfConfig:
    """Tuning of the estimator."""

    gps_position_std: float = 0.6
    baro_altitude_std: float = 0.15
    accel_process_std: float = 0.5
    initial_position_std: float = 1.0
    initial_velocity_std: float = 0.5


class PositionEkf:
    """Three independent position/velocity Kalman filters (one per axis)."""

    def __init__(self, config: EkfConfig | None = None) -> None:
        self.config = config or EkfConfig()
        # State per axis: [position, velocity].
        self._state = np.zeros((3, 2))
        c = self.config
        self._covariance = np.array(
            [np.diag([c.initial_position_std**2, c.initial_velocity_std**2]) for _ in range(3)]
        )
        self._orientation = Quaternion.identity()
        self._initialised = False

    # ------------------------------------------------------------------ #
    # filter steps
    # ------------------------------------------------------------------ #
    def predict(self, acceleration: Vec3, dt: float) -> None:
        """Propagate with the measured acceleration as the control input."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        accel = acceleration.to_array()
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        control = np.array([0.5 * dt * dt, dt])
        process_noise = (self.config.accel_process_std**2) * np.array(
            [[dt**4 / 4, dt**3 / 2], [dt**3 / 2, dt**2]]
        )
        for axis in range(3):
            self._state[axis] = transition @ self._state[axis] + control * accel[axis]
            self._covariance[axis] = (
                transition @ self._covariance[axis] @ transition.T + process_noise
            )

    def update_gps(self, fix: GpsFix) -> None:
        """Fuse a GPS fix (all three axes)."""
        measurement = fix.position.to_array()
        # Scale measurement noise with the reported DOP, as PX4 does.
        std = self.config.gps_position_std * (0.5 + fix.hdop / 4.0)
        for axis in range(3):
            axis_std = std if axis < 2 else std * 1.5
            self._scalar_update(axis, measurement[axis], axis_std**2)
        self._initialised = True

    def update_altitude(self, altitude: float) -> None:
        """Fuse a barometric altitude measurement (z axis only)."""
        self._scalar_update(2, altitude, self.config.baro_altitude_std**2)

    def update_orientation(self, orientation: Quaternion) -> None:
        """Attitude is taken from the attitude estimator directly."""
        self._orientation = orientation

    def _scalar_update(self, axis: int, measured_position: float, variance: float) -> None:
        observation = np.array([1.0, 0.0])
        covariance = self._covariance[axis]
        innovation = measured_position - observation @ self._state[axis]
        innovation_variance = observation @ covariance @ observation + variance
        gain = covariance @ observation / innovation_variance
        self._state[axis] = self._state[axis] + gain * innovation
        self._covariance[axis] = (np.eye(2) - np.outer(gain, observation)) @ covariance

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    @property
    def is_initialised(self) -> bool:
        return self._initialised

    def estimate(self) -> EstimatedState:
        position = Vec3(self._state[0, 0], self._state[1, 0], self._state[2, 0])
        velocity = Vec3(self._state[0, 1], self._state[1, 1], self._state[2, 1])
        position_std = Vec3(
            float(np.sqrt(self._covariance[0][0, 0])),
            float(np.sqrt(self._covariance[1][0, 0])),
            float(np.sqrt(self._covariance[2][0, 0])),
        )
        return EstimatedState(
            position=position,
            velocity=velocity,
            orientation=self._orientation,
            position_std=position_std,
        )

    def reset_to(self, position: Vec3) -> None:
        """Hard-reset the filter (used at scenario initialisation)."""
        for axis, value in enumerate(position.to_tuple()):
            self._state[axis] = np.array([value, 0.0])
            self._covariance[axis] = np.diag(
                [self.config.initial_position_std**2, self.config.initial_velocity_std**2]
            )
        self._initialised = True
