"""Simulated quadrotor vehicle and flight stack (the PX4 substitute).

The landing system talks to the vehicle the way the paper's companion
computer talks to PX4: it reads a state estimate and sends position/velocity
setpoints in offboard mode.  Internally the package provides:

* :mod:`repro.vehicle.state` — ground-truth and estimated state containers.
* :mod:`repro.vehicle.dynamics` — simplified quadrotor dynamics with
  velocity/acceleration limits and wind forces.
* :mod:`repro.vehicle.wind` — mean wind plus first-order gust model.
* :mod:`repro.vehicle.ekf` — a per-axis Kalman filter fusing GPS, barometer
  and IMU, which inherits GPS drift exactly as the real EKF does.
* :mod:`repro.vehicle.controller` — cascaded position -> velocity controller.
* :mod:`repro.vehicle.autopilot` — flight modes (takeoff, offboard, land,
  failsafe RTL) wrapping dynamics + estimation + control into one steppable
  object.
"""

from repro.vehicle.state import VehicleState, EstimatedState
from repro.vehicle.dynamics import QuadrotorDynamics, QuadrotorLimits
from repro.vehicle.wind import WindModel
from repro.vehicle.ekf import PositionEkf
from repro.vehicle.controller import PositionController
from repro.vehicle.autopilot import Autopilot, FlightMode

__all__ = [
    "VehicleState",
    "EstimatedState",
    "QuadrotorDynamics",
    "QuadrotorLimits",
    "WindModel",
    "PositionEkf",
    "PositionController",
    "Autopilot",
    "FlightMode",
]
