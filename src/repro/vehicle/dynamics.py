"""Simplified quadrotor dynamics.

The model is a point mass with first-order velocity tracking, acceleration
and velocity limits, a tilt-derived attitude, and additive wind drag.  It is
deliberately simpler than a full rigid-body model, but it preserves the
properties that drive the paper's failure modes:

* finite acceleration means the vehicle overshoots sharp trajectory corners
  (the MLS-V3 "sharp RRT* corner" failures);
* wind displaces the vehicle during the final descent (real-world accuracy);
* commanded velocity is tracked with a lag, so late replanning can fail to
  prevent an impending collision (HIL deadline misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Quaternion, Vec3
from repro.vehicle.state import VehicleState

GRAVITY = 9.81


@dataclass(frozen=True)
class QuadrotorLimits:
    """Performance envelope of the simulated airframe (F450-class)."""

    max_horizontal_speed: float = 6.0
    max_vertical_speed: float = 2.5
    max_acceleration: float = 4.0
    max_tilt_radians: float = 0.5
    velocity_time_constant: float = 0.45
    drag_coefficient: float = 0.15


class QuadrotorDynamics:
    """First-order velocity-tracking quadrotor model.

    The controller commands a velocity; the airframe tracks it with a time
    constant and acceleration limit, while wind adds a drag force proportional
    to the relative airspeed.
    """

    def __init__(
        self,
        limits: QuadrotorLimits | None = None,
        initial_state: VehicleState | None = None,
    ) -> None:
        self.limits = limits or QuadrotorLimits()
        self.state = initial_state or VehicleState()
        self._commanded_velocity = Vec3.zero()
        self._commanded_yaw = 0.0

    # ------------------------------------------------------------------ #
    # commands
    # ------------------------------------------------------------------ #
    def command_velocity(self, velocity: Vec3, yaw: float | None = None) -> None:
        """Set the velocity setpoint (clamped to the airframe envelope)."""
        horizontal = Vec3(velocity.x, velocity.y, 0.0).clamp_norm(
            self.limits.max_horizontal_speed
        )
        vertical = max(-self.limits.max_vertical_speed, min(self.limits.max_vertical_speed, velocity.z))
        self._commanded_velocity = Vec3(horizontal.x, horizontal.y, vertical)
        if yaw is not None:
            self._commanded_yaw = yaw

    @property
    def commanded_velocity(self) -> Vec3:
        return self._commanded_velocity

    # ------------------------------------------------------------------ #
    # integration
    # ------------------------------------------------------------------ #
    def step(self, dt: float, wind: Vec3 = Vec3.zero()) -> VehicleState:
        """Advance the dynamics by ``dt`` seconds and return the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        limits = self.limits
        state = self.state

        # First-order velocity tracking towards the commanded velocity.
        velocity_error = self._commanded_velocity - state.velocity
        desired_accel = velocity_error / limits.velocity_time_constant
        # Wind adds drag proportional to relative airspeed.
        relative_air = wind - state.velocity
        desired_accel = desired_accel + relative_air * limits.drag_coefficient
        accel = desired_accel.clamp_norm(limits.max_acceleration)

        new_velocity = state.velocity + accel * dt
        horizontal = Vec3(new_velocity.x, new_velocity.y, 0.0).clamp_norm(
            limits.max_horizontal_speed * 1.2
        )
        vertical = max(
            -limits.max_vertical_speed * 1.2,
            min(limits.max_vertical_speed * 1.2, new_velocity.z),
        )
        new_velocity = Vec3(horizontal.x, horizontal.y, vertical)
        new_position = state.position + new_velocity * dt

        # Keep the vehicle on or above the ground.
        if new_position.z < 0.0:
            new_position = new_position.with_z(0.0)
            new_velocity = new_velocity.with_z(max(0.0, new_velocity.z))

        # Attitude: tilt in the direction of horizontal acceleration, bounded.
        tilt_x = max(-limits.max_tilt_radians, min(limits.max_tilt_radians, accel.x / GRAVITY))
        tilt_y = max(-limits.max_tilt_radians, min(limits.max_tilt_radians, accel.y / GRAVITY))
        orientation = Quaternion.from_euler(-tilt_y * 0.5, tilt_x * 0.5, self._commanded_yaw)

        angular_rate = Vec3(
            0.0, 0.0, (self._commanded_yaw - state.orientation.yaw) / max(dt, 1e-6)
        ).clamp_norm(2.0)

        self.state = VehicleState(
            position=new_position,
            velocity=new_velocity,
            acceleration=accel,
            orientation=orientation,
            angular_rate=angular_rate,
        )
        return self.state

    def teleport(self, position: Vec3, yaw: float = 0.0) -> None:
        """Reset the vehicle to a new position at rest (scenario initialisation)."""
        self.state = VehicleState(
            position=position,
            orientation=Quaternion.from_yaw(yaw),
        )
        self._commanded_velocity = Vec3.zero()
        self._commanded_yaw = yaw
