"""Reproduction of "Towards Robust Autonomous Landing Systems" (DSN 2025).

A pure-Python reproduction of the paper's marker-based autonomous UAV landing
system and its evaluation: three system generations (MLS-V1/V2/V3), a
simulated world / flight stack / sensor suite standing in for AirSim + PX4,
from-scratch marker detection (classical and learned), occupancy mapping
(dense grid and octree), path planning (local A* and RRT*), the decision
state machine, and the SIL / HIL / real-world campaign harness.

Systems are composed through a pluggable component registry, so the ablation
surface is the full detector x mapper x planner grid (plus anything you
register yourself), not just the paper's three presets.

Quickstart — one mission::

    from repro import mls_v3, build_evaluation_suite, run_scenario

    suite = build_evaluation_suite()
    record = run_scenario(suite.scenarios[0], mls_v3())
    print(record.outcome, record.landing_error)

Quickstart — a parallel campaign over a custom composition::

    from repro import Campaign, LandingSystemConfig, mls_v1

    hybrid = LandingSystemConfig.custom(
        detector="opencv", mapper="dense-grid", planner="ego-local-astar",
        name="V1.5-hybrid",
    )
    results = Campaign(mls_v1(), hybrid).scenarios(4).parallel(4).run()
    for name, campaign in results.items():
        print(name, f"{campaign.success_rate:.0%}")

Quickstart — registering a custom component::

    from repro import register_detector

    @register_detector("my-detector", latency=0.02)
    def build_my_detector(ctx):
        return MyDetector(seed=ctx.seed)

    config = LandingSystemConfig.custom(detector="my-detector")
"""

from repro.analysis import (
    CampaignAnalysis,
    CampaignComparison,
    SystemSummary,
    compare_campaigns,
    summarize_records,
    wilson_interval,
)
from repro.bench.campaign import (
    Campaign,
    CampaignConfig,
    run_campaign,
    run_field_campaign,
    run_hil_campaign,
)
from repro.core.config import (
    DetectorKind,
    LandingSystemConfig,
    MapperKind,
    PlannerKind,
    SystemGeneration,
    ablation_grid,
    config_for,
    mls_v1,
    mls_v2,
    mls_v3,
    preset,
)
from repro.core.landing_system import LandingSystem
from repro.core.metrics import CampaignResult, RunOutcome, RunRecord
from repro.core.mission import MissionConfig, MissionRunner, run_scenario
from repro.core.registry import (
    REGISTRY,
    ComponentContext,
    ComponentError,
    ComponentRegistry,
    ComponentSpec,
    MappingStack,
    register_detector,
    register_mapper,
    register_planner,
)
from repro.dispatch import (
    DispatchPlan,
    ShardQueue,
    load_merged,
    load_plan,
    merge_dispatch,
    plan_dispatch,
    run_local_workers,
    run_worker,
)
from repro.faults import (
    FAULT_MODES,
    FAULT_PRESETS,
    FailureMode,
    FaultHarness,
    FaultSpec,
    accumulate_coverage,
    classify_record,
    render_coverage_report,
    resolve_faults,
)
from repro.world.scenario import Scenario
from repro.world.scenario_gen import (
    STRESS_AXES,
    SUITE_PRESETS,
    ScenarioSpec,
    SuiteSpec,
    Uniform,
    axis_coverage,
    generate_suite,
    suite_preset,
)
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite

__version__ = "1.5.0"

__all__ = [
    # configuration & presets
    "LandingSystemConfig",
    "SystemGeneration",
    "DetectorKind",
    "MapperKind",
    "PlannerKind",
    "config_for",
    "preset",
    "ablation_grid",
    "mls_v1",
    "mls_v2",
    "mls_v3",
    # component registry
    "REGISTRY",
    "ComponentContext",
    "ComponentError",
    "ComponentRegistry",
    "ComponentSpec",
    "MappingStack",
    "register_detector",
    "register_mapper",
    "register_planner",
    # system & missions
    "LandingSystem",
    "CampaignResult",
    "RunOutcome",
    "RunRecord",
    "MissionConfig",
    "MissionRunner",
    "run_scenario",
    # campaigns
    "Campaign",
    "CampaignConfig",
    "run_campaign",
    "run_hil_campaign",
    "run_field_campaign",
    # distributed dispatch
    "DispatchPlan",
    "ShardQueue",
    "load_merged",
    "load_plan",
    "merge_dispatch",
    "plan_dispatch",
    "run_local_workers",
    "run_worker",
    # fault injection & failure modes
    "FAULT_MODES",
    "FAULT_PRESETS",
    "FailureMode",
    "FaultHarness",
    "FaultSpec",
    "accumulate_coverage",
    "classify_record",
    "render_coverage_report",
    "resolve_faults",
    # analytics
    "CampaignAnalysis",
    "CampaignComparison",
    "SystemSummary",
    "compare_campaigns",
    "summarize_records",
    "wilson_interval",
    # scenarios
    "Scenario",
    "ScenarioSuite",
    "build_evaluation_suite",
    # scenario generation
    "STRESS_AXES",
    "SUITE_PRESETS",
    "ScenarioSpec",
    "SuiteSpec",
    "Uniform",
    "axis_coverage",
    "generate_suite",
    "suite_preset",
    "__version__",
]
