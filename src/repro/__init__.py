"""Reproduction of "Towards Robust Autonomous Landing Systems" (DSN 2025).

A pure-Python reproduction of the paper's marker-based autonomous UAV landing
system and its evaluation: three system generations (MLS-V1/V2/V3), a
simulated world / flight stack / sensor suite standing in for AirSim + PX4,
from-scratch marker detection (classical and learned), occupancy mapping
(dense grid and octree), path planning (local A* and RRT*), the decision
state machine, and the SIL / HIL / real-world campaign harness.

Quickstart::

    from repro import mls_v3, build_evaluation_suite, run_scenario

    suite = build_evaluation_suite()
    record = run_scenario(suite.scenarios[0], mls_v3())
    print(record.outcome, record.landing_error)
"""

from repro.core.config import (
    LandingSystemConfig,
    SystemGeneration,
    config_for,
    mls_v1,
    mls_v2,
    mls_v3,
)
from repro.core.landing_system import LandingSystem
from repro.core.metrics import CampaignResult, RunOutcome, RunRecord
from repro.core.mission import MissionConfig, MissionRunner, run_scenario
from repro.world.scenario import Scenario
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite

__version__ = "1.0.0"

__all__ = [
    "LandingSystemConfig",
    "SystemGeneration",
    "config_for",
    "mls_v1",
    "mls_v2",
    "mls_v3",
    "LandingSystem",
    "CampaignResult",
    "RunOutcome",
    "RunRecord",
    "MissionConfig",
    "MissionRunner",
    "run_scenario",
    "Scenario",
    "ScenarioSuite",
    "build_evaluation_suite",
    "__version__",
]
