"""Render campaign results in the layout of the paper's tables."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench import paper_values
from repro.core.metrics import CampaignResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with padded columns."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """``0.5 -> "50.0%"``; NaN renders as ``n/a`` (no data, not zero).

    The one percent formatter for every byte-stable report (coverage,
    sweep curves): a single rounding rule keeps committed baselines from
    drifting when a renderer moves between modules.
    """
    return "n/a" if value != value else f"{100.0 * value:.1f}%"


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """GitHub-flavoured markdown table (byte-stable: pure function of input).

    Cells are padded to a common column width so the source reads as cleanly
    as the render; literal pipes in cells are escaped.  Used by the analysis
    reports (:mod:`repro.analysis.report`) next to the plain-text benches.
    """
    def clean(cell: object) -> str:
        return str(cell).replace("|", "\\|")

    table = [[clean(cell) for cell in row] for row in rows]
    header_cells = [clean(header) for header in headers]
    for row in table:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}: {row}"
            )
    widths = [
        max(len(column_cell) for column_cell in column)
        for column in zip(header_cells, *table)
    ]
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(w) for cell, w in zip(cells, widths)) + " |"

    lines = [line(header_cells), line(["-" * w for w in widths])]
    lines.extend(line(row) for row in table)
    return "\n".join(lines)


def render_outcome_rates(results: Mapping[str, CampaignResult]) -> str:
    """The CLI results table: per-system run counts and outcome rates.

    Shared by every campaign-running CLI (``repro.scenarios run``,
    ``repro.dispatch``, ``repro.faults run``) so the columns cannot drift.
    """
    rows = [
        [
            name,
            len(result),
            f"{100.0 * result.success_rate:.1f}%",
            f"{100.0 * result.collision_failure_rate:.1f}%",
            f"{100.0 * result.poor_landing_failure_rate:.1f}%",
        ]
        for name, result in results.items()
    ]
    return format_table(["System", "Runs", "Success", "Collision", "Poor landing"], rows)


def render_landing_table(
    results: Mapping[str, CampaignResult],
    paper: Mapping[str, Mapping[str, float]] | None = None,
    title: str = "Table I: Experiment Results of SIL Testing",
) -> str:
    """Tables I / III: landing outcome rates per system, next to the paper's."""
    paper = paper if paper is not None else paper_values.TABLE_1_SIL
    headers = [
        "Landing System",
        "Successful Landing Rate",
        "Failure rate due to Collision",
        "Failure rate due to poor landing",
        "Paper (success/collision/poor)",
        "Runs",
    ]
    rows = []
    for name, result in results.items():
        reference = paper.get(name)
        reference_text = (
            f"{reference['success']:.2f}% / {reference['collision']:.2f}% / {reference['poor_landing']:.2f}%"
            if reference
            else "-"
        )
        rows.append(
            [
                name,
                f"{100 * result.success_rate:.2f}%",
                f"{100 * result.collision_failure_rate:.2f}%",
                f"{100 * result.poor_landing_failure_rate:.2f}%",
                reference_text,
                len(result),
            ]
        )
    return f"{title}\n{format_table(headers, rows)}"


def render_detection_table(
    results: Mapping[str, CampaignResult],
    title: str = "Table II: Marker Detection Results",
) -> str:
    """Table II: false-negative rate per system, next to the paper's."""
    headers = [
        "Marker Detection Results",
        "Implementation",
        "False Negative Rate (%)",
        "Paper FN (%)",
        "Marker-visible frames",
    ]
    rows = []
    for name, result in results.items():
        reference = paper_values.TABLE_2_DETECTION.get(name, {})
        implementation = "OpenCV" if name == "MLS-V1" else "TPH-YOLO"
        stats = result.detection_stats
        rows.append(
            [
                name,
                implementation,
                f"{100 * stats.false_negative_rate:.2f}",
                f"{reference.get('false_negative_rate', float('nan')):.2f}",
                stats.frames_with_visible_marker,
            ]
        )
    return f"{title}\n{format_table(headers, rows)}"


def render_resource_summary(
    result: CampaignResult,
    title: str = "Companion-computer utilisation",
) -> str:
    """The §V.B / Fig. 7 quantities: CPU, memory and GPU utilisation."""
    stats = result.resource_stats
    headers = ["Metric", "Reproduced", "Paper"]
    rows = [
        ["Mean CPU utilisation", f"{100 * stats.mean_cpu:.1f}%", "all 4 cores heavily utilised"],
        [
            "Mean memory use",
            f"{stats.mean_memory_mb / 1000:.2f} GB",
            f"~{paper_values.HIL_RESOURCES['memory_used_gb']:.1f} GB of "
            f"{paper_values.HIL_RESOURCES['memory_available_gb']:.1f} GB",
        ],
        ["Peak memory use", f"{stats.peak_memory_mb / 1000:.2f} GB", "-"],
        ["Mean GPU utilisation", f"{100 * stats.mean_gpu:.1f}%", "-"],
        ["Planning deadline misses", str(stats.deadline_misses), "collisions from late replans"],
    ]
    return f"{title}\n{format_table(headers, rows)}"


def render_landing_accuracy(
    sil_result: CampaignResult | None,
    field_result: CampaignResult | None,
    title: str = "Landing accuracy (distance from marker)",
) -> str:
    """§V.C: mean landing error, SIL/HIL vs real world."""
    headers = ["Setting", "Reproduced mean error", "Paper"]
    rows = []
    if sil_result is not None:
        rows.append(
            [
                "SIL / HIL",
                f"{sil_result.mean_landing_error:.2f} m",
                f"~{paper_values.LANDING_ACCURACY['sil_hil_mean_error_m']:.2f} m",
            ]
        )
    if field_result is not None:
        rows.append(
            [
                "Real world",
                f"{field_result.mean_landing_error:.2f} m",
                f"~{paper_values.LANDING_ACCURACY['real_world_mean_error_m']:.2f} m",
            ]
        )
    return f"{title}\n{format_table(headers, rows)}"
