"""Performance regression gate over ``BENCH_results.json`` meters.

The perf-smoke CI tier runs a small fixed-seed benchmark (see
``benchmarks/test_campaign_throughput.py``), which writes its meters into
``BENCH_results.json``.  This module compares selected meters against
committed floors and fails the build when throughput regresses below the
tolerance band — the cheap tripwire that keeps the vectorized mission loop
from silently decaying back towards its pre-optimisation speed.

Baseline format (``baselines/perf-smoke/throughput.json``)::

    {
      "schema": 1,
      "tolerance": 0.2,
      "meters": {
        "campaign_throughput/campaign_serial/runs_per_s": 0.3
      }
    }

Meter keys are ``<suite>/<bench>/<stat>`` paths into the results file; the
floor value is the *committed* minimum.  A measurement fails the gate when it
drops below ``floor * (1 - tolerance)``; a missing meter always fails, so
renaming a bench forces a deliberate re-baseline.  Floors are chosen with
generous headroom below locally measured numbers (see ``baseline``) because
CI machines are slower and noisier than developer machines — the gate exists
to catch order-of-magnitude regressions, not percent-level jitter.

Usage::

    python -m repro.bench.perfgate check \
        --results BENCH_results.json \
        --baseline baselines/perf-smoke/throughput.json

    python -m repro.bench.perfgate baseline \
        --results BENCH_results.json \
        --baseline baselines/perf-smoke/throughput.json --headroom 0.5
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

BASELINE_SCHEMA = 1
#: Fraction below the committed floor a meter may fall before failing.
DEFAULT_TOLERANCE = 0.2
#: ``baseline`` writes ``measured * headroom`` as the new floor by default.
DEFAULT_HEADROOM = 0.5


@dataclass(frozen=True)
class MeterCheck:
    """Outcome of one meter against its committed floor."""

    key: str
    floor: float
    measured: float | None
    threshold: float

    @property
    def passed(self) -> bool:
        return self.measured is not None and self.measured >= self.threshold

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        if self.measured is None:
            return f"[{status}] {self.key}: meter missing from results (floor {self.floor:g})"
        return (
            f"[{status}] {self.key}: measured {self.measured:g} "
            f"vs floor {self.floor:g} (threshold {self.threshold:g})"
        )


def load_results_meters(path: Path) -> dict[str, float]:
    """Flatten a schema-2 ``BENCH_results.json`` into meter-key -> value."""
    data = json.loads(path.read_text(encoding="utf-8"))
    meters: dict[str, float] = {}
    suites = data.get("suites", {})
    if not isinstance(suites, dict):
        return meters
    for suite, entries in suites.items():
        if not isinstance(entries, list):
            continue
        for entry in entries:
            if not isinstance(entry, dict) or "name" not in entry:
                continue
            name = entry["name"]
            for stat, value in entry.items():
                if stat == "name" or not isinstance(value, (int, float)):
                    continue
                meters[f"{suite}/{name}/{stat}"] = float(value)
    return meters


def load_baseline(path: Path) -> tuple[dict[str, float], float]:
    """The committed floors plus the tolerance fraction."""
    data = json.loads(path.read_text(encoding="utf-8"))
    schema = data.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ValueError(f"unsupported perf baseline schema {schema!r} in {path}")
    floors = {
        str(key): float(value) for key, value in data.get("meters", {}).items()
    }
    if not floors:
        raise ValueError(f"perf baseline {path} declares no meters")
    tolerance = float(data.get("tolerance", DEFAULT_TOLERANCE))
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    return floors, tolerance


def check_meters(
    measured: dict[str, float], floors: dict[str, float], tolerance: float
) -> list[MeterCheck]:
    return [
        MeterCheck(
            key=key,
            floor=floor,
            measured=measured.get(key),
            threshold=floor * (1.0 - tolerance),
        )
        for key, floor in sorted(floors.items())
    ]


def render_report(checks: list[MeterCheck], tolerance: float) -> str:
    lines = [
        "# Perf gate",
        "",
        f"- meters: {len(checks)}, tolerance: {tolerance:.0%} below committed floor",
        "",
    ]
    lines.extend(f"- {check.describe()}" for check in checks)
    failed = [check for check in checks if not check.passed]
    lines.append("")
    lines.append(
        "All meters within tolerance."
        if not failed
        else f"{len(failed)} meter(s) regressed beyond tolerance."
    )
    return "\n".join(lines) + "\n"


def render_trace_attribution(baseline_dir: str, current_dir: str) -> str:
    """Phase-level attribution for a failed gate, from two trace dirs.

    Lazy-imports the obs comparison engine so the gate itself keeps its
    tiny import footprint on the happy path.  Attribution is best-effort:
    unusable trace directories degrade to a note, never to a crash — the
    gate's own verdict already failed the build.
    """
    from repro.obs.compare import compare_phases, render_compare
    from repro.obs.report import collect_summaries

    try:
        baseline = collect_summaries(baseline_dir)
        current = collect_summaries(current_dir)
    except (FileNotFoundError, ValueError) as error:
        return f"(phase attribution unavailable: {error})\n"
    if not baseline or not current:
        return "(phase attribution unavailable: a trace directory has no summaries)\n"
    comparisons = compare_phases(baseline, current)
    body = render_compare(comparisons)
    return "## Phase attribution (flight traces)\n\n" + body


def _cmd_check(args: argparse.Namespace) -> int:
    floors, tolerance = load_baseline(Path(args.baseline))
    if args.tolerance is not None:
        tolerance = args.tolerance
    measured = load_results_meters(Path(args.results))
    checks = check_meters(measured, floors, tolerance)
    report = render_report(checks, tolerance)
    failed = not all(check.passed for check in checks)
    if failed and args.trace_baseline and args.trace_current:
        # A tripped floor says "slower"; the traces say *which phase*.
        report += "\n" + render_trace_attribution(
            args.trace_baseline, args.trace_current
        )
    if args.report:
        Path(args.report).parent.mkdir(parents=True, exist_ok=True)
        Path(args.report).write_text(report, encoding="utf-8")
    sys.stdout.write(report)
    return 1 if failed else 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    """Re-baseline: refresh every committed floor from the current results."""
    path = Path(args.baseline)
    floors, tolerance = load_baseline(path)
    measured = load_results_meters(Path(args.results))
    missing = sorted(key for key in floors if key not in measured)
    if missing:
        sys.stderr.write(
            "cannot re-baseline, meters missing from results: "
            + ", ".join(missing)
            + "\n"
        )
        return 1
    payload = {
        "schema": BASELINE_SCHEMA,
        "tolerance": tolerance,
        "meters": {
            key: round(measured[key] * args.headroom, 6) for key in sorted(floors)
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    sys.stdout.write(f"wrote {len(floors)} floor(s) to {path}\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perfgate",
        description="throughput regression gate over BENCH_results.json",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="fail when any meter regresses")
    check.add_argument("--results", required=True, help="BENCH_results.json path")
    check.add_argument("--baseline", required=True, help="committed floors JSON")
    check.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline's tolerance fraction",
    )
    check.add_argument("--report", default=None, help="write the report here too")
    check.add_argument(
        "--trace-baseline", default=None,
        help="baseline flight-trace dir; with --trace-current, a failed gate "
        "appends per-phase regression attribution (python -m repro.obs compare)",
    )
    check.add_argument(
        "--trace-current", default=None,
        help="current flight-trace dir for phase attribution on failure",
    )
    check.set_defaults(func=_cmd_check)

    baseline = sub.add_parser(
        "baseline", help="refresh the committed floors from current results"
    )
    baseline.add_argument("--results", required=True)
    baseline.add_argument("--baseline", required=True)
    baseline.add_argument(
        "--headroom", type=float, default=DEFAULT_HEADROOM,
        help="floor = measured * headroom (default %(default)s)",
    )
    baseline.set_defaults(func=_cmd_baseline)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
