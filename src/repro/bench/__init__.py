"""Evaluation harness: campaigns, table formatting and paper reference values.

* :mod:`repro.bench.campaign` — runs a scenario suite through one or more
  system generations on a chosen execution platform and aggregates
  :class:`~repro.core.metrics.CampaignResult` objects.
* :mod:`repro.bench.tables` — renders the aggregated results in the layout of
  the paper's tables (Tables I-III, Fig. 7's utilisation summary) next to the
  paper's reported values.
* :mod:`repro.bench.paper_values` — the numbers the paper reports, used for
  side-by-side comparison and for the shape checks in EXPERIMENTS.md.
"""

from repro.bench.campaign import (
    Campaign,
    CampaignConfig,
    run_campaign,
    run_hil_campaign,
    run_field_campaign,
)
from repro.bench.tables import (
    format_markdown_table,
    format_table,
    render_landing_table,
    render_detection_table,
    render_resource_summary,
)
from repro.bench import paper_values

__all__ = [
    "Campaign",
    "CampaignConfig",
    "run_campaign",
    "run_hil_campaign",
    "run_field_campaign",
    "format_markdown_table",
    "format_table",
    "render_landing_table",
    "render_detection_table",
    "render_resource_summary",
    "paper_values",
]
