"""Campaign runner: a scenario suite x system generations x platform.

The full paper campaign is 100 scenarios x 3 repetitions per system; in this
pure-Python reproduction each run takes tens of wall-clock seconds, so the
default campaign size is reduced and controlled by the
``REPRO_BENCH_SCENARIOS`` / ``REPRO_BENCH_REPETITIONS`` environment variables
(set them to 100 / 3 to run the paper-scale campaign).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.config import LandingSystemConfig, mls_v1, mls_v2, mls_v3
from repro.core.metrics import CampaignResult
from repro.core.mission import MissionConfig, MissionRunner
from repro.core.platform import DesktopPlatform, ExecutionPlatform
from repro.hil.jetson import JetsonNanoPlatform, JetsonNanoSpec
from repro.perception.neural.training import load_pretrained_detector_net
from repro.realworld.field_test import FieldTestConfig, run_field_scenario
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite

#: Default number of scenarios when the environment does not say otherwise.
DEFAULT_BENCH_SCENARIOS = 6
DEFAULT_BENCH_REPETITIONS = 1


def bench_scenario_count() -> int:
    """Campaign size, overridable via ``REPRO_BENCH_SCENARIOS``."""
    return int(os.environ.get("REPRO_BENCH_SCENARIOS", DEFAULT_BENCH_SCENARIOS))


def bench_repetitions() -> int:
    """Repetitions per scenario, overridable via ``REPRO_BENCH_REPETITIONS``."""
    return int(os.environ.get("REPRO_BENCH_REPETITIONS", DEFAULT_BENCH_REPETITIONS))


@dataclass
class CampaignConfig:
    """What to run."""

    scenario_count: int = field(default_factory=bench_scenario_count)
    repetitions: int = field(default_factory=bench_repetitions)
    mission: MissionConfig = field(default_factory=MissionConfig)
    base_seed: int = 2025
    verbose: bool = False


def _default_suite(config: CampaignConfig) -> ScenarioSuite:
    suite = build_evaluation_suite(base_seed=config.base_seed)
    subset = suite.subset(config.scenario_count)
    subset.repetitions = config.repetitions
    return subset


def run_campaign(
    system_configs: Iterable[LandingSystemConfig] | None = None,
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    platform_factory: Callable[[], ExecutionPlatform] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, CampaignResult]:
    """Run a (possibly reduced) campaign and aggregate per-system results.

    Args:
        system_configs: generations to evaluate; defaults to V1, V2 and V3.
        campaign_config: campaign size and mission timing.
        suite: explicit scenario suite; defaults to a subset of the 10x10
            evaluation suite.
        platform_factory: builds the execution platform for each run
            (defaults to the SIL desktop platform).
        progress: optional callback receiving one line per completed run.
    """
    campaign_config = campaign_config or CampaignConfig()
    configs = list(system_configs) if system_configs is not None else [mls_v1(), mls_v2(), mls_v3()]
    suite = suite or _default_suite(campaign_config)
    platform_factory = platform_factory or DesktopPlatform
    network = load_pretrained_detector_net()

    results = {config.name: CampaignResult(system_name=config.name) for config in configs}
    for config in configs:
        for scenario in suite:
            for repetition in range(suite.repetitions):
                mission_config = campaign_config.mission
                runner = MissionRunner(
                    scenario,
                    config,
                    mission_config=MissionConfig(
                        physics_dt=mission_config.physics_dt,
                        decision_period=mission_config.decision_period,
                        depth_period=mission_config.depth_period,
                        max_mission_time=mission_config.max_mission_time,
                        camera_seed=repetition,
                    ),
                    platform=platform_factory(),
                    detector_network=network,
                )
                record = runner.run()
                results[config.name].add(record)
                if progress is not None:
                    progress(
                        f"{config.name} {scenario.scenario_id} rep{repetition}: "
                        f"{record.outcome.value} ({record.failure_reason or 'ok'})"
                    )
    return results


def run_hil_campaign(
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    system_config: LandingSystemConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """The RQ2 campaign: MLS-V3 on the Jetson Nano platform."""
    system_config = system_config or mls_v3()
    results = run_campaign(
        [system_config],
        campaign_config=campaign_config,
        suite=suite,
        platform_factory=lambda: JetsonNanoPlatform(spec=JetsonNanoSpec()),
        progress=progress,
    )
    return results[system_config.name]


def run_field_campaign(
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    field_config: FieldTestConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """The RQ3 campaign: simplified scenarios flown with real-world effects."""
    campaign_config = campaign_config or CampaignConfig()
    suite = suite or _default_suite(campaign_config)
    field_config = field_config or FieldTestConfig()
    network = load_pretrained_detector_net()

    result = CampaignResult(system_name="MLS-V3")
    for scenario in suite:
        record = run_field_scenario(
            scenario,
            config=field_config,
            mission_config=campaign_config.mission,
            detector_network=network,
        )
        result.add(record)
        if progress is not None:
            progress(f"field {scenario.scenario_id}: {record.outcome.value}")
    return result
