"""Campaign runner: scenario suites x system compositions x platforms.

The full paper campaign is 100 scenarios x 3 repetitions per system; in this
pure-Python reproduction each run takes seconds of wall clock, so the default
campaign size is reduced and controlled by the ``REPRO_BENCH_SCENARIOS`` /
``REPRO_BENCH_REPETITIONS`` environment variables (set them to 100 / 3 to run
the paper-scale campaign).  ``REPRO_BENCH_WORKERS`` selects multi-process
execution for any campaign built through this module.

The primary API is the fluent :class:`Campaign` builder::

    from repro import Campaign, mls_v1, mls_v3

    results = (
        Campaign()
        .systems(mls_v1(), mls_v3())
        .scenarios(6)
        .repetitions(2)
        .platform("desktop")
        .parallel(4)
        .run()
    )

Every mission in a campaign is independent (own world, own seeds), so the
run grid is embarrassingly parallel: ``.parallel(n)`` fans the jobs out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping aggregation in
submission order, which makes the parallel results bit-identical to the
serial ones.  :func:`run_campaign`, :func:`run_hil_campaign` and
:func:`run_field_campaign` remain as thin wrappers for the existing
benchmarks.
"""

from __future__ import annotations

import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict as dataclasses_asdict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.core.config import LandingSystemConfig, SystemGeneration, config_for, mls_v1, mls_v2, mls_v3, preset

if TYPE_CHECKING:
    from repro.analysis.engine import CampaignAnalysis
from repro.core.metrics import (
    RESULT_SCHEMA_VERSION,
    CampaignResult,
    RunRecord,
    append_record_jsonl,
    read_campaign_jsonl,
    write_campaign_jsonl,
)
from repro.core.mission import MissionConfig, MissionRunner
from repro.core.platform import DesktopPlatform, ExecutionPlatform
from repro.core.registry import DETECTOR, REGISTRY
from repro.faults.spec import FaultSpec, ensure_unique_names, resolve_faults
from repro.hil.jetson import JetsonNanoPlatform, JetsonNanoSpec
from repro.jsonl import sha16_of_json
from repro.perception.neural.training import load_pretrained_detector_net
from repro.realworld.field_test import FieldTestConfig, run_field_scenario
from repro.world.scenario import Scenario
from repro.world.scenario_gen import PRESET_NAMES, SuiteSpec, generate_suite
from repro.world.scenario_suite import ScenarioSuite, build_evaluation_suite

#: Default number of scenarios when the environment does not say otherwise.
DEFAULT_BENCH_SCENARIOS = 6
DEFAULT_BENCH_REPETITIONS = 1
DEFAULT_BENCH_WORKERS = 1


def bench_scenario_count() -> int:
    """Campaign size, overridable via ``REPRO_BENCH_SCENARIOS``."""
    return int(os.environ.get("REPRO_BENCH_SCENARIOS", DEFAULT_BENCH_SCENARIOS))


def bench_repetitions() -> int:
    """Repetitions per scenario, overridable via ``REPRO_BENCH_REPETITIONS``."""
    return int(os.environ.get("REPRO_BENCH_REPETITIONS", DEFAULT_BENCH_REPETITIONS))


def bench_workers() -> int:
    """Worker processes per campaign, overridable via ``REPRO_BENCH_WORKERS``."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", DEFAULT_BENCH_WORKERS))


@dataclass
class CampaignConfig:
    """What to run (the non-fluent knob bundle used by the benchmarks)."""

    scenario_count: int = field(default_factory=bench_scenario_count)
    repetitions: int = field(default_factory=bench_repetitions)
    mission: MissionConfig = field(default_factory=MissionConfig)
    base_seed: int = 2025
    verbose: bool = False
    workers: int = field(default_factory=bench_workers)


# ---------------------------------------------------------------------- #
# execution platforms
# ---------------------------------------------------------------------- #
def _desktop_platform() -> ExecutionPlatform:
    return DesktopPlatform()


def _jetson_platform() -> ExecutionPlatform:
    return JetsonNanoPlatform(spec=JetsonNanoSpec())


def _jetson_real_world_platform() -> ExecutionPlatform:
    return JetsonNanoPlatform(spec=JetsonNanoSpec.real_world())


#: Named platform factories accepted by ``Campaign.platform(...)``.  String
#: keys (rather than factory callables) are what parallel campaigns ship to
#: worker processes, so entries here are always multiprocessing-safe.
PLATFORM_FACTORIES: dict[str, Callable[[], ExecutionPlatform]] = {
    "desktop": _desktop_platform,
    "jetson-nano": _jetson_platform,
    "jetson-nano-real": _jetson_real_world_platform,
}


def _resolve_platform_factory(
    platform: str | Callable[[], ExecutionPlatform],
) -> Callable[[], ExecutionPlatform]:
    if callable(platform):
        return platform
    key = str(platform).strip().lower()
    if key not in PLATFORM_FACTORIES:
        raise ValueError(
            f"unknown platform {platform!r}; expected one of {sorted(PLATFORM_FACTORIES)} "
            f"or a zero-argument factory callable"
        )
    return PLATFORM_FACTORIES[key]


# ---------------------------------------------------------------------- #
# worker-side execution
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignJob:
    """One independent mission run of a campaign (picklable)."""

    index: int
    system: LandingSystemConfig
    scenario: Scenario
    repetition: int
    mission: MissionConfig
    platform: str | Callable[[], ExecutionPlatform] = "desktop"
    needs_network: bool = True
    #: Fault specs to inject into this run (see :mod:`repro.faults`); plain
    #: frozen dataclasses, so jobs stay picklable for ``.parallel()``.
    faults: tuple[FaultSpec, ...] = ()
    #: Directory receiving flight-trace summaries (``Campaign.trace(...)``),
    #: or ``None``.  Strictly a side channel: it is excluded from every
    #: content fingerprint, and the ``REPRO_TRACE_DIR`` environment variable
    #: fills it in for execution modes that do not ship jobs (dispatch
    #: workers on other machines).
    trace_dir: str | None = None
    #: Correlation context (sorted ``(key, value)`` pairs) identifying where
    #: this run came from — dispatch workers set ``job`` (plan fingerprint
    #: prefix) and ``shard``; probe backends add ``probe`` via the
    #: ``REPRO_CORR_PROBE`` environment variable.  Like tracing it is a pure
    #: side channel: excluded from every content fingerprint, attached only
    #: to metric label sets and trace summaries.
    correlation: tuple[tuple[str, str], ...] = ()


_worker_network = None


def _shared_network():
    """The per-process detector network (trained once, disk-cached)."""
    global _worker_network
    if _worker_network is None:
        _worker_network = load_pretrained_detector_net()
    return _worker_network


def _job_correlation(job: CampaignJob) -> dict[str, str]:
    """The run's correlation context: job-carried pairs plus the probe id.

    The probe id travels by environment (``REPRO_CORR_PROBE``) because probe
    backends drain pre-planned dispatch directories — there is no job object
    of theirs to thread it through — exactly like ``REPRO_TRACE_DIR``.
    Cardinality is bounded upstream: every id is a short content-hash
    prefix or a shard name, never a free-form string.
    """
    correlation = {key: value for key, value in job.correlation}
    probe = os.environ.get("REPRO_CORR_PROBE")
    if probe:
        correlation["probe"] = probe
    return correlation


def _execute_job(job: CampaignJob) -> RunRecord:
    """Run one campaign job; used both in-process and in worker processes."""
    from repro.core.registry import ComponentError
    from repro.obs.metrics import METRICS

    trace_dir = job.trace_dir or os.environ.get("REPRO_TRACE_DIR") or None
    recorder = None
    if trace_dir:
        from repro.obs.trace import FlightRecorder

        recorder = FlightRecorder()
    network = _shared_network() if job.needs_network else None
    harness = None
    if job.faults:
        # Built per run from content hashes only, so every execution mode
        # (serial / parallel / dispatched shard) injects identically.
        from repro.faults.harness import FaultHarness

        harness = FaultHarness(
            job.faults,
            scenario_fingerprint=job.scenario.fingerprint(),
            repetition=job.repetition,
        )
    try:
        runner = MissionRunner(
            job.scenario,
            job.system,
            mission_config=job.mission,
            platform=_resolve_platform_factory(job.platform)(),
            detector_network=network,
            fault_harness=harness,
            recorder=recorder,
        )
    except ComponentError as error:
        raise ComponentError(
            f"{error} (if this component is registered at runtime, note that "
            f"spawn/forkserver worker processes only see components registered "
            f"at module import time)"
        ) from error
    record = runner.run()
    record.repetition = job.repetition
    # Observability side channel: per-run metrics and the optional trace
    # summary.  Nothing below reads back into the record, so the persisted
    # bytes are identical with or without it.
    correlation = _job_correlation(job)
    METRICS.counter(
        "repro_runs_total", "Completed mission runs by system and outcome."
    ).inc(system=job.system.name, outcome=record.outcome.value, **correlation)
    if record.failure_mode:
        METRICS.counter(
            "repro_failure_mode_total", "Runs by classified failure mode."
        ).inc(system=job.system.name, mode=record.failure_mode)
    METRICS.counter(
        "repro_frames_total", "Camera decision ticks by frame handling."
    ).inc(runner.frames_rendered, system=job.system.name, mode="rendered")
    METRICS.counter(
        "repro_frames_total", "Camera decision ticks by frame handling."
    ).inc(runner.frames_skipped, system=job.system.name, mode="skipped")
    METRICS.counter(
        "repro_depth_captures_total", "Depth ticks by capture handling."
    ).inc(runner.depth_captures, system=job.system.name, mode="captured")
    METRICS.counter(
        "repro_depth_captures_total", "Depth ticks by capture handling."
    ).inc(runner.depth_skipped, system=job.system.name, mode="skipped")
    METRICS.histogram(
        "repro_mission_seconds", "Simulated mission duration per run."
    ).observe(record.mission_time, system=job.system.name)
    if recorder is not None:
        recorder.count("frames-rendered", runner.frames_rendered)
        recorder.count("frames-skipped", runner.frames_skipped)
        recorder.count("frames-lost", runner.frames_lost)
        recorder.count("depth-captures", runner.depth_captures)
        recorder.count("depth-skipped", runner.depth_skipped)
        recorder.count("clouds-lost", runner.clouds_lost)
        from repro.obs.trace import append_trace_summary

        append_trace_summary(
            trace_dir,
            recorder,
            system=job.system.name,
            scenario_id=job.scenario.scenario_id,
            repetition=job.repetition,
            correlation=correlation or None,
        )
    return record


#: Shared content-hash helper (see :func:`repro.jsonl.sha16_of_json`); the
#: old private name is kept because the dispatch planner historically
#: imported it from here.
_sha16 = sha16_of_json


def campaign_result_filename(system_name: str) -> str:
    """The JSONL filename ``Campaign.out`` persists a system's records under.

    Shared with :mod:`repro.dispatch.merge` so merged shard outputs land on
    exactly the filenames a single-process campaign would have written.
    """
    return re.sub(r"[^A-Za-z0-9._-]+", "_", system_name) + ".jsonl"


def campaign_context_fingerprint(
    mission: MissionConfig,
    platform: str | Callable[[], ExecutionPlatform],
    faults: Sequence[FaultSpec] = (),
) -> str:
    """Identity of a run *context* (mission config + platform + faults).

    Stored in result headers so resuming — or merging shards — against
    results flown with different mission timings, on another platform or
    under a different fault plan is refused instead of silently reported.
    The ``faults`` key is only included when faults are declared, so
    fingerprints of fault-free campaigns are unchanged from earlier
    versions (existing persisted results stay resumable).
    """
    payload: dict[str, Any] = {
        "mission": dataclasses_asdict(mission),
        "platform": platform if isinstance(platform, str) else "<callable>",
    }
    if faults:
        payload["faults"] = [spec.to_dict() for spec in faults]
    return _sha16(payload)


def _scenario_fingerprint(scenario: Scenario) -> str:
    """Content hash of one scenario, stored with each persisted run record."""
    return scenario.fingerprint()


def _system_needs_network(config: LandingSystemConfig) -> bool:
    try:
        spec = REGISTRY.spec(DETECTOR, config.detector)
    except Exception:
        return True  # unknown custom detector: be conservative, load it
    return bool(spec.metadata.get("needs_network", False))


# ---------------------------------------------------------------------- #
# the fluent campaign builder
# ---------------------------------------------------------------------- #
class Campaign:
    """Fluent builder for (possibly parallel) evaluation campaigns.

    Each setter returns ``self`` so campaigns read as one chain; ``run()``
    executes the grid and returns ``{system name: CampaignResult}``.
    Results are aggregated in job-submission order regardless of worker
    completion order, so ``.parallel(n)`` is outcome-identical to serial.
    """

    def __init__(self, *system_configs: LandingSystemConfig) -> None:
        self._systems: list[LandingSystemConfig] = []
        if system_configs:
            self.systems(*system_configs)
        self._suite: ScenarioSuite | SuiteSpec | str | None = None
        self._faults: tuple[FaultSpec, ...] | None = None
        self._scenario_count: int | None = None
        self._repetitions: int | None = None
        self._mission: MissionConfig = MissionConfig()
        self._platform: str | Callable[[], ExecutionPlatform] = "desktop"
        self._workers: int = 1
        self._base_seed: int = 2025
        self._seed_override: int | None = None
        self._progress: Callable[[str], None] | None = None
        self._out: Path | None = None
        self._trace: Path | None = None
        self._correlation: tuple[tuple[str, str], ...] = ()

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def systems(self, *configs: Any) -> "Campaign":
        """Add systems: configs, ``SystemGeneration`` members or preset names."""
        for config in configs:
            if isinstance(config, LandingSystemConfig):
                self._systems.append(config)
            elif isinstance(config, SystemGeneration):
                self._systems.append(config_for(config))
            elif isinstance(config, str):
                self._systems.append(preset(config))
            elif isinstance(config, Iterable):
                self.systems(*config)
            else:
                raise TypeError(
                    f"systems() accepts LandingSystemConfig / SystemGeneration / "
                    f"preset names, got {type(config).__name__}"
                )
        return self

    def suite(self, suite: ScenarioSuite | SuiteSpec | str) -> "Campaign":
        """Use an explicit scenario suite (overrides ``scenarios()``).

        Accepts a :class:`ScenarioSuite`, a declarative
        :class:`~repro.world.scenario_gen.SuiteSpec`, or a preset name such
        as ``"paper"`` / ``"stress"`` / ``"smoke"``.  Specs and preset names
        are generated at run time so a later ``.seed(...)`` call still
        applies to them (generation is deterministic, so the grid is fixed
        either way).
        """
        if isinstance(suite, str):
            key = suite.strip().lower()
            if key not in PRESET_NAMES:
                raise ValueError(
                    f"unknown suite preset {suite!r}; expected one of {sorted(PRESET_NAMES)}"
                )
            self._suite = key
        elif isinstance(suite, (ScenarioSuite, SuiteSpec)):
            self._suite = suite
        else:
            raise TypeError(
                f"suite() accepts ScenarioSuite / SuiteSpec / preset name, "
                f"got {type(suite).__name__}"
            )
        return self

    def faults(self, *sources: Any) -> "Campaign":
        """Inject faults into every run of the campaign (the fault axis).

        Accepts :class:`~repro.faults.FaultSpec` objects, fault-preset names
        (``"sensor"``, ``"perception"``, ``"full"``, ...), fault-plan JSON
        paths, or iterables mixing them::

            results = (
                Campaign(mls_v3())
                .suite("stress")
                .faults("perception", FaultSpec(target="vehicle", mode="ekf-reset"))
                .parallel(4)
                .run()
            )

        Calling ``.faults()`` with no arguments clears the fault axis —
        including faults inherited from a :class:`SuiteSpec` passed to
        :meth:`suite`.  Injection is deterministic per (scenario,
        repetition, spec): serial, parallel and dispatched executions
        produce byte-identical persisted records.
        """
        specs: list[FaultSpec] = []
        for source in sources:
            specs.extend(resolve_faults(source))
        self._faults = ensure_unique_names(specs)
        return self

    def out(self, directory: str | Path | None) -> "Campaign":
        """Persist per-run results under ``directory`` (one JSONL per system).

        Every completed run is appended to ``<directory>/<system>.jsonl``
        immediately, so a killed campaign loses at most the in-flight
        missions — and re-running the same campaign with the same ``out``
        directory *resumes*: runs whose ``(scenario_id, repetition)`` already
        appear in the file are loaded instead of re-executed.
        """
        self._out = Path(directory) if directory is not None else None
        return self

    def trace(self, directory: str | Path | None) -> "Campaign":
        """Stream per-run flight-trace summaries under ``directory``.

        Every run appends one per-phase timing summary to
        ``<directory>/<system>.trace.jsonl`` (see :mod:`repro.obs.trace`).
        Tracing is strictly a side channel — it is excluded from the campaign
        context fingerprint and provably cannot change a record byte, so a
        traced campaign resumes against (and ``cmp``-matches) an untraced
        one.  Render the breakdown with ``python -m repro.obs report``.
        """
        self._trace = Path(directory) if directory is not None else None
        return self

    def correlate(self, **ids: str) -> "Campaign":
        """Attach a correlation context to every run of this campaign.

        The ids (e.g. ``job=<plan fingerprint prefix>, shard=<shard name>``)
        ride each :class:`CampaignJob` into metric label sets and trace
        summaries, linking fleet-level series back to the dispatch unit that
        produced them.  A pure side channel: no content fingerprint and no
        persisted record byte changes.  Pass short, bounded identifiers —
        these become Prometheus labels.  Calling with no arguments clears
        the context.
        """
        self._correlation = tuple(
            sorted((str(key), str(value)) for key, value in ids.items())
        )
        return self

    def scenarios(self, count: int) -> "Campaign":
        """Evaluate on a ``count``-scenario subset of the evaluation suite."""
        if count <= 0:
            raise ValueError("scenario count must be positive")
        self._scenario_count = count
        return self

    def repetitions(self, count: int) -> "Campaign":
        """Repetitions per scenario (each gets a distinct camera seed)."""
        if count <= 0:
            raise ValueError("repetitions must be positive")
        self._repetitions = count
        return self

    def mission(self, config: MissionConfig | None = None, **overrides: Any) -> "Campaign":
        """Set the mission timing/termination config (or override fields)."""
        base = config if config is not None else self._mission
        self._mission = replace(base, **overrides) if overrides else base
        return self

    def platform(self, platform: str | Callable[[], ExecutionPlatform]) -> "Campaign":
        """Execution platform: a ``PLATFORM_FACTORIES`` key or a factory.

        String keys are preferred for ``.parallel()`` campaigns — they are
        resolved inside each worker, so the factory never has to pickle.
        """
        _resolve_platform_factory(platform)  # validate eagerly
        self._platform = platform
        return self

    def seed(self, base_seed: int) -> "Campaign":
        """Base seed for the generated suite (evaluation subset or preset/spec)."""
        self._base_seed = base_seed
        self._seed_override = base_seed
        return self

    def parallel(self, workers: int | None = None) -> "Campaign":
        """Fan mission runs out over ``workers`` processes (default: all cores)."""
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._workers = workers
        return self

    def serial(self) -> "Campaign":
        """Run everything in-process (the default)."""
        self._workers = 1
        return self

    def progress(self, callback: Callable[[str], None] | None) -> "Campaign":
        """Callback receiving one line per completed run."""
        self._progress = callback
        return self

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def jobs(self, systems: Sequence[LandingSystemConfig] | None = None) -> list[CampaignJob]:
        """The fully-specified run grid this campaign will execute."""
        if systems is None:
            systems = self._resolved_systems()
        suite = self._resolved_suite()
        repetitions = self._repetitions if self._repetitions is not None else suite.repetitions
        faults = self._resolved_faults()
        jobs: list[CampaignJob] = []
        index = 0
        for system in systems:
            needs_network = _system_needs_network(system)
            for scenario in suite:
                for repetition in range(repetitions):
                    jobs.append(
                        CampaignJob(
                            index=index,
                            system=system,
                            scenario=scenario,
                            repetition=repetition,
                            # Preserve every user override; only the camera
                            # seed varies between repetitions.
                            mission=replace(self._mission, camera_seed=repetition),
                            platform=self._platform,
                            needs_network=needs_network,
                            faults=faults,
                            trace_dir=str(self._trace) if self._trace is not None else None,
                            correlation=self._correlation,
                        )
                    )
                    index += 1
        return jobs

    def run(self) -> dict[str, CampaignResult]:
        """Execute the campaign and aggregate per-system results."""
        systems = self._resolved_systems()
        jobs = self.jobs(systems)
        names = [config.name for config in systems]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate system names {duplicates}: give each system a "
                f"distinct name (LandingSystemConfig.custom(..., name=...))"
            )
        results = {config.name: CampaignResult(system_name=config.name) for config in systems}

        scenario_hashes: dict[str, str] = {}
        if self._out is not None:
            if not isinstance(self._platform, str):
                import warnings

                warnings.warn(
                    "persisting campaign results with a callable platform "
                    "factory: platform changes cannot be detected on resume "
                    "(use a string platform key for full resume guarding)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            for job in jobs:
                if job.scenario.scenario_id not in scenario_hashes:
                    scenario_hashes[job.scenario.scenario_id] = _scenario_fingerprint(
                        job.scenario
                    )
        context = self._context_fingerprint() if self._out is not None else ""
        restored = self._load_persisted(systems, context)
        pending: list[CampaignJob] = []
        for job in jobs:
            stored = restored.get(job.system.name, {}).get(
                (job.scenario.scenario_id, job.repetition)
            )
            if stored is None:
                pending.append(job)
                continue
            expected = scenario_hashes[job.scenario.scenario_id]
            if stored.scenario_fingerprint and stored.scenario_fingerprint != expected:
                raise ValueError(
                    f"{self._result_path(job.system.name)} holds a record for "
                    f"{job.scenario.scenario_id!r} rep {job.repetition} flown on "
                    f"different scenario contents (another suite seed with "
                    f"colliding ids?); use a fresh out directory or delete the "
                    f"stale results"
                )

        if any(job.needs_network for job in pending):
            # Train/load once up front: workers inherit the instance on
            # fork-start platforms and hit the disk cache elsewhere.
            _shared_network()

        if self._workers > 1 and len(pending) > 1 and self._jobs_picklable(pending):
            records = self._run_parallel(pending)
        else:
            records = map(_execute_job, pending)

        # Pending jobs keep their relative order, so fresh records interleave
        # with restored ones back into full submission order.
        fresh: Iterator[RunRecord] = iter(records)
        for job in jobs:
            cached = restored.get(job.system.name, {}).get(
                (job.scenario.scenario_id, job.repetition)
            )
            if cached is not None:
                record = cached
            else:
                record = next(fresh)
                if self._out is not None:
                    record.scenario_fingerprint = scenario_hashes[job.scenario.scenario_id]
                    append_record_jsonl(
                        self._result_path(job.system.name),
                        job.system.name,
                        record,
                        extra_header={
                            "campaign": context,
                            # The one run condition a record cannot carry;
                            # repro.analysis slices by it via this header.
                            "platform": self._platform
                            if isinstance(self._platform, str)
                            else "<callable>",
                        },
                    )
            results[job.system.name].add(record)
            if self._progress is not None:
                self._progress(
                    f"{job.system.name} {job.scenario.scenario_id} rep{job.repetition}: "
                    f"{record.outcome.value} "
                    f"({'restored' if cached is not None else record.failure_reason or 'ok'})"
                )
        return results

    def analyze(
        self,
        *,
        seed: int = 0,
        confidence: float | None = None,
        resamples: int | None = None,
    ) -> "CampaignAnalysis":
        """Run the campaign and return a :class:`CampaignAnalysis` over it.

        The terminal of the fluent chain for statistical consumers::

            report = (
                Campaign(mls_v1(), mls_v3())
                .suite("stress").parallel(4)
                .analyze()
                .report()
            )

        The campaign's own suite is joined automatically, so scenario-factor
        slicing (``.slice("stress-axis")`` etc.) works out of the box.
        ``seed`` / ``confidence`` / ``resamples`` are the bootstrap and
        interval parameters (see :mod:`repro.analysis.stats`).
        """
        # Imported here: analysis is a pure consumer layer and campaign
        # execution must not depend on it at import time.
        from repro.analysis.engine import CampaignAnalysis
        from repro.analysis.stats import DEFAULT_CONFIDENCE, DEFAULT_RESAMPLES

        # Resolve (for specs/presets: generate) the suite once so run() and
        # the scenario join below share one object instead of generating the
        # suite twice; the original suite setting is restored afterwards so
        # suite()'s "a later .seed() still applies" contract holds.  The
        # fault axis is pinned first: replacing a SuiteSpec with its
        # generated suite must not drop the spec's declared faults.
        previous_suite = self._suite
        previous_faults = self._faults
        self._faults = self._resolved_faults()
        self._suite = suite = self._resolved_suite()
        try:
            results = self.run()
        finally:
            self._suite = previous_suite
            self._faults = previous_faults
        return CampaignAnalysis(
            results,
            suites=[suite],
            seed=seed,
            confidence=DEFAULT_CONFIDENCE if confidence is None else confidence,
            resamples=DEFAULT_RESAMPLES if resamples is None else resamples,
        )

    def dispatch(
        self,
        directory: str | Path,
        *,
        shards: int,
        workers: int | None = None,
        lease_seconds: float = 60.0,
    ) -> dict[str, CampaignResult]:
        """Run the campaign as a sharded work queue under ``directory``.

        The distributed-execution terminal of the fluent chain::

            results = (
                Campaign(mls_v1(), mls_v3())
                .suite("stress")
                .dispatch("runs/stress", shards=8, workers=4)
            )

        The campaign is planned into ``shards`` content-fingerprinted shard
        manifests (see :mod:`repro.dispatch`), executed by ``workers`` local
        worker processes (default: this campaign's ``.parallel(...)`` count)
        and merged back into per-system JSONL files that are byte-identical
        to what a single-process ``.out(directory).run()`` would have
        written.  ``directory`` can simultaneously be served by workers on
        other machines (``python -m repro.dispatch work <directory>``), and
        re-dispatching the same campaign into the same directory resumes
        instead of re-flying.
        """
        # Imported here: the dispatch layer orchestrates campaigns and
        # imports this module, so the dependency cannot be import-time.
        from repro.dispatch.merge import load_merged, merge_dispatch
        from repro.dispatch.planner import plan_dispatch
        from repro.dispatch.worker import run_local_workers

        if not isinstance(self._platform, str):
            raise ValueError(
                "dispatch requires a string platform key (workers on other "
                "machines cannot import a local factory callable)"
            )
        suite = self._resolved_suite()
        repetitions = self._repetitions if self._repetitions is not None else suite.repetitions
        plan_dispatch(
            directory,
            suite,
            self._resolved_systems(),
            shards=shards,
            repetitions=repetitions,
            mission=self._mission,
            platform=self._platform,
            faults=self._resolved_faults(),
        )
        # Dispatch does not ship jobs, so tracing travels by environment:
        # local worker processes inherit REPRO_TRACE_DIR at spawn (workers
        # on other machines set it themselves).
        previous_trace = os.environ.get("REPRO_TRACE_DIR")
        if self._trace is not None:
            os.environ["REPRO_TRACE_DIR"] = str(self._trace)
        try:
            run_local_workers(
                directory,
                workers=workers if workers is not None else max(self._workers, 1),
                lease_seconds=lease_seconds,
            )
        finally:
            if self._trace is not None:
                if previous_trace is None:
                    os.environ.pop("REPRO_TRACE_DIR", None)
                else:
                    os.environ["REPRO_TRACE_DIR"] = previous_trace
        merge_dispatch(directory)
        return load_merged(directory)

    # ------------------------------------------------------------------ #
    # result persistence
    # ------------------------------------------------------------------ #
    def _result_path(self, system_name: str) -> Path:
        assert self._out is not None
        return self._out / campaign_result_filename(system_name)

    def _context_fingerprint(self) -> str:
        """See :func:`campaign_context_fingerprint`.

        Scenario contents are guarded separately and per record (see
        ``RunRecord.scenario_fingerprint``), so growing a suite or its
        repetition count still resumes.
        """
        return campaign_context_fingerprint(
            self._mission, self._platform, self._resolved_faults()
        )

    def _load_persisted(
        self, systems: Sequence[LandingSystemConfig], context: str
    ) -> dict[str, dict[tuple[str, int], RunRecord]]:
        """Previously persisted records, keyed by system then (scenario, rep)."""
        if self._out is None:
            return {}
        restored: dict[str, dict[tuple[str, int], RunRecord]] = {}
        for config in systems:
            path = self._result_path(config.name)
            if not path.exists():
                continue
            header, records, torn = read_campaign_jsonl(path)
            if str(header.get("system")) != config.name:
                raise ValueError(
                    f"{path} holds results for {header.get('system')!r}, "
                    f"refusing to resume campaign system {config.name!r} from it"
                )
            stored = header.get("campaign")
            if stored is not None and stored != context:
                raise ValueError(
                    f"{path} was produced by a different campaign configuration "
                    f"(mission config or platform changed); use a fresh out "
                    f"directory or delete the stale results"
                )
            stale_schema = int(header.get("schema", 1)) < RESULT_SCHEMA_VERSION
            if torn or stale_schema:
                # Heal the file: drop a buried torn line, and upgrade an
                # older-schema header before current-schema records are
                # appended under it (readers gate on the header, so a
                # schema-1 header over schema-2 records would defeat the
                # "upgrade to read it" error for older readers).
                if stale_schema:
                    header = {**header, "schema": RESULT_SCHEMA_VERSION}
                write_campaign_jsonl(path, header, records)
            restored[config.name] = {
                (record.scenario_id, record.repetition): record for record in records
            }
        return restored

    @staticmethod
    def _jobs_picklable(jobs: Sequence[CampaignJob]) -> bool:
        """Whether the jobs can cross a process boundary.

        A closure/lambda ``platform_factory`` (the pre-fluent callable API)
        cannot pickle; rather than crash a campaign that used to work
        serially, fall back to in-process execution with a warning.
        """
        import pickle
        import warnings

        try:
            pickle.dumps(jobs[0])
            return True
        except Exception:
            warnings.warn(
                "campaign jobs are not picklable (usually a lambda/closure "
                "platform factory); running serially — use a platform string "
                "key such as 'jetson-nano' to enable parallel execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return False

    def _run_parallel(self, jobs: Sequence[CampaignJob]) -> Iterable[RunRecord]:
        workers = min(self._workers, len(jobs))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            # executor.map preserves submission order, which keeps parallel
            # aggregation identical to the serial path.
            yield from executor.map(_execute_job, jobs)

    # ------------------------------------------------------------------ #
    def _resolved_systems(self) -> list[LandingSystemConfig]:
        return list(self._systems) if self._systems else [mls_v1(), mls_v2(), mls_v3()]

    def _resolved_faults(self) -> tuple[FaultSpec, ...]:
        """The campaign's fault axis: explicit ``.faults()`` wins, then the
        fault axis declared on a :class:`SuiteSpec` passed to ``suite()``."""
        if self._faults is not None:
            return self._faults
        if isinstance(self._suite, SuiteSpec):
            return tuple(self._suite.faults)
        return ()

    def _resolved_suite(self) -> ScenarioSuite:
        if isinstance(self._suite, ScenarioSuite):
            return self._suite
        if self._suite is not None:
            # A SuiteSpec or preset name: generate now (deterministic), with
            # .seed(...) overriding the spec's own seed when it was called.
            return generate_suite(self._suite, seed=self._seed_override)
        count = self._scenario_count if self._scenario_count is not None else bench_scenario_count()
        suite = build_evaluation_suite(base_seed=self._base_seed).subset(count)
        suite.repetitions = self._repetitions if self._repetitions is not None else bench_repetitions()
        return suite


# ---------------------------------------------------------------------- #
# thin wrappers kept for the existing benchmarks / examples
# ---------------------------------------------------------------------- #
def _campaign_from_config(
    campaign_config: CampaignConfig, suite: ScenarioSuite | None
) -> Campaign:
    campaign = Campaign().mission(campaign_config.mission).seed(campaign_config.base_seed)
    if suite is not None:
        # Legacy semantics: an explicit suite brings its own repetition count.
        campaign.suite(suite)
    else:
        campaign.scenarios(campaign_config.scenario_count).repetitions(
            campaign_config.repetitions
        )
    if campaign_config.workers > 1:
        campaign.parallel(campaign_config.workers)
    return campaign


def run_campaign(
    system_configs: Iterable[LandingSystemConfig] | None = None,
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    platform_factory: Callable[[], ExecutionPlatform] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, CampaignResult]:
    """Run a (possibly reduced) campaign and aggregate per-system results.

    Args:
        system_configs: systems to evaluate; defaults to V1, V2 and V3.
        campaign_config: campaign size, mission timing and worker count.
        suite: explicit scenario suite; defaults to a subset of the 10x10
            evaluation suite.
        platform_factory: builds the execution platform for each run
            (defaults to the SIL desktop platform).
        progress: optional callback receiving one line per completed run.
    """
    campaign = _campaign_from_config(campaign_config or CampaignConfig(), suite).progress(progress)
    if system_configs is not None:
        campaign.systems(*system_configs)
    if platform_factory is not None:
        campaign.platform(platform_factory)
    return campaign.run()


def run_hil_campaign(
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    system_config: LandingSystemConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """The RQ2 campaign: MLS-V3 on the Jetson Nano platform."""
    system_config = system_config or mls_v3()
    campaign = (
        _campaign_from_config(campaign_config or CampaignConfig(), suite)
        .systems(system_config)
        .platform("jetson-nano")
        .progress(progress)
    )
    return campaign.run()[system_config.name]


def run_field_campaign(
    campaign_config: CampaignConfig | None = None,
    suite: ScenarioSuite | None = None,
    field_config: FieldTestConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignResult:
    """The RQ3 campaign: simplified scenarios flown with real-world effects."""
    campaign_config = campaign_config or CampaignConfig()
    if suite is None:
        suite = build_evaluation_suite(base_seed=campaign_config.base_seed).subset(
            campaign_config.scenario_count
        )
        suite.repetitions = campaign_config.repetitions
    field_config = field_config or FieldTestConfig()
    network = _shared_network()

    result = CampaignResult(system_name="MLS-V3")
    for scenario in suite:
        record = run_field_scenario(
            scenario,
            config=field_config,
            mission_config=campaign_config.mission,
            detector_network=network,
        )
        result.add(record)
        if progress is not None:
            progress(f"field {scenario.scenario_id}: {record.outcome.value}")
    return result
