"""The values reported in the paper, for side-by-side comparison.

We do not expect to match these absolute numbers — the substrate here is a
synthetic simulator, not AirSim + PX4 + a physical Jetson Nano — but the
benches print them next to the reproduced values so the *shape* (ordering,
rough factors, crossovers) can be checked at a glance.
"""

from __future__ import annotations

#: Table I — SIL results over 150 runs per system (percent).
TABLE_1_SIL = {
    "MLS-V1": {"success": 24.67, "collision": 71.33, "poor_landing": 4.00},
    "MLS-V2": {"success": 42.00, "collision": 48.67, "poor_landing": 9.34},
    "MLS-V3": {"success": 84.00, "collision": 3.33, "poor_landing": 12.67},
}

#: Table II — marker-detection false-negative rate (percent).
TABLE_2_DETECTION = {
    "MLS-V1": {"implementation": "OpenCV", "false_negative_rate": 4.00},
    "MLS-V2": {"implementation": "TPH-YOLO", "false_negative_rate": 2.67},
    "MLS-V3": {"implementation": "TPH-YOLO", "false_negative_rate": 2.00},
}

#: Table III — HIL results for MLS-V3 (percent).
TABLE_3_HIL = {
    "MLS-V3": {"success": 72.00, "collision": 14.00, "poor_landing": 6.00},
}

#: §V.B — HIL resource usage on the Jetson Nano.
HIL_RESOURCES = {
    "memory_used_gb": 2.2,
    "memory_available_gb": 2.9,
    "cpu_cores_heavily_utilised": 4,
}

#: §V.C — landing accuracy (metres from the marker).
LANDING_ACCURACY = {
    "sil_hil_mean_error_m": 0.25,
    "real_world_mean_error_m": 0.60,
}

#: Expected orderings ("shape") that the reproduction must preserve.
SHAPE_CLAIMS = [
    "success(MLS-V3) > success(MLS-V2) > success(MLS-V1) in SIL",
    "collision failures dominate MLS-V1 and MLS-V2 failures",
    "MLS-V3 collision rate is far below MLS-V1/V2",
    "MLS-V3 poor-landing (abort) rate is modestly higher than MLS-V1",
    "false_negative(OpenCV) > false_negative(TPH-YOLO)",
    "HIL success < SIL success for MLS-V3 (compute pressure)",
    "real-world landing error > SIL/HIL landing error",
    "real-world CPU/RAM use > HIL CPU/RAM use (camera I/O)",
]
