"""Path planning (the EGO-Planner and OMPL/RRT* substitutes).

* :mod:`repro.planning.astar` — grid A* search, the algorithm inside the
  EGO-Planner-style local planner.
* :mod:`repro.planning.ego_planner` — MLS-V2's planner: A* over the dense
  local voxel window, with a bounded search pool and a straight-line fallback
  (both limitations the paper documents).
* :mod:`repro.planning.rrt_star` — MLS-V3's planner: RRT* with informed
  sampling and rewiring over the global octree through an inflated collision
  checker.
* :mod:`repro.planning.straight_line` — MLS-V1's "planner": fly straight at
  the goal (no obstacle avoidance).
* :mod:`repro.planning.trajectory` — waypoint trajectories, shortcut
  smoothing and the follower used by the decision-making module.
* :mod:`repro.planning.spiral` — the spiral search pattern used by the SEARCH
  state.
"""

from repro.planning.types import PlanningProblem, PlanningResult, PlannerStatus
from repro.planning.astar import AStarPlanner, AStarConfig
from repro.planning.straight_line import StraightLinePlanner
from repro.planning.ego_planner import EgoLocalPlanner, EgoPlannerConfig
from repro.planning.rrt_star import RrtStarPlanner, RrtStarConfig
from repro.planning.trajectory import Trajectory, TrajectoryFollower, shortcut_smooth
from repro.planning.spiral import spiral_search_waypoints

__all__ = [
    "PlanningProblem",
    "PlanningResult",
    "PlannerStatus",
    "AStarPlanner",
    "AStarConfig",
    "StraightLinePlanner",
    "EgoLocalPlanner",
    "EgoPlannerConfig",
    "RrtStarPlanner",
    "RrtStarConfig",
    "Trajectory",
    "TrajectoryFollower",
    "shortcut_smooth",
    "spiral_search_waypoints",
]
