"""RRT* sampling-based planner over the global octree map (MLS-V3).

An implementation of the RRT* algorithm (Karaman & Frazzoli, 2011) in the
style OMPL exposes it: uniform sampling in an ellipsoidal informed region
around the start-goal segment, nearest-neighbour extension with a bounded
step, rewiring within a shrinking radius, and a best-goal-branch extraction
when the time / iteration budget expires.

Because the collision checker consults the *global* octree, the planner
accounts for every obstacle ever observed, which removes the two V2 failure
modes — at the cost of new ones: sampled paths have sharp corners that the
trajectory follower cuts, and planning takes longer, which hurts on the
resource-constrained HIL platform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap
from repro.planning.types import PlannerStatus, PlanningProblem, PlanningResult, path_length


@dataclass(frozen=True)
class RrtStarConfig:
    """Sampling and rewiring parameters."""

    max_iterations: int = 600
    step_size: float = 2.5
    goal_bias: float = 0.15
    goal_tolerance: float = 1.5
    rewire_radius: float = 5.0
    sample_margin: float = 8.0
    collision_check_step: float = 0.5
    seed: int = 0
    #: Declared desktop-class cost of one RRT* iteration, seconds.  The
    #: planning time budget is converted through it into a *deterministic*
    #: iteration budget, the same way the HIL resource model treats module
    #: latencies declaratively: breaking on measured wall clock made the
    #: sampled tree — and with it whole MLS-V3 missions — depend on host
    #: load, which silently broke the campaign/dispatch byte-identity
    #: contract for any system using this planner.
    nominal_iteration_cost: float = 0.0002


class RrtStarPlanner:
    """RRT* with informed sampling and rewiring."""

    name = "RRT* (OMPL-style)"

    def __init__(self, inflated_map: InflatedMap, config: RrtStarConfig | None = None) -> None:
        self.inflated = inflated_map
        self.config = config or RrtStarConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, problem: PlanningProblem) -> PlanningResult:
        started = time.perf_counter()
        cfg = self.config

        if self.inflated.is_colliding(problem.start):
            return PlanningResult.failure(PlannerStatus.START_IN_COLLISION)
        if self.inflated.is_colliding(problem.goal):
            return PlanningResult.failure(PlannerStatus.GOAL_IN_COLLISION)

        nodes: list[Vec3] = [problem.start]
        parents: list[int] = [-1]
        costs: list[float] = [0.0]
        best_goal_index: int | None = None
        best_goal_cost = float("inf")
        iterations = 0

        # Deterministic budget: wall clock is only ever *reported* (in
        # ``planning_time``), never consulted mid-search.
        budget_iterations = cfg.max_iterations
        if problem.time_budget > 0 and cfg.nominal_iteration_cost > 0:
            budget_iterations = min(
                cfg.max_iterations,
                max(1, int(problem.time_budget / cfg.nominal_iteration_cost)),
            )

        for iteration in range(budget_iterations):
            iterations = iteration + 1

            sample = self._sample(problem)
            nearest_index = self._nearest(nodes, sample)
            new_point = self._steer(nodes[nearest_index], sample, cfg.step_size)
            new_point = self._clamp_altitude(new_point, problem)

            if self.inflated.is_colliding(new_point):
                continue
            if self._edge_blocked(nodes[nearest_index], new_point):
                continue

            # Choose the best parent within the rewire radius.
            neighbour_indices = self._near(nodes, new_point, cfg.rewire_radius)
            best_parent = nearest_index
            best_cost = costs[nearest_index] + nodes[nearest_index].distance_to(new_point)
            for index in neighbour_indices:
                candidate_cost = costs[index] + nodes[index].distance_to(new_point)
                if candidate_cost < best_cost and not self._edge_blocked(nodes[index], new_point):
                    best_parent = index
                    best_cost = candidate_cost

            nodes.append(new_point)
            parents.append(best_parent)
            costs.append(best_cost)
            new_index = len(nodes) - 1

            # Rewire neighbours through the new node when that shortens them.
            for index in neighbour_indices:
                rewired_cost = best_cost + new_point.distance_to(nodes[index])
                if rewired_cost < costs[index] and not self._edge_blocked(new_point, nodes[index]):
                    parents[index] = new_index
                    costs[index] = rewired_cost

            # Track the best node that can connect to the goal.
            if new_point.distance_to(problem.goal) <= cfg.goal_tolerance and not self._edge_blocked(
                new_point, problem.goal
            ):
                goal_cost = best_cost + new_point.distance_to(problem.goal)
                if goal_cost < best_goal_cost:
                    best_goal_cost = goal_cost
                    best_goal_index = new_index

        if best_goal_index is None:
            return PlanningResult.failure(
                PlannerStatus.NO_PATH_FOUND,
                iterations=iterations,
                planning_time=time.perf_counter() - started,
            )

        waypoints = self._extract(nodes, parents, best_goal_index)
        waypoints.append(problem.goal)
        return PlanningResult(
            status=PlannerStatus.SUCCESS,
            waypoints=waypoints,
            cost=path_length(waypoints),
            iterations=iterations,
            nodes_expanded=len(nodes),
            planning_time=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sample(self, problem: PlanningProblem) -> Vec3:
        cfg = self.config
        if self._rng.random() < cfg.goal_bias:
            return problem.goal
        # Informed region: an axis-aligned box around the start-goal segment
        # grown by the sample margin.
        lo_x = min(problem.start.x, problem.goal.x) - cfg.sample_margin
        hi_x = max(problem.start.x, problem.goal.x) + cfg.sample_margin
        lo_y = min(problem.start.y, problem.goal.y) - cfg.sample_margin
        hi_y = max(problem.start.y, problem.goal.y) + cfg.sample_margin
        lo_z = max(problem.min_altitude, min(problem.start.z, problem.goal.z) - 3.0)
        hi_z = min(problem.max_altitude, max(problem.start.z, problem.goal.z) + cfg.sample_margin)
        return Vec3(
            float(self._rng.uniform(lo_x, hi_x)),
            float(self._rng.uniform(lo_y, hi_y)),
            float(self._rng.uniform(lo_z, max(lo_z + 0.1, hi_z))),
        )

    @staticmethod
    def _nearest(nodes: list[Vec3], point: Vec3) -> int:
        best_index = 0
        best_distance = float("inf")
        for index, node in enumerate(nodes):
            distance = node.distance_to(point)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index

    @staticmethod
    def _near(nodes: list[Vec3], point: Vec3, radius: float) -> list[int]:
        return [index for index, node in enumerate(nodes) if node.distance_to(point) <= radius]

    @staticmethod
    def _steer(from_point: Vec3, to_point: Vec3, step: float) -> Vec3:
        delta = to_point - from_point
        distance = delta.norm()
        if distance <= step or distance < 1e-9:
            return to_point
        return from_point + delta * (step / distance)

    @staticmethod
    def _clamp_altitude(point: Vec3, problem: PlanningProblem) -> Vec3:
        return point.with_z(min(problem.max_altitude, max(problem.min_altitude, point.z)))

    def _edge_blocked(self, a: Vec3, b: Vec3) -> bool:
        return self.inflated.segment_colliding(a, b, step=self.config.collision_check_step)

    @staticmethod
    def _extract(nodes: list[Vec3], parents: list[int], goal_index: int) -> list[Vec3]:
        path = []
        index = goal_index
        while index != -1:
            path.append(nodes[index])
            index = parents[index]
        path.reverse()
        return path
