"""Grid A* search.

A 26-connected A* over voxel centres, used by the EGO-style local planner.
The crucial, paper-faithful limitation is the **bounded search pool**: the
open/closed sets may not exceed ``max_expansions`` nodes, because the real
planner must answer within a real-time deadline.  Routing around a large
building needs more expansions than the pool allows, which is exactly why
MLS-V2 "often failed to find viable solutions within the constraints of the
search pool size" (§II.B).
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.geometry import Vec3
from repro.planning.types import PlannerStatus, PlanningProblem, PlanningResult, path_length

#: 26-connected neighbourhood offsets.
_NEIGHBOURS = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if not (dx == 0 and dy == 0 and dz == 0)
]


@dataclass(frozen=True)
class AStarConfig:
    """Grid resolution and search-pool bound."""

    resolution: float = 1.0
    max_expansions: int = 2500
    heuristic_weight: float = 1.2
    vertical_cost_factor: float = 1.5


class AStarPlanner:
    """Bounded 3D grid A*.

    Args:
        is_colliding: collision predicate over world points (already
            inflation-aware).
        config: resolution and pool bounds.
    """

    name = "A*"

    def __init__(
        self,
        is_colliding: Callable[[Vec3], bool],
        config: AStarConfig | None = None,
    ) -> None:
        self.is_colliding = is_colliding
        self.config = config or AStarConfig()

    def plan(self, problem: PlanningProblem) -> PlanningResult:
        """Search for a path from start to goal on the implicit grid."""
        started = time.perf_counter()
        cfg = self.config
        resolution = cfg.resolution

        def to_key(point: Vec3) -> tuple[int, int, int]:
            return (
                int(math.floor(point.x / resolution)),
                int(math.floor(point.y / resolution)),
                int(math.floor(point.z / resolution)),
            )

        def to_point(key: tuple[int, int, int]) -> Vec3:
            return Vec3(
                (key[0] + 0.5) * resolution,
                (key[1] + 0.5) * resolution,
                (key[2] + 0.5) * resolution,
            )

        if self.is_colliding(problem.start):
            return PlanningResult.failure(PlannerStatus.START_IN_COLLISION)
        if self.is_colliding(problem.goal):
            return PlanningResult.failure(PlannerStatus.GOAL_IN_COLLISION)

        start_key = to_key(problem.start)
        goal_key = to_key(problem.goal)
        goal_point = to_point(goal_key)

        def heuristic(key: tuple[int, int, int]) -> float:
            return to_point(key).distance_to(goal_point) * cfg.heuristic_weight

        counter = itertools.count()
        open_heap: list[tuple[float, int, tuple[int, int, int]]] = [
            (heuristic(start_key), next(counter), start_key)
        ]
        came_from: dict[tuple[int, int, int], tuple[int, int, int]] = {}
        g_score: dict[tuple[int, int, int], float] = {start_key: 0.0}
        closed: set[tuple[int, int, int]] = set()
        expansions = 0

        while open_heap:
            if expansions >= cfg.max_expansions:
                return PlanningResult.failure(
                    PlannerStatus.TIMEOUT,
                    iterations=expansions,
                    planning_time=time.perf_counter() - started,
                )
            _, _, current = heapq.heappop(open_heap)
            if current in closed:
                continue
            closed.add(current)
            expansions += 1

            if current == goal_key:
                waypoints = self._reconstruct(came_from, current, to_point)
                waypoints[0] = problem.start
                waypoints[-1] = problem.goal
                return PlanningResult(
                    status=PlannerStatus.SUCCESS,
                    waypoints=waypoints,
                    cost=path_length(waypoints),
                    iterations=expansions,
                    nodes_expanded=expansions,
                    planning_time=time.perf_counter() - started,
                )

            current_point = to_point(current)
            for dx, dy, dz in _NEIGHBOURS:
                neighbour = (current[0] + dx, current[1] + dy, current[2] + dz)
                if neighbour in closed:
                    continue
                neighbour_point = to_point(neighbour)
                if not problem.min_altitude <= neighbour_point.z <= problem.max_altitude:
                    continue
                if self.is_colliding(neighbour_point):
                    continue
                step_cost = current_point.distance_to(neighbour_point)
                if dz != 0:
                    step_cost *= cfg.vertical_cost_factor
                tentative = g_score[current] + step_cost
                if tentative < g_score.get(neighbour, float("inf")):
                    g_score[neighbour] = tentative
                    came_from[neighbour] = current
                    heapq.heappush(
                        open_heap,
                        (tentative + heuristic(neighbour), next(counter), neighbour),
                    )

        return PlanningResult.failure(
            PlannerStatus.NO_PATH_FOUND,
            iterations=expansions,
            planning_time=time.perf_counter() - started,
        )

    @staticmethod
    def _reconstruct(
        came_from: dict, current: tuple[int, int, int], to_point: Callable
    ) -> list[Vec3]:
        keys = [current]
        while current in came_from:
            current = came_from[current]
            keys.append(current)
        keys.reverse()
        return [to_point(key) for key in keys]
