"""Shared planning problem / result types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Vec3


class PlannerStatus(enum.Enum):
    """Outcome of a planning attempt."""

    SUCCESS = "success"
    NO_PATH_FOUND = "no_path_found"
    TIMEOUT = "timeout"
    START_IN_COLLISION = "start_in_collision"
    GOAL_IN_COLLISION = "goal_in_collision"


@dataclass(frozen=True)
class PlanningProblem:
    """A single point-to-point planning query.

    Attributes:
        start: current vehicle position.
        goal: requested target position.
        time_budget: wall-clock budget in seconds the planner may spend; on
            the HIL platform this budget shrinks when the CPU is saturated.
        min_altitude / max_altitude: altitude band the path must respect.
    """

    start: Vec3
    goal: Vec3
    time_budget: float = 0.15
    min_altitude: float = 1.0
    max_altitude: float = 40.0


@dataclass
class PlanningResult:
    """What a planner returned."""

    status: PlannerStatus
    waypoints: list[Vec3] = field(default_factory=list)
    cost: float = float("inf")
    iterations: int = 0
    nodes_expanded: int = 0
    planning_time: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status is PlannerStatus.SUCCESS and len(self.waypoints) >= 2

    @staticmethod
    def failure(status: PlannerStatus, iterations: int = 0, planning_time: float = 0.0) -> "PlanningResult":
        return PlanningResult(
            status=status, iterations=iterations, planning_time=planning_time
        )


def path_length(waypoints: list[Vec3]) -> float:
    """Total Euclidean length of a waypoint polyline."""
    return sum(a.distance_to(b) for a, b in zip(waypoints, waypoints[1:]))
