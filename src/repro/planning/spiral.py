"""Spiral search pattern for the SEARCH state.

"Upon reaching this position, if no marker is detected, the drone attempts a
spiral search pattern" (§III.D).  The pattern is an Archimedean spiral of
waypoints at the search altitude, centred on the briefed GPS estimate of the
landing site, expanding until the configured radius is covered.
"""

from __future__ import annotations

import math

from repro.geometry import Vec3


def spiral_search_waypoints(
    center: Vec3,
    altitude: float,
    max_radius: float = 15.0,
    spacing: float = 3.0,
    points_per_turn: int = 8,
) -> list[Vec3]:
    """Waypoints of an outward Archimedean spiral.

    Args:
        center: spiral centre (the GPS estimate of the marker).
        altitude: altitude to fly the pattern at.
        max_radius: radius at which the spiral stops.
        spacing: radial growth per full turn (the camera footprint overlap).
        points_per_turn: angular sampling density.

    Returns:
        Waypoints starting just outside the centre and growing outward.
    """
    if max_radius <= 0 or spacing <= 0 or points_per_turn < 3:
        raise ValueError("spiral parameters must be positive (>= 3 points per turn)")

    waypoints = [center.with_z(altitude)]
    angle = 0.0
    angle_step = 2.0 * math.pi / points_per_turn
    radius = spacing / points_per_turn
    while radius <= max_radius:
        waypoints.append(
            Vec3(
                center.x + radius * math.cos(angle),
                center.y + radius * math.sin(angle),
                altitude,
            )
        )
        angle += angle_step
        radius += spacing / points_per_turn
    return waypoints
