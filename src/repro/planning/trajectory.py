"""Waypoint trajectories, smoothing and following.

Planners return waypoint polylines; the decision-making module wraps them in
a :class:`Trajectory` and drives the autopilot through a
:class:`TrajectoryFollower`.  The follower advances to the next waypoint when
the vehicle gets within an acceptance radius — meaning sharp corners get cut
by the vehicle's momentum, which is the mechanism behind the MLS-V3 corner
failures the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Vec3
from repro.planning.types import path_length


@dataclass
class Trajectory:
    """An ordered list of waypoints with bookkeeping helpers."""

    waypoints: list[Vec3] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.waypoints)

    def __bool__(self) -> bool:
        return len(self.waypoints) > 0

    @property
    def length(self) -> float:
        return path_length(self.waypoints)

    @property
    def goal(self) -> Vec3 | None:
        return self.waypoints[-1] if self.waypoints else None

    def sample_every(self, spacing: float) -> list[Vec3]:
        """Resample the polyline at approximately uniform spacing."""
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        if len(self.waypoints) < 2:
            return list(self.waypoints)
        samples = [self.waypoints[0]]
        for a, b in zip(self.waypoints, self.waypoints[1:]):
            segment = b - a
            length = segment.norm()
            if length < 1e-9:
                continue
            steps = max(1, int(length // spacing))
            for step in range(1, steps + 1):
                samples.append(a.lerp(b, min(1.0, step * spacing / length)))
        if samples[-1].distance_to(self.waypoints[-1]) > 1e-6:
            samples.append(self.waypoints[-1])
        return samples

    def max_corner_angle(self) -> float:
        """The sharpest turn (radians) along the trajectory; 0 for straight paths."""
        import math

        sharpest = 0.0
        for previous, current, following in zip(
            self.waypoints, self.waypoints[1:], self.waypoints[2:]
        ):
            incoming = current - previous
            outgoing = following - current
            if incoming.norm() < 1e-9 or outgoing.norm() < 1e-9:
                continue
            cosine = incoming.normalized().dot(outgoing.normalized())
            cosine = max(-1.0, min(1.0, cosine))
            sharpest = max(sharpest, math.acos(cosine))
        return sharpest


def shortcut_smooth(
    waypoints: list[Vec3],
    segment_is_free,
    max_passes: int = 2,
) -> list[Vec3]:
    """Greedy shortcut smoothing: drop intermediate waypoints when the direct
    segment between their neighbours is collision-free.

    Args:
        waypoints: input polyline.
        segment_is_free: callable ``(a, b) -> bool`` returning True when the
            straight segment is traversable.
        max_passes: number of smoothing sweeps.
    """
    if len(waypoints) <= 2:
        return list(waypoints)
    smoothed = list(waypoints)
    for _ in range(max_passes):
        changed = False
        index = 0
        result = [smoothed[0]]
        while index < len(smoothed) - 1:
            # Try to jump as far ahead as possible from the current waypoint.
            jump = len(smoothed) - 1
            while jump > index + 1:
                if segment_is_free(smoothed[index], smoothed[jump]):
                    changed = True
                    break
                jump -= 1
            result.append(smoothed[jump])
            index = jump
        smoothed = result
        if not changed:
            break
    return smoothed


@dataclass
class TrajectoryFollower:
    """Feeds trajectory waypoints to the autopilot one at a time.

    Attributes:
        trajectory: the trajectory being tracked.
        acceptance_radius: distance at which a waypoint counts as reached.
        current_index: index of the waypoint currently being tracked.
    """

    trajectory: Trajectory
    acceptance_radius: float = 0.8
    current_index: int = 0

    def current_target(self) -> Vec3 | None:
        if not self.trajectory or self.current_index >= len(self.trajectory.waypoints):
            return None
        return self.trajectory.waypoints[self.current_index]

    def advance(self, position: Vec3) -> Vec3 | None:
        """Update progress given the current vehicle position.

        Returns the waypoint to track next, or ``None`` when the trajectory is
        complete.
        """
        target = self.current_target()
        while target is not None and position.distance_to(target) <= self.acceptance_radius:
            self.current_index += 1
            target = self.current_target()
        return target

    @property
    def is_complete(self) -> bool:
        return self.current_index >= len(self.trajectory.waypoints)

    def remaining_waypoints(self) -> list[Vec3]:
        return self.trajectory.waypoints[self.current_index :]
