"""EGO-Planner-style local planner (MLS-V2).

A* over the dense local voxel window, with the two behaviours the paper
documents and later fixes:

* **Bounded search pool** — the A* expansion budget reflects the real-time
  deadline; when a large obstacle (building) blocks the way, the bounded
  search fails and the planner falls back to issuing the straight segment to
  the local goal ("defaulting to unsafe straight-line paths", §V.A).
* **Local information only** — collision checks consult only the local voxel
  window, so geometry that has not been observed recently (tree canopies, the
  far side of buildings) does not constrain the plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.geometry import Vec3
from repro.mapping.inflation import InflatedMap, InflationConfig
from repro.mapping.voxel_grid import VoxelGrid
from repro.planning.astar import AStarConfig, AStarPlanner
from repro.planning.types import PlannerStatus, PlanningProblem, PlanningResult, path_length


@dataclass(frozen=True)
class EgoPlannerConfig:
    """Local-planner tuning."""

    grid_resolution: float = 1.0
    max_expansions: int = 900
    local_goal_horizon: float = 12.0
    inflation: InflationConfig = InflationConfig()
    fallback_to_straight_line: bool = True


class EgoLocalPlanner:
    """Local A* planner over the dense sliding-window grid."""

    name = "EGO-Planner (local A*)"

    def __init__(self, local_map: VoxelGrid, config: EgoPlannerConfig | None = None) -> None:
        self.local_map = local_map
        self.config = config or EgoPlannerConfig()
        self.inflated = InflatedMap(local_map, self.config.inflation)
        self._astar = AStarPlanner(
            self.inflated.is_colliding,
            AStarConfig(
                resolution=self.config.grid_resolution,
                max_expansions=self.config.max_expansions,
            ),
        )
        self.last_fallback_used = False

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, problem: PlanningProblem) -> PlanningResult:
        """Plan towards the goal, clipped to the local horizon.

        If the goal is beyond the local window, the planner targets the point
        on the start-goal line at the horizon distance (a *local goal*), which
        is how receding-horizon local planners operate.
        """
        started = time.perf_counter()
        self.last_fallback_used = False
        local_goal = self._local_goal(problem.start, problem.goal)
        local_problem = PlanningProblem(
            start=problem.start,
            goal=local_goal,
            time_budget=problem.time_budget,
            min_altitude=problem.min_altitude,
            max_altitude=problem.max_altitude,
        )
        result = self._astar.plan(local_problem)
        if result.succeeded:
            return result

        # The paper's observed failure handling: when the bounded search fails
        # (large obstacle, goal voxel occupied), the system falls back to the
        # straight segment towards the local goal — which is exactly what made
        # some V2 runs end in collisions near buildings.
        if self.config.fallback_to_straight_line:
            self.last_fallback_used = True
            waypoints = [problem.start, local_goal]
            return PlanningResult(
                status=PlannerStatus.SUCCESS,
                waypoints=waypoints,
                cost=path_length(waypoints),
                iterations=result.iterations,
                nodes_expanded=result.nodes_expanded,
                planning_time=time.perf_counter() - started,
            )
        return PlanningResult.failure(
            result.status,
            iterations=result.iterations,
            planning_time=time.perf_counter() - started,
        )

    def _local_goal(self, start: Vec3, goal: Vec3) -> Vec3:
        """Clip the goal to the local planning horizon."""
        delta = goal - start
        distance = delta.norm()
        horizon = self.config.local_goal_horizon
        if distance <= horizon or distance < 1e-9:
            return goal
        return start + delta * (horizon / distance)

    # ------------------------------------------------------------------ #
    # map plumbing
    # ------------------------------------------------------------------ #
    def update_map(self, cloud, vehicle_position: Vec3) -> None:
        """Re-centre the window on the vehicle and fuse a depth cloud."""
        self.local_map.recenter(vehicle_position)
        self.local_map.integrate_cloud(cloud)

    def path_is_safe(self, waypoints: list[Vec3]) -> bool:
        """Validate a path against the *current* local map."""
        return not self.inflated.path_colliding(waypoints)
