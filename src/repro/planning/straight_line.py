"""MLS-V1's "planner": fly straight at the goal.

The first-generation system has no obstacle-avoidance capability ("an
OpenCV-based marker detector without object avoidance capabilities", §IV.B.2)
so its path to any goal is a straight line at the commanded altitude.  The
collision consequences show up in Table I.
"""

from __future__ import annotations

import time

from repro.planning.types import PlannerStatus, PlanningProblem, PlanningResult, path_length


class StraightLinePlanner:
    """Direct start-to-goal segment, no collision checking."""

    name = "straight-line"

    def plan(self, problem: PlanningProblem) -> PlanningResult:
        started = time.perf_counter()
        waypoints = [problem.start, problem.goal]
        return PlanningResult(
            status=PlannerStatus.SUCCESS,
            waypoints=waypoints,
            cost=path_length(waypoints),
            iterations=1,
            nodes_expanded=0,
            planning_time=time.perf_counter() - started,
        )
