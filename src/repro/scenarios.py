"""Scenario-suite CLI: ``python -m repro.scenarios``.

Subcommands:

* ``presets`` — list the named suite presets and the stress axes.
* ``generate`` — sample a suite from a preset, print its axis coverage and
  optionally export it as JSONL (``--out``).
* ``describe`` — inspect a preset's spec or a previously exported suite file.
* ``export`` — ``generate`` that requires ``--out`` (for scripts/CI).
* ``run`` — run a campaign over a generated (or loaded) suite, persisting
  per-run JSONL results under ``--out`` so the campaign is resumable.

Examples::

    python -m repro.scenarios generate --seed 7 --count 500
    python -m repro.scenarios export --preset night --count 50 --out night.jsonl
    python -m repro.scenarios describe --suite night.jsonl
    python -m repro.scenarios run --preset smoke --systems mls-v1 \\
        --workers 2 --out results/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.world.scenario_gen import (
    PRESET_NAMES,
    STRESS_AXES,
    SUITE_PRESETS,
    axis_coverage,
    generate_suite,
)
from repro.world.scenario_suite import ScenarioSuite


def _suite_summary(suite: ScenarioSuite) -> str:
    coverage = axis_coverage(suite)
    spanned = sum(1 for hits in coverage.values() if hits > 0)
    lines = [
        f"suite {suite.name or '(unnamed)'}: {len(suite)} scenarios, "
        f"{suite.repetitions} repetition(s), {suite.adverse_count} adverse-weather",
        f"stress axes spanned: {spanned}/{len(STRESS_AXES)}",
    ]
    width = max(len(axis) for axis in STRESS_AXES)
    for axis, hits in coverage.items():
        share = 100.0 * hits / len(suite) if len(suite) else 0.0
        lines.append(f"  {axis:<{width}}  {hits:>5} scenarios ({share:5.1f}%)")
    return "\n".join(lines)


def resolve_suite_args(args: argparse.Namespace) -> ScenarioSuite:
    """Build the suite a CLI invocation asked for: file, spec or preset.

    Shared by every campaign-running CLI that exposes the standard
    ``--suite`` / ``--spec`` / ``--preset`` / ``--count`` / ``--seed`` /
    ``--repetitions`` arguments (``repro.scenarios`` and ``repro.faults``).
    A ``--spec`` SuiteSpec JSON file goes through the structured validator
    (:mod:`repro.world.spec_validation`), so every field problem is reported
    at once — the same checks the campaign service applies to submissions.
    """
    if getattr(args, "suite", None):
        return ScenarioSuite.from_jsonl(args.suite)
    if getattr(args, "spec", None):
        from repro.world.spec_validation import load_suite_spec

        spec = load_suite_spec(args.spec)
        return generate_suite(
            spec, count=args.count, seed=args.seed, repetitions=args.repetitions
        )
    return generate_suite(
        args.preset, count=args.count, seed=args.seed, repetitions=args.repetitions
    )


#: Backwards-compatible internal alias.
_build_suite = resolve_suite_args


def _add_generation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--preset",
        default="stress",
        choices=sorted(PRESET_NAMES),
        help="suite preset to sample from (default: stress, every axis engaged)",
    )
    parser.add_argument(
        "--spec", default=None,
        help="generate from a SuiteSpec JSON file instead of a preset "
        "(validated field by field; see SuiteSpec.to_dict)",
    )
    parser.add_argument("--seed", type=int, default=None, help="suite master seed")
    parser.add_argument("--count", type=int, default=None, help="number of scenarios")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="repetitions per scenario"
    )


def _cmd_presets(args: argparse.Namespace) -> int:
    print("suite presets:")
    print(f"  {'paper':<16} the paper's fixed 10-map x 10-scenario suite (§IV.B.1)")
    for name, spec in sorted(SUITE_PRESETS.items()):
        sample = spec.with_overrides(count=min(spec.count, 30)).generate()
        axes = [axis for axis, hits in axis_coverage(sample).items() if hits > 0]
        print(f"  {name:<16} {spec.count} scenarios; axes: {', '.join(axes) or 'none'}")
    print("\nstress axes:")
    for axis, description in STRESS_AXES.items():
        print(f"  {axis:<18} {description}")
    return 0


def _cmd_generate(args: argparse.Namespace, require_out: bool = False) -> int:
    if require_out and not args.out:
        print("export requires --out FILE", file=sys.stderr)
        return 2
    suite = _build_suite(args)
    failures = 0
    if args.check_buildable:
        for scenario in suite:
            try:
                scenario.build_world()
            except Exception as error:  # pragma: no cover - defensive
                failures += 1
                print(f"  BUILD FAILURE {scenario.scenario_id}: {error}", file=sys.stderr)
    print(_suite_summary(suite))
    if args.check_buildable:
        print(f"buildable: {len(suite) - failures}/{len(suite)}")
    if args.out:
        path = suite.to_jsonl(args.out)
        print(f"wrote {path}")
    return 1 if failures else 0


def _cmd_describe(args: argparse.Namespace) -> int:
    if not args.suite and args.preset in SUITE_PRESETS:
        spec = SUITE_PRESETS[args.preset].with_overrides(
            args.count, args.seed, args.repetitions
        )
        print(f"preset {args.preset}: seed={spec.seed} count={spec.count} "
              f"repetitions={spec.repetitions} map_pool={spec.map_pool}")
        scenario = spec.scenario
        print(f"  map styles: {[style.value for style in scenario.map_styles]}")
        print(f"  adverse-weather probability: {scenario.adverse_probability}")
        for axis_field in (
            "wind_speed", "gust_intensity", "gps_degradation", "image_noise",
            "precipitation", "obstacle_density", "lighting", "target_occlusion",
        ):
            value = getattr(scenario, axis_field)
            if value is not None:
                print(f"  {axis_field}: [{value.low}, {value.high}]")
        print(f"  decoys: {scenario.decoy_count}, gps error: "
              f"[{scenario.gps_error.low}, {scenario.gps_error.high}] m")
        print()
    suite = _build_suite(args)
    print(_suite_summary(suite))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    # Deferred import: the campaign module pulls in the whole system stack,
    # which suite generation/description does not need.
    from repro.bench.campaign import Campaign
    from repro.bench.tables import render_outcome_rates

    suite = _build_suite(args)
    campaign = Campaign(*[name.strip() for name in args.systems.split(",") if name.strip()])
    campaign.suite(suite)
    if args.repetitions is not None:
        campaign.repetitions(args.repetitions)
    if args.workers > 1:
        campaign.parallel(args.workers)
    if args.out:
        campaign.out(args.out)
    if args.trace:
        campaign.trace(args.trace)
    if args.verbose:
        campaign.progress(print)
    results = campaign.run()
    print(render_outcome_rates(results))
    if args.out:
        print(f"per-run JSONL results under {args.out} (re-run to resume)")
    if args.trace:
        print(
            f"flight traces under {args.trace} "
            f"(report: python -m repro.obs report {args.trace})"
        )
    if args.report:
        from repro.analysis import CampaignAnalysis

        analysis = CampaignAnalysis(results, suites=[suite])
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(analysis.report(), encoding="utf-8")
        print(f"analytics report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Generate, inspect and run procedural scenario suites.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("presets", help="list suite presets and stress axes")

    for name, help_text in (
        ("generate", "sample a suite and print its axis coverage"),
        ("export", "sample a suite and write it as JSONL (requires --out)"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        _add_generation_args(cmd)
        cmd.add_argument("--out", default=None, help="write the suite as JSONL here")
        cmd.add_argument(
            "--check-buildable",
            action="store_true",
            help="also instantiate every scenario's world (slower)",
        )

    describe = sub.add_parser("describe", help="inspect a preset spec or a suite file")
    _add_generation_args(describe)
    describe.add_argument("--suite", default=None, help="a suite JSONL file to inspect")

    run = sub.add_parser("run", help="run a campaign over a generated suite")
    _add_generation_args(run)
    run.add_argument("--suite", default=None, help="run over a suite JSONL file instead")
    run.add_argument(
        "--systems", default="mls-v1,mls-v2,mls-v3",
        help="comma-separated system presets (default: all three generations)",
    )
    run.add_argument("--workers", type=int, default=1, help="worker processes")
    run.add_argument("--out", default=None, help="directory for per-run JSONL results")
    run.add_argument(
        "--trace", default=None,
        help="directory for flight-trace JSONL (side-channel: campaign "
        "records are byte-identical with or without it)",
    )
    run.add_argument(
        "--report", default=None,
        help="write a markdown analytics report (Wilson/bootstrap CIs) here; "
        "see python -m repro.analysis for the full toolkit",
    )
    run.add_argument("--verbose", action="store_true", help="print one line per run")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "presets":
            return _cmd_presets(args)
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "export":
            return _cmd_generate(args, require_out=True)
        if args.command == "describe":
            return _cmd_describe(args)
        return _cmd_run(args)
    except (FileNotFoundError, ValueError) as error:
        # Missing suite files and invalid --spec payloads (including the
        # multi-line issue list of a SpecValidationError) get a diagnostic
        # and exit 2, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
