"""The campaign platform HTTP server (stdlib ``http.server`` only).

Routes (all JSON unless noted)::

    GET  /healthz                      liveness + job counts + pool health
    GET  /metrics                      Prometheus text exposition
    GET  /jobs                         all jobs, submission order
    POST /jobs                         submit a campaign (dedup by content)
    GET  /jobs/{id}                    full queue/shard status
    POST /jobs/{id}/cancel             cancel (workers release mid-shard)
    GET  /jobs/{id}/records?offset=&limit=&system=
                                       paginated merged run records
    GET  /jobs/{id}/report             summary report (markdown, memoized)
    GET  /jobs/{id}/slice/{factor}     factor-sliced report (markdown)
    GET  /jobs/{id}/coverage           fault-injection coverage (markdown)

The server is a :class:`ThreadingHTTPServer`: every request handler runs on
its own thread against the shared :class:`~repro.service.jobs.JobStore`,
whose state is the directory tree — which is why killing the process loses
nothing (see ``jobs.py``).  Report responses carry ``X-Report-Cache:
hit|miss`` and ``X-Report-Key`` headers so clients (and the CI smoke job)
can observe the memo working.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.analysis.memo import cached_report
from repro.analysis.slicing import FACTOR_NAMES
from repro.core.metrics import RESULT_SCHEMA_VERSION
from repro.dispatch.merge import ShardResultError
from repro.jsonl import read_frame_header, read_frame_page
from repro.obs.aggregate import fleet_render
from repro.obs.metrics import METRICS
from repro.world.spec_validation import SpecValidationError

from repro.service.jobs import Job, JobStore, UnknownJobError
from repro.service.pool import WorkerPool

#: Records returned by ``GET .../records`` when no ``limit`` is given.
DEFAULT_PAGE_LIMIT = 100


class ServiceError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload


def _bad_request(message: str) -> ServiceError:
    return ServiceError(400, {"error": message})


class CampaignServer(ThreadingHTTPServer):
    """The platform server: HTTP front + job store + in-process pool."""

    daemon_threads = True

    def __init__(
        self,
        root: str,
        address: tuple[str, int] = ("127.0.0.1", 0),
        *,
        workers: int = 2,
        lease_seconds: float | None = None,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = JobStore(root)
        pool_kwargs: dict[str, Any] = {"workers": workers}
        if lease_seconds is not None:
            pool_kwargs["lease_seconds"] = lease_seconds
        if not quiet:
            pool_kwargs["log"] = print
        self.pool = WorkerPool(self.store, **pool_kwargs)
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_pool(self) -> None:
        self.pool.start()

    def shutdown(self) -> None:  # also called by serve() on KeyboardInterrupt
        self.pool.stop()
        super().shutdown()


class _Handler(BaseHTTPRequestHandler):
    server: CampaignServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    #: Status of the last response written, read back by the access log.
    _last_status: int | None = None

    def _send(self, status: int, body: bytes, content_type: str,
              extra_headers: dict[str, str] | None = None) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict[str, Any],
                   extra_headers: dict[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, "application/json", extra_headers)

    def _send_markdown(self, text: str, extra_headers: dict[str, str]) -> None:
        self._send(200, text.encode("utf-8"), "text/markdown; charset=utf-8",
                   extra_headers)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _bad_request("empty request body; expected JSON")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise _bad_request(f"request body is not valid JSON: {error}") from error

    def _job(self, job_id: str) -> Job:
        try:
            return self.server.store.get(job_id)
        except UnknownJobError:
            raise ServiceError(404, {"error": f"no such job: {job_id}"}) from None

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def _route(self, method: str) -> None:
        parts = urlsplit(self.path)
        query = {key: values[-1] for key, values in parse_qs(parts.query).items()}
        segments = [segment for segment in parts.path.split("/") if segment]
        started = perf_counter()
        self._last_status = None
        try:
            try:
                handled = self._dispatch(method, segments, query)
            except ServiceError as error:
                self._send_json(error.status, error.payload)
                return
            except SpecValidationError as error:
                self._send_json(400, error.to_payload())
                return
            except ShardResultError as error:
                self._send_json(409, {"error": str(error)})
                return
            except BrokenPipeError:  # client went away mid-response
                return
            except Exception as error:  # noqa: BLE001 - last-resort 500
                self._send_json(500, {"error": f"{type(error).__name__}: {error}"})
                return
            if not handled:
                self._send_json(
                    404, {"error": f"no such route: {method} {parts.path}"}
                )
        finally:
            self._observe_request(method, parts.path, segments, started)

    def _refresh_gauges(self) -> None:
        """Fold scrape-time state (jobs, pool threads) into the registry."""
        store = self.server.store
        counts = {state: 0 for state in ("queued", "running", "done", "cancelled")}
        for job in store.jobs():
            try:
                counts[store.job_state(job)] += 1
            except (OSError, ValueError, KeyError):
                continue  # half-planned or torn directory: not scrapable
        jobs_gauge = METRICS.gauge(
            "repro_service_jobs", "Submitted jobs by lifecycle state."
        )
        # Clear-then-set: the gauge is rebuilt wholesale each scrape, so a
        # label value whose state no longer exists disappears instead of
        # rendering its last count forever.  The four canonical states are
        # always (re)set — to zero when empty — so dashboards keep their
        # series.
        jobs_gauge.clear()
        for state, count in counts.items():
            jobs_gauge.set(count, state=state)
        pool = self.server.pool.health()
        METRICS.gauge(
            "repro_service_pool_threads_alive", "Live worker-pool threads."
        ).set(sum(1 for thread in pool["threads"] if thread["alive"]))
        ages = [
            thread["last_progress_age"]
            for thread in pool["threads"]
            if thread["last_progress_age"] is not None
        ]
        METRICS.gauge(
            "repro_service_pool_max_progress_age_seconds",
            "Seconds since the least recently active pool thread progressed.",
        ).set(max(ages) if ages else 0.0)

    @staticmethod
    def _route_template(segments: list[str]) -> str:
        """The path with the job id collapsed (bounds metric cardinality)."""
        if segments[:1] == ["jobs"] and len(segments) >= 2:
            segments = ["jobs", "{id}", *segments[2:]]
        return "/" + "/".join(segments) if segments else "/"

    def _observe_request(
        self, method: str, path: str, segments: list[str], started: float
    ) -> None:
        """Per-request metrics + one structured access-log line."""
        elapsed = perf_counter() - started
        status = self._last_status if self._last_status is not None else 0
        route = self._route_template(segments)
        METRICS.counter(
            "repro_http_requests_total", "Service requests by route and status."
        ).inc(method=method, route=route, status=str(status))
        METRICS.histogram(
            "repro_http_request_seconds", "Service request latency by route."
        ).observe(elapsed, route=route)
        if self.server.quiet:
            return
        entry: dict[str, Any] = {
            "kind": "access",
            "method": method,
            "path": path,
            "status": status,
            "latency_ms": round(elapsed * 1000.0, 3),
        }
        if segments[:1] == ["jobs"] and len(segments) >= 2:
            entry["job"] = segments[1]  # the job id IS the plan fingerprint
        print(json.dumps(entry, sort_keys=True), file=sys.stderr, flush=True)

    def _dispatch(self, method: str, segments: list[str], query: dict[str, str]) -> bool:
        store = self.server.store
        if method == "GET" and segments == ["healthz"]:
            jobs = store.jobs()
            pool = self.server.pool.health()
            self._send_json(200, {
                "ok": True,
                "jobs": len(jobs),
                "pool_running": pool["running"],
                "pool": pool,
            })
            return True
        if method == "GET" and segments == ["metrics"]:
            self._refresh_gauges()
            # Own-process registry plus every job's flushed worker
            # snapshots, merged deterministically: counters from external
            # ``dispatch work`` processes appear in the same exposition as
            # the in-process pool's (see repro.obs.aggregate).
            body = fleet_render(
                (job.dispatch_dir for job in store.jobs()), registry=METRICS
            ).encode("utf-8")
            self._send(200, body, "text/plain; version=0.0.4; charset=utf-8")
            return True
        if segments[:1] != ["jobs"]:
            return False
        if method == "POST" and len(segments) == 1:
            job, created = store.submit(self._read_body())
            self._send_json(201 if created else 200, {
                "id": job.id,
                "created": created,
                "status": store.status_payload(job),
            })
            return True
        if method == "GET" and len(segments) == 1:
            self._send_json(200, {
                "jobs": [store.summary_payload(job) for job in store.jobs()]
            })
            return True
        if len(segments) < 2:
            return False
        job = self._job(segments[1])
        rest = segments[2:]
        if method == "GET" and not rest:
            self._send_json(200, store.status_payload(job))
            return True
        if method == "POST" and rest == ["cancel"]:
            store.cancel(job.id)
            self._send_json(200, {"id": job.id, "cancelled": True})
            return True
        if method == "GET" and rest == ["records"]:
            self._records(job, query)
            return True
        if method == "GET" and rest == ["report"]:
            self._report(job, "summary", None)
            return True
        if method == "GET" and rest == ["coverage"]:
            self._report(job, "coverage", None)
            return True
        if method == "GET" and len(rest) == 2 and rest[0] == "slice":
            if rest[1] not in FACTOR_NAMES:
                raise _bad_request(
                    f"unknown slice factor {rest[1]!r}; expected one of "
                    f"{sorted(FACTOR_NAMES)}"
                )
            self._report(job, "slice", rest[1])
            return True
        return False

    # ------------------------------------------------------------------ #
    # results endpoints
    # ------------------------------------------------------------------ #
    def _int_query(self, query: dict[str, str], key: str, default: int | None) -> int | None:
        if key not in query:
            return default
        try:
            value = int(query[key])
        except ValueError:
            raise _bad_request(f"{key} must be an integer, got {query[key]!r}") from None
        if value < 0:
            raise _bad_request(f"{key} must be non-negative, got {value}")
        return value

    def _merged_files(self, job: Job, system: str | None) -> list:
        merged = self.server.store.ensure_merged(job)
        files = sorted(merged.glob("*.jsonl"))
        if system is not None:
            files = [
                path for path in files
                if read_frame_header(path).get("system") == system
            ]
            if not files:
                raise ServiceError(
                    404, {"error": f"job {job.id} has no merged results for "
                                   f"system {system!r}"}
                )
        return files

    def _records(self, job: Job, query: dict[str, str]) -> None:
        offset = self._int_query(query, "offset", 0)
        limit = self._int_query(query, "limit", DEFAULT_PAGE_LIMIT)
        files = self._merged_files(job, query.get("system"))
        records: list[dict[str, Any]] = []
        total = 0
        for path in files:
            # Page across the per-system files as one concatenated stream:
            # each file reports its own total; the window slides along.
            remaining = None if limit is None else limit - len(records)
            _, page, file_total = read_frame_page(
                path,
                "campaign-result",
                RESULT_SCHEMA_VERSION,
                json.loads,
                offset=max(0, offset - total),
                limit=0 if remaining is not None and remaining <= 0 else remaining,
                description="run record",
            )
            records.extend(page)
            total += file_total
        self._send_json(200, {
            "id": job.id,
            "offset": offset,
            "limit": limit,
            "total": total,
            "records": records,
        })

    def _report(self, job: Job, kind: str, factor: str | None) -> None:
        self.server.store.ensure_merged(job)
        result = cached_report(job.dispatch_dir, kind=kind, factor=factor)
        self._send_markdown(result.text, {
            "X-Report-Cache": "hit" if result.hit else "miss",
            "X-Report-Key": result.key,
            "X-Report-Records": str(result.records),
        })

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")


def serve(
    root: str,
    host: str = "127.0.0.1",
    port: int = 8035,
    *,
    workers: int = 2,
    lease_seconds: float | None = None,
    quiet: bool = False,
) -> None:
    """Run the platform server until interrupted (the ``serve`` subcommand)."""
    server = CampaignServer(
        root, (host, port), workers=workers, lease_seconds=lease_seconds, quiet=quiet,
    )
    server.start_pool()
    print(f"campaign service on {server.url} (root {root}, {workers} worker(s))")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.pool.stop()
        server.server_close()
