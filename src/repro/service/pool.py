"""The service's supervised in-process worker pool.

Pool threads drain jobs with the ordinary dispatch worker loop
(:func:`repro.dispatch.worker.run_worker`), so everything the dispatch
subsystem guarantees — atomic lease claims, heartbeats, stale-lease
eviction, crash-resume from persisted records — holds unchanged, and
external ``python -m repro.dispatch work`` processes pointed at a job's
dispatch directory cooperate with the pool through the same files.

What the pool adds on top:

* **submission order**: threads always attack the oldest unfinished,
  uncancelled job first, so jobs complete in the order tenants submitted
  them (within a job, shards still fan out across all threads).
* **cancellation**: the worker's progress callback checks the job's cancel
  marker between missions and raises; ``run_worker`` releases the lease on
  the way out, so a cancelled shard is immediately re-claimable (and simply
  never re-claimed by this pool).
* **supervision**: a thread that hits an unexpected error logs it and goes
  back to scheduling instead of dying — the lease protocol already turned
  the failure into a resumable shard.
* **merging**: the first thread to see a job fully drained merges its shard
  outputs into ``merged/`` (store-lock serialised), which is what the
  records/report endpoints serve from.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable

from repro.dispatch.merge import ShardResultError
from repro.dispatch.queue import DEFAULT_LEASE_SECONDS
from repro.dispatch.worker import run_worker

from repro.service.jobs import Job, JobStore

#: How long an idle pool thread sleeps before re-scanning for work.
DEFAULT_IDLE_SECONDS = 0.2


class JobCancelled(Exception):
    """Raised inside the worker loop when the job's cancel marker appears."""


class WorkerPool:
    """``workers`` daemon threads draining a store's jobs in order.

    ``workers=0`` is the *external-only* mode: the pool starts no threads
    and the server merely plans, serves and merges — every shard is flown
    by external ``python -m repro.dispatch work <job>/dispatch`` processes
    (whose flushed metric snapshots still reach the merged ``/metrics``).
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        idle_seconds: float = DEFAULT_IDLE_SECONDS,
        log: Callable[[str], None] | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.store = store
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.idle_seconds = idle_seconds
        self._log = log
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        #: thread name -> wall-clock time of its last sign of life (scheduler
        #: pass or per-mission progress line); what /healthz reports.
        self._last_progress: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    def log(self, message: str) -> None:
        if self._log is not None:
            self._log(message)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("pool already started")
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._loop, name=f"service-worker-{index}",
                args=(index,), daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal every thread and wait; in-flight missions finish first.

        Anything unfinished stays resumable on disk: leases go stale and the
        next pool (or an external worker) re-claims the shards.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    @property
    def running(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def health(self) -> dict:
        """Per-thread liveness for ``/healthz``.

        ``last_progress_age`` is seconds since the thread last scheduled or
        reported a completed mission — a thread that is alive but has an age
        far beyond a mission's duration is wedged, which plain
        ``is_alive()`` cannot show.
        """
        now = time.time()
        threads = []
        for thread in self._threads:
            seen = self._last_progress.get(thread.name)
            threads.append(
                {
                    "name": thread.name,
                    "alive": thread.is_alive(),
                    "last_progress_age": (
                        round(now - seen, 3) if seen is not None else None
                    ),
                }
            )
        return {
            "workers": self.workers,
            "running": self.running,
            "threads": threads,
        }

    def _beat(self, name: str) -> None:
        self._last_progress[name] = time.time()

    # ------------------------------------------------------------------ #
    def _next_job(self) -> Job | None:
        """The oldest job with outstanding work, or ``None``."""
        for job in self.store.jobs():
            if job.cancelled:
                continue
            try:
                if not job.queue().all_done():
                    return job
            except (OSError, ValueError):
                continue  # half-planned or torn directory: skip this pass
        return None

    def _progress(self, job: Job, worker_id: str):
        thread_name = threading.current_thread().name

        def callback(line: str) -> None:
            self._beat(thread_name)
            if self._stop.is_set():
                raise JobCancelled(f"pool stopping; abandoning {job.id}")
            if job.cancelled:
                raise JobCancelled(f"job {job.id} cancelled")
            self.log(f"{line}")

        return callback

    def _drain_once(self, job: Job, worker_id: str) -> None:
        run_worker(
            job.dispatch_dir,
            worker_id=worker_id,
            lease_seconds=self.lease_seconds,
            # Return (don't poll) when other workers hold every remaining
            # shard, so this thread can move on to the next job.
            wait=False,
            progress=self._progress(job, worker_id),
        )
        if not job.cancelled and job.queue().all_done():
            try:
                self.store.ensure_merged(job)
                self.log(f"[{worker_id}] merged {job.id}")
            except ShardResultError as error:
                self.log(f"[{worker_id}] merge of {job.id} failed: {error}")

    def _loop(self, index: int) -> None:
        worker_id = f"service-pool-{index}"
        thread_name = threading.current_thread().name
        while not self._stop.is_set():
            self._beat(thread_name)
            job = self._next_job()
            if job is None:
                self._stop.wait(self.idle_seconds)
                continue
            try:
                self._drain_once(job, worker_id)
            except JobCancelled as cancelled:
                self.log(f"[{worker_id}] {cancelled}")
            except Exception:
                # Supervision: the shard this thread was flying is already
                # resumable (its lease expires), so log and keep scheduling.
                self.log(
                    f"[{worker_id}] worker error on job {job.id}:\n"
                    + traceback.format_exc()
                )
                self._stop.wait(self.idle_seconds)
            else:
                # Completed or nothing claimable right now; brief pause when
                # the job is still unfinished so we don't spin on a queue
                # held entirely by other workers.
                if not job.cancelled and not job.queue().all_done():
                    self._stop.wait(self.idle_seconds)
