"""The service's job model: submissions, dedup, and on-disk job state.

A *job* is one sharded campaign living under the service root::

    <root>/jobs/<plan-fingerprint>/
        job.json            submission record (sequence, payload, suite spec)
        cancelled.json      present once the job was cancelled
        dispatch/           a standard dispatch directory (plan.json, shards/,
                            merged/, .report-cache/) — the same layout
                            ``python -m repro.dispatch`` operates on

The job id IS the dispatch plan's content fingerprint, which is what makes
submission idempotent: planning is deterministic, so an identical submission
(same spec, seed, systems, repetitions, platform, fault plan, shards)
resolves to the same id and re-joins the existing job instead of re-flying
it.  Different submissions get disjoint directories, so they are isolated by
construction.

Everything the server knows is (re)derived from this tree — `job.json` for
the submission, the dispatch queue files for progress — so a restarted
server resumes exactly where the directory tree says the platform is.
External ``python -m repro.dispatch work <job>/dispatch`` workers operate on
the same files and therefore compose with the in-process pool.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.bench.campaign import PLATFORM_FACTORIES, campaign_result_filename
from repro.core.config import PRESETS, LandingSystemConfig, preset
from repro.dispatch.merge import merge_dispatch
from repro.dispatch.planner import build_plan, merged_dir, plan_dispatch, write_json_atomic
from repro.dispatch.queue import ShardQueue
from repro.faults.spec import FaultSpec
from repro.world.scenario_gen import PRESET_NAMES, SuiteSpec, generate_suite
from repro.world.scenario_suite import ScenarioSuite
from repro.world.spec_validation import (
    SpecIssue,
    SpecValidationError,
    validate_fault_axis,
    validate_inline_suite,
    validate_suite_spec,
)

JOBS_DIRNAME = "jobs"
JOB_FILENAME = "job.json"
CANCEL_FILENAME = "cancelled.json"
DISPATCH_DIRNAME = "dispatch"

#: Default execution grid for submissions that do not say otherwise.
DEFAULT_SYSTEMS = ("mls-v1", "mls-v2", "mls-v3")
DEFAULT_SHARDS = 2

#: Submission payload keys the intake accepts (anything else is an error, so
#: a typo like ``"repetition"`` cannot silently fall back to a default).
SUBMISSION_FIELDS = {
    "spec", "preset", "suite", "count", "seed", "repetitions",
    "systems", "shards", "platform", "faults",
}


class UnknownJobError(KeyError):
    """No job with the requested id exists under the service root."""


@dataclass
class Job:
    """One submitted campaign, addressed by its dispatch-plan fingerprint."""

    id: str
    sequence: int
    root: Path

    @property
    def dir(self) -> Path:
        return self.root / JOBS_DIRNAME / self.id

    @property
    def dispatch_dir(self) -> Path:
        return self.dir / DISPATCH_DIRNAME

    @property
    def cancelled(self) -> bool:
        return (self.dir / CANCEL_FILENAME).exists()

    def submission(self) -> dict[str, Any]:
        """The persisted submission record (``job.json``)."""
        return json.loads((self.dir / JOB_FILENAME).read_text(encoding="utf-8"))

    def queue(self) -> ShardQueue:
        return ShardQueue(self.dispatch_dir)


def _intake_suite(payload: dict[str, Any], issues: list[SpecIssue]) -> Any:
    """The suite axis of a submission: an inline SuiteSpec, an inline
    concrete suite (``"suite"``: explicit scenario objects, the fault-space
    search engine's probe surface) or a preset name."""
    given = [key for key in ("spec", "preset", "suite") if key in payload]
    if len(given) > 1:
        issues.append(
            SpecIssue(given[0], f"give exactly one of 'spec', 'preset' or "
                                f"'suite', got {given}")
        )
        return None
    if "suite" in payload:
        try:
            return validate_inline_suite(payload["suite"])
        except SpecValidationError as error:
            issues.extend(error.issues)
            return None
    if "spec" in payload:
        try:
            # Submission surface: fault axes inside the spec must be inline
            # objects or preset names, never server-side file paths.
            return validate_suite_spec(payload["spec"], allow_fault_paths=False)
        except SpecValidationError as error:
            issues.extend(
                SpecIssue(f"spec.{issue.field}" if issue.field else "spec", issue.reason)
                for issue in error.issues
            )
            return None
    name = payload.get("preset", "smoke")
    if not isinstance(name, str) or name not in PRESET_NAMES:
        issues.append(
            SpecIssue("preset", f"unknown suite preset {name!r}; expected one of "
                                f"{sorted(PRESET_NAMES)}")
        )
        return None
    return name


def _intake_systems(payload: dict[str, Any], issues: list[SpecIssue]) -> list[LandingSystemConfig]:
    names = payload.get("systems", list(DEFAULT_SYSTEMS))
    if not isinstance(names, (list, tuple)) or not all(isinstance(n, str) for n in names):
        issues.append(SpecIssue("systems", "expected a list of system preset names"))
        return []
    systems: list[LandingSystemConfig] = []
    for index, name in enumerate(names):
        try:
            systems.append(preset(name))
        except ValueError:
            issues.append(
                SpecIssue(f"systems[{index}]",
                          f"unknown system preset {name!r}; expected one of {sorted(PRESETS)}")
            )
    if not issues and not systems:
        issues.append(SpecIssue("systems", "at least one system is required"))
    return systems


def _intake_int(
    payload: dict[str, Any], key: str, default: int | None,
    issues: list[SpecIssue], *, minimum: int = 1,
) -> int | None:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        issues.append(SpecIssue(key, f"expected an integer, got {type(value).__name__}"))
        return default
    if value < minimum:
        issues.append(SpecIssue(key, f"must be >= {minimum}, got {value}"))
        return default
    return value


@dataclass
class Submission:
    """A validated submission, ready to plan."""

    suite: Any  # ScenarioSuite
    systems: list[LandingSystemConfig]
    shards: int
    repetitions: int | None
    platform: str
    faults: tuple[FaultSpec, ...]
    payload: dict[str, Any]


def validate_submission(payload: Any) -> Submission:
    """Validate a ``POST /jobs`` body; raises :class:`SpecValidationError`.

    Every field problem is collected into one structured error (the 400
    response body), mirroring the ``--spec`` CLI behaviour.
    """
    if not isinstance(payload, dict):
        raise SpecValidationError(
            [SpecIssue("", f"expected a submission object, got {type(payload).__name__}")],
            subject="submission",
        )
    issues: list[SpecIssue] = []
    for key in sorted(set(payload) - SUBMISSION_FIELDS):
        issues.append(SpecIssue(key, "unknown submission field"))

    spec = _intake_suite(payload, issues)
    systems = _intake_systems(payload, issues)
    shards = _intake_int(payload, "shards", DEFAULT_SHARDS, issues)
    repetitions = _intake_int(payload, "repetitions", None, issues)
    count = _intake_int(payload, "count", None, issues)
    seed = _intake_int(payload, "seed", None, issues, minimum=0)
    if "suite" in payload:
        for key in ("count", "seed"):
            if key in payload:
                issues.append(
                    SpecIssue(key, "not applicable with an inline 'suite' "
                                   "(its scenarios are already concrete)")
                )

    platform = payload.get("platform", "desktop")
    if platform not in PLATFORM_FACTORIES:
        issues.append(
            SpecIssue("platform", f"unknown platform {platform!r}; expected one of "
                                  f"{sorted(PLATFORM_FACTORIES)}")
        )

    faults: tuple[FaultSpec, ...] | None = None
    if payload.get("faults") is not None:
        try:
            faults = validate_fault_axis(payload["faults"], allow_paths=False)
        except SpecValidationError as error:
            issues.extend(error.issues)

    if issues or spec is None:
        raise SpecValidationError(issues, subject="submission")

    if isinstance(spec, ScenarioSuite):
        suite = spec
    else:
        suite = generate_suite(spec, count=count, seed=seed, repetitions=repetitions)
    if faults is None:
        faults = tuple(spec.faults) if isinstance(spec, SuiteSpec) else ()
    return Submission(
        suite=suite,
        systems=systems,
        shards=shards,
        repetitions=repetitions,
        platform=platform,
        faults=faults,
        payload=payload,
    )


class JobStore:
    """All jobs under one service root; safe for concurrent handler threads.

    The store holds no authoritative state: submissions, progress and
    results live in the directory tree, so any number of stores (a restarted
    server, an external CLI) see the same platform.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        (self.root / JOBS_DIRNAME).mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._merge_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def _job_at(self, directory: Path) -> Job | None:
        job_file = directory / JOB_FILENAME
        try:
            data = json.loads(job_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # half-created job (crashed mid-submit): invisible
        return Job(id=directory.name, sequence=int(data.get("sequence", 0)), root=self.root)

    def jobs(self) -> list[Job]:
        """Every job, in submission order (stable across restarts)."""
        found = []
        for directory in (self.root / JOBS_DIRNAME).iterdir():
            if directory.is_dir():
                job = self._job_at(directory)
                if job is not None:
                    found.append(job)
        return sorted(found, key=lambda job: (job.sequence, job.id))

    def get(self, job_id: str) -> Job:
        if "/" in job_id or job_id in (".", ".."):
            raise UnknownJobError(job_id)
        job = self._job_at(self.root / JOBS_DIRNAME / job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, payload: Any) -> tuple[Job, bool]:
        """Validate, plan and persist a submission; ``(job, created)``.

        Resubmitting an identical campaign returns the existing job with
        ``created=False`` (dedup by plan fingerprint).
        """
        submission = validate_submission(payload)
        plan = build_plan(
            submission.suite,
            submission.systems,
            shards=submission.shards,
            repetitions=submission.repetitions,
            platform=submission.platform,
            faults=submission.faults,
        )
        with self._lock:
            job = Job(id=plan.fingerprint, sequence=0, root=self.root)
            existing = self._job_at(job.dir)
            if existing is not None:
                return existing, False
            sequence = 1 + max((j.sequence for j in self.jobs()), default=0)
            job.dispatch_dir.mkdir(parents=True, exist_ok=True)
            # plan_dispatch re-validates and is idempotent, so a directory
            # left by a crashed earlier submit of the same campaign re-joins.
            plan_dispatch(
                job.dispatch_dir,
                submission.suite,
                submission.systems,
                shards=submission.shards,
                repetitions=submission.repetitions,
                platform=submission.platform,
                faults=submission.faults,
            )
            # job.json is written last: a job is visible only once complete.
            write_json_atomic(
                job.dir / JOB_FILENAME,
                {
                    "kind": "service-job",
                    "id": plan.fingerprint,
                    "sequence": sequence,
                    "submission": submission.payload,
                },
            )
            return Job(id=plan.fingerprint, sequence=sequence, root=self.root), True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: str) -> Job:
        job = self.get(job_id)
        write_json_atomic(
            job.dir / CANCEL_FILENAME, {"kind": "service-cancel", "id": job.id}
        )
        return job

    def job_state(self, job: Job, status: dict[str, Any] | None = None) -> str:
        """``queued`` / ``running`` / ``done`` / ``cancelled``."""
        if job.cancelled:
            return "cancelled"
        payload = status if status is not None else job.queue().status_payload()
        if payload["all_done"]:
            return "done"
        states = payload["shard_states"]
        if states.get("running") or states.get("done") or states.get("stale"):
            return "running"
        return "queued"

    def status_payload(self, job: Job) -> dict[str, Any]:
        """The job's full status object (``GET /jobs/{id}``)."""
        queue_status = job.queue().status_payload()
        return {
            "id": job.id,
            "sequence": job.sequence,
            "state": self.job_state(job, queue_status),
            "cancelled": job.cancelled,
            "queue": queue_status,
        }

    def summary_payload(self, job: Job) -> dict[str, Any]:
        """The compact per-job object in ``GET /jobs`` listings."""
        queue_status = job.queue().status_payload()
        return {
            "id": job.id,
            "sequence": job.sequence,
            "state": self.job_state(job, queue_status),
            "name": queue_status["name"],
            "total_runs": queue_status["total_runs"],
            "runs_done": queue_status["runs_done"],
        }

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def ensure_merged(self, job: Job) -> Path:
        """Merge the job's shard outputs (once); returns the merged dir.

        Raises ``ShardResultError`` while shards are still outstanding.
        Serialised: the merger writes through fixed ``.tmp`` names, so
        concurrent merges of the same directory must not interleave.
        """
        with self._merge_lock:
            out = merged_dir(job.dispatch_dir)
            queue = job.queue()
            expected = {
                campaign_result_filename(system.name) for system in queue.plan.systems
            }
            have = {path.name for path in out.glob("*.jsonl")} if out.is_dir() else set()
            if not expected <= have:
                merge_dispatch(job.dispatch_dir)
            return out
