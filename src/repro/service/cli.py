"""Campaign platform service CLI: ``python -m repro.service``.

Subcommands:

* ``serve`` — run the platform server over a service root directory.
* ``submit`` — submit a campaign (suite preset or SuiteSpec file, optional
  fault plan) to a running server; ``--wait`` polls it to completion.
* ``status`` — list jobs, or show one job's full queue state.
* ``fetch`` — download a job's report / coverage / slice markdown, or a
  page of its merged run records.
* ``cancel`` — cancel a job (running workers release their shards).

Example — a smoke campaign end to end::

    terminal-a$ python -m repro.service serve runs/service --workers 2
    terminal-b$ python -m repro.service submit http://127.0.0.1:8035 \\
                    --preset smoke --systems mls-v1,mls-v3 --faults gps-dropout \\
                    --wait
    terminal-b$ python -m repro.service fetch http://127.0.0.1:8035 <job-id> \\
                    --out report.md

The client side speaks plain ``urllib``; fault-plan *files* are resolved
into inline specs locally before submission (the server accepts presets and
inline specs only, never server-side paths).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.service.client import ServiceClient, ServiceClientError


def _build_submission(args: argparse.Namespace) -> dict[str, Any]:
    submission: dict[str, Any] = {}
    if args.spec:
        from repro.world.spec_validation import load_suite_spec

        submission["spec"] = load_suite_spec(args.spec).to_dict()
    else:
        submission["preset"] = args.preset
    if args.systems:
        submission["systems"] = [
            name.strip() for name in args.systems.split(",") if name.strip()
        ]
    for key in ("count", "seed", "repetitions", "shards"):
        value = getattr(args, key)
        if value is not None:
            submission[key] = value
    if args.platform:
        submission["platform"] = args.platform
    if args.faults:
        from repro.faults.spec import FAULT_PRESETS, resolve_faults

        if args.faults.strip().lower() in FAULT_PRESETS:
            submission["faults"] = args.faults.strip().lower()
        else:
            # A local fault-plan file: resolve it here, ship inline specs.
            submission["faults"] = [
                spec.to_dict() for spec in resolve_faults(args.faults)
            ]
    return submission


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    serve(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        lease_seconds=args.lease,
        quiet=args.quiet,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    response = client.submit(_build_submission(args))
    job_id = response["id"]
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    else:
        verb = "created" if response["created"] else "already exists (dedup)"
        queue = response["status"]["queue"]
        print(f"job {job_id} {verb}: {queue['total_runs']} runs over "
              f"{len(queue['shards'])} shard(s)")
    if args.wait:
        status = client.wait(job_id, timeout=args.timeout)
        if not args.json:
            print(f"job {job_id} {status['state']}")
        if status["state"] != "done":
            return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.job:
        print(json.dumps(client.status(args.job), indent=2, sort_keys=True))
        return 0
    jobs = client.jobs()
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(f"{job['id']}  #{job['sequence']:<3d} {job['state']:<9s} "
              f"{job['runs_done']}/{job['total_runs']} runs  {job['name']}")
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    if args.records:
        page = client.records(
            args.job, offset=args.offset, limit=args.limit, system=args.system
        )
        text = json.dumps(page, indent=2, sort_keys=True) + "\n"
        headers: dict[str, str] = {}
    elif args.coverage:
        text, headers = client.coverage(args.job)
    elif args.by:
        text, headers = client.slice(args.job, args.by)
    else:
        text, headers = client.report(args.job)
    if args.out:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    cache = headers.get("X-Report-Cache")
    if cache:
        print(f"report cache {cache} (key {headers.get('X-Report-Key')})",
              file=sys.stderr)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    print(json.dumps(ServiceClient(args.url).cancel(args.job), sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Campaign platform service: HTTP job server + client.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the platform server")
    serve.add_argument("root", help="service root directory (jobs live here)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8035)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="in-process worker threads draining jobs (default: %(default)s; "
        "0 serves plan/merge/reports only and leaves flying to external "
        "'python -m repro.dispatch work' processes)",
    )
    serve.add_argument(
        "--lease", type=float, default=None,
        help="worker lease seconds (default: the dispatch default)",
    )
    serve.add_argument("--quiet", action="store_true", help="no per-request logging")

    submit = sub.add_parser("submit", help="submit a campaign to a server")
    submit.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8035")
    submit.add_argument("--preset", default="smoke", help="suite preset (default: smoke)")
    submit.add_argument("--spec", default=None, help="SuiteSpec JSON file instead")
    submit.add_argument("--systems", default=None, help="comma-separated system presets")
    submit.add_argument("--count", type=int, default=None, help="scenario count override")
    submit.add_argument("--seed", type=int, default=None, help="suite seed override")
    submit.add_argument("--repetitions", type=int, default=None)
    submit.add_argument("--shards", type=int, default=None, help="shard count (default: 2)")
    submit.add_argument("--platform", default=None, help="execution platform key")
    submit.add_argument(
        "--faults", default=None,
        help="fault axis: preset name or local fault-plan JSON file "
             "(files are resolved client-side)",
    )
    submit.add_argument("--wait", action="store_true", help="poll until the job finishes")
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout seconds"
    )
    submit.add_argument("--json", action="store_true", help="print the raw response")

    status = sub.add_parser("status", help="list jobs / show one job")
    status.add_argument("url")
    status.add_argument("job", nargs="?", default=None, help="job id (omit to list)")
    status.add_argument("--json", action="store_true", help="machine-readable listing")

    fetch = sub.add_parser("fetch", help="download a job's report or records")
    fetch.add_argument("url")
    fetch.add_argument("job", help="job id")
    fetch.add_argument("--by", default=None, help="fetch the slice report for this factor")
    fetch.add_argument("--coverage", action="store_true", help="fetch the coverage report")
    fetch.add_argument("--records", action="store_true", help="fetch merged run records")
    fetch.add_argument("--offset", type=int, default=0, help="records page offset")
    fetch.add_argument("--limit", type=int, default=None, help="records page size")
    fetch.add_argument("--system", default=None, help="restrict records to one system")
    fetch.add_argument("--out", default=None, help="write to this file instead of stdout")

    cancel = sub.add_parser("cancel", help="cancel a job")
    cancel.add_argument("url")
    cancel.add_argument("job", help="job id")

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
        "cancel": _cmd_cancel,
    }
    try:
        return commands[args.command](args)
    except ServiceClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (FileNotFoundError, ValueError, TimeoutError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
