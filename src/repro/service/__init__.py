"""Campaign platform service: an HTTP job server over the dispatch protocol.

The long-running surface of the evaluation platform: a stdlib-only HTTP
server (:class:`~repro.service.server.CampaignServer`) that accepts
SuiteSpec/fault-plan submissions, deduplicates them by dispatch-plan
content fingerprint, drains them with a supervised in-process worker pool
(:class:`~repro.service.pool.WorkerPool` — ordinary dispatch workers on
threads, so external ``python -m repro.dispatch work`` processes
cooperate), and serves merged records plus disk-memoized analysis reports.

All server state is the directory tree (:class:`~repro.service.jobs.JobStore`):
kill the process, start a new one on the same root, and every job resumes
exactly where the dispatch queue files say it was.

* :mod:`repro.service.jobs` — submissions, validation, dedup, job state;
* :mod:`repro.service.pool` — the supervised worker pool;
* :mod:`repro.service.server` — HTTP routes over the store;
* :mod:`repro.service.client` — plain-``urllib`` client;
* :mod:`repro.service.cli` — ``python -m repro.service``
  (``serve`` / ``submit`` / ``status`` / ``fetch`` / ``cancel``).
"""

from repro.service.client import ServiceClient, ServiceClientError
from repro.service.jobs import Job, JobStore, UnknownJobError, validate_submission
from repro.service.pool import JobCancelled, WorkerPool
from repro.service.server import CampaignServer, serve

__all__ = [
    "CampaignServer",
    "Job",
    "JobCancelled",
    "JobStore",
    "ServiceClient",
    "ServiceClientError",
    "UnknownJobError",
    "WorkerPool",
    "serve",
    "validate_submission",
]
