"""A plain-``urllib`` client for the campaign platform service.

No dependencies beyond the stdlib, so any machine with Python can submit
campaigns and fetch reports; the :mod:`repro.service.cli` subcommands
(``submit`` / ``status`` / ``fetch`` / ``cancel``) are thin wrappers over
this class, and tests drive the server through it.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any


class ServiceClientError(RuntimeError):
    """An HTTP error response from the service, with its decoded payload."""

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        detail = payload.get("error", "")
        issues = payload.get("issues") or ()
        lines = [f"HTTP {status}: {detail}" if detail else f"HTTP {status}"]
        lines.extend(f"  - {issue['field']}: {issue['reason']}" for issue in issues)
        super().__init__("\n".join(lines))
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talk to one campaign service instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str,
        body: dict[str, Any] | None = None,
        query: dict[str, Any] | None = None,
    ) -> tuple[bytes, dict[str, str]]:
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urllib.parse.urlencode(
                {key: value for key, value in query.items() if value is not None}
            )
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read(), dict(response.headers)
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = {"error": raw.decode("utf-8", "replace")}
            raise ServiceClientError(error.code, payload) from None

    def _json(self, method: str, path: str, body: dict[str, Any] | None = None,
              query: dict[str, Any] | None = None) -> dict[str, Any]:
        raw, _ = self._request(method, path, body, query)
        return json.loads(raw)

    def _text(self, path: str, query: dict[str, Any] | None = None) -> tuple[str, dict[str, str]]:
        raw, headers = self._request("GET", path, query=query)
        return raw.decode("utf-8"), headers

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def submit(self, submission: dict[str, Any]) -> dict[str, Any]:
        """Submit a campaign; the response carries ``id`` and ``created``."""
        return self._json("POST", "/jobs", body=submission)

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def records(
        self, job_id: str, *, offset: int = 0, limit: int | None = None,
        system: str | None = None,
    ) -> dict[str, Any]:
        return self._json(
            "GET", f"/jobs/{job_id}/records",
            query={"offset": offset, "limit": limit, "system": system},
        )

    def report(self, job_id: str) -> tuple[str, dict[str, str]]:
        """``(markdown, headers)`` — headers carry ``X-Report-Cache``."""
        return self._text(f"/jobs/{job_id}/report")

    def slice(self, job_id: str, factor: str) -> tuple[str, dict[str, str]]:
        return self._text(f"/jobs/{job_id}/slice/{factor}")

    def coverage(self, job_id: str) -> tuple[str, dict[str, str]]:
        return self._text(f"/jobs/{job_id}/coverage")

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll_seconds: float = 0.25,
    ) -> dict[str, Any]:
        """Poll until the job is done or cancelled; returns the final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after {timeout:.0f}s "
                    f"({status['queue']['runs_done']}/{status['queue']['total_runs']} runs)"
                )
            time.sleep(poll_seconds)
